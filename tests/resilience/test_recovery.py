"""ISSUE acceptance tests: crash-and-resume campaigns and watchdog
degradation.

Two end-to-end scenarios the resilience layer exists for:

1. a 20-repetition campaign is killed mid-run by an injected crash,
   resumed from its journal, and the aggregated metrics are
   *bit-identical* to an uninterrupted run with the same base seed;
2. a stalling selector breaches its wall-clock deadline, the greedy
   fallback answers instead, and the degradation is recorded in the
   round record.
"""

import pytest

from repro.experiments.runner import repeat_metrics
from repro.resilience.faults import CrashingMetric, FaultPlan, FaultySelector, InjectedFault
from repro.resilience.journal import RunJournal
from repro.selection import GreedySelector, TimeBoundedSelector
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate


@pytest.fixture
def campaign_config():
    return SimulationConfig(
        n_users=8,
        n_tasks=4,
        area_side=1000.0,
        required_measurements=2,
        deadline_range=(2, 4),
        rounds=4,
        budget=100.0,
    )


def total_measurements(result):
    return float(sum(len(record.measurements) for record in result.rounds))


class CountingMetric:
    """Wraps a metric and counts how many simulations it actually saw."""

    def __init__(self, metric):
        self.metric = metric
        self.calls = 0

    def __call__(self, result):
        self.calls += 1
        return self.metric(result)


class TestCrashResumeCampaign:
    """Acceptance: interrupt at repetition 8 of 20, resume, compare."""

    REPS = 20
    CRASH_AT = 9  # 1-based metric call => dies measuring repetition 8

    def test_resumed_campaign_is_bit_identical(self, campaign_config, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"

        # The uninterrupted reference: no journal, clean metric.
        baseline = repeat_metrics(
            campaign_config,
            {"measurements": total_measurements},
            self.REPS,
            base_seed=3,
        )

        # Phase 1: the campaign dies mid-repetition-8.
        crashing = CrashingMetric(total_measurements, crash_on_call=self.CRASH_AT)
        with pytest.raises(InjectedFault):
            repeat_metrics(
                campaign_config,
                {"measurements": crashing},
                self.REPS,
                base_seed=3,
                journal=journal_path,
            )

        # Only the repetitions completed *before* the crash were journaled;
        # the dying repetition was not (it never finished its metrics).
        interrupted = RunJournal(
            journal_path,
            fingerprint=_campaign_fingerprint(campaign_config),
        )
        assert interrupted.completed_reps == self.CRASH_AT - 1
        assert interrupted.first_missing(self.REPS) == self.CRASH_AT - 1

        # Phase 2: "restart the process" — fresh call, same journal.
        counting = CountingMetric(total_measurements)
        resumed = repeat_metrics(
            campaign_config,
            {"measurements": counting},
            self.REPS,
            base_seed=3,
            journal=journal_path,
        )

        # Only the missing repetitions were re-simulated...
        assert counting.calls == self.REPS - (self.CRASH_AT - 1)
        # ...and the aggregate is bit-identical to the uninterrupted run.
        assert resumed == baseline

    def test_second_resume_runs_nothing(self, campaign_config, tmp_path):
        journal_path = tmp_path / "campaign.jsonl"
        first = repeat_metrics(
            campaign_config,
            {"measurements": total_measurements},
            self.REPS,
            base_seed=3,
            journal=journal_path,
        )
        counting = CountingMetric(total_measurements)
        second = repeat_metrics(
            campaign_config,
            {"measurements": counting},
            self.REPS,
            base_seed=3,
            journal=journal_path,
        )
        assert counting.calls == 0
        assert second == first


def _campaign_fingerprint(config):
    from repro.resilience.journal import config_fingerprint

    return config_fingerprint(
        config, base_seed=3, kind="metrics", metrics=["measurements"]
    )


class TestSelectorTimeoutDegradation:
    """Acceptance: a forced timeout fires the greedy fallback and the
    degradation lands in the round record."""

    @pytest.fixture
    def config(self):
        return SimulationConfig(
            n_users=5,
            n_tasks=4,
            area_side=800.0,
            required_measurements=3,
            deadline_range=(3, 5),
            rounds=2,
        )

    def _stalling_selector(self, timeout=0.05):
        stalling = FaultySelector(
            GreedySelector(),
            FaultPlan(rate=1.0, seed=1),
            mode="stall",
            stall_seconds=0.5,
        )
        return TimeBoundedSelector(stalling, timeout=timeout)

    def test_fallback_fires_and_is_recorded(self, config):
        engine = SimulationEngine(config, selector=self._stalling_selector())
        record = engine.step()
        assert record.selector_fallbacks > 0
        assert engine.selector.total_timeouts == record.selector_fallbacks
        assert engine.result.total_selector_fallbacks == record.selector_fallbacks

    def test_degraded_round_equals_pure_greedy(self, config):
        """Every call degrading to greedy must reproduce the all-greedy
        round exactly — the fallback answers with the paper's own solver."""
        degraded = SimulationEngine(config, selector=self._stalling_selector())
        pure = SimulationEngine(config, selector=GreedySelector())
        record_degraded = degraded.step()
        record_pure = pure.step()
        assert record_degraded.measurements == record_pure.measurements
        assert record_degraded.user_records == record_pure.user_records
        assert record_pure.selector_fallbacks == 0
        assert record_degraded.selector_fallbacks > 0

    def test_config_level_watchdog_with_roomy_deadline(self, config):
        """selector_timeout in the config arms the watchdog; a roomy
        deadline records zero degradations."""
        result = simulate(config.with_overrides(selector_timeout=10.0))
        assert result.total_selector_fallbacks == 0
        # The baseline without the watchdog is bit-identical at the same
        # seed when no deadline is breached.
        baseline = simulate(config)
        assert [r.measurements for r in result.rounds] == [
            r.measurements for r in baseline.rounds
        ]
