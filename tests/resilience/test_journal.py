"""Tests for the crash-safe repetition journal."""

import json

import pytest

from repro.resilience.errors import ConfigError, ResultCorruption
from repro.resilience.journal import RunJournal, config_fingerprint
from repro.simulation.config import SimulationConfig


@pytest.fixture
def path(tmp_path):
    return tmp_path / "campaign.jsonl"


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        a = config_fingerprint(SimulationConfig(seed=1), base_seed=3)
        b = config_fingerprint(SimulationConfig(seed=1), base_seed=3)
        assert a == b

    def test_sensitive_to_config(self):
        a = config_fingerprint(SimulationConfig(n_users=40), base_seed=3)
        b = config_fingerprint(SimulationConfig(n_users=60), base_seed=3)
        assert a != b

    def test_sensitive_to_context(self):
        config = SimulationConfig()
        assert config_fingerprint(config, base_seed=0) != config_fingerprint(
            config, base_seed=1
        )


class TestRecording:
    def test_round_trip(self, path):
        journal = RunJournal(path, "fp")
        journal.record(0, {"values": {"m": 1.5}})
        journal.record(1, {"values": {"m": 2.5}})
        assert journal.get(0) == {"values": {"m": 1.5}}
        assert journal.get(2) is None
        assert journal.completed_reps == 2

    def test_resume_sees_prior_records(self, path):
        RunJournal(path, "fp").record(0, {"v": 1})
        resumed = RunJournal(path, "fp")
        assert resumed.get(0) == {"v": 1}
        resumed.record(1, {"v": 2})
        assert RunJournal(path, "fp").completed_reps == 2

    def test_first_missing(self, path):
        journal = RunJournal(path, "fp")
        journal.record(0, {})
        journal.record(1, {})
        journal.record(3, {})
        assert journal.first_missing(5) == 2
        journal.record(2, {})
        assert journal.first_missing(4) == 4

    def test_parents_created(self, tmp_path):
        nested = tmp_path / "a" / "b" / "j.jsonl"
        RunJournal(nested, "fp").record(0, {})
        assert nested.exists()

    def test_negative_rep_rejected(self, path):
        with pytest.raises(ValueError, match="rep"):
            RunJournal(path, "fp").record(-1, {})


class TestIntegrity:
    def test_fingerprint_mismatch_is_config_error(self, path):
        RunJournal(path, "fp-a").record(0, {})
        with pytest.raises(ConfigError, match="different configuration"):
            RunJournal(path, "fp-b")

    def test_partial_tail_is_truncated_not_fatal(self, path):
        journal = RunJournal(path, "fp")
        journal.record(0, {"v": 1})
        journal.record(1, {"v": 2})
        # A crash mid-append leaves an unterminated JSON fragment.
        with path.open("a") as handle:
            handle.write('{"kind": "rep", "rep": 2, "payl')
        resumed = RunJournal(path, "fp")
        assert resumed.completed_reps == 2
        assert resumed.get(2) is None
        # The file was repaired: appending and reopening work normally.
        resumed.record(2, {"v": 3})
        assert RunJournal(path, "fp").completed_reps == 3

    def test_midstream_corruption_is_fatal(self, path):
        journal = RunJournal(path, "fp")
        journal.record(0, {"v": 1})
        journal.record(1, {"v": 2})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # damage a middle line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResultCorruption, match="line 2"):
            RunJournal(path, "fp")

    def test_foreign_header_rejected(self, path):
        path.write_text(json.dumps({"kind": "meta", "format_version": 99}) + "\n")
        with pytest.raises(ResultCorruption, match="journal"):
            RunJournal(path, "fp")

    def test_garbage_entry_kind_rejected(self, path):
        RunJournal(path, "fp")
        with path.open("a") as handle:
            handle.write(json.dumps({"kind": "banana"}) + "\n")
            handle.write(json.dumps({"kind": "rep", "rep": 0}) + "\n")
        with pytest.raises(ResultCorruption, match="unexpected"):
            RunJournal(path, "fp")

    def test_empty_file_rejected(self, path):
        path.write_text("")
        with pytest.raises(ResultCorruption, match="empty|readable"):
            RunJournal(path, "fp")
