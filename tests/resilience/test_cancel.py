"""Tests for cooperative cancellation tokens and the jittered backoff."""

import random

import pytest

from repro.resilience.cancel import (
    NEVER_CANCELLED,
    TIMEOUT_REASON,
    CompositeToken,
    DeadlineToken,
    FileToken,
    FlagToken,
    maybe_deadline,
)
from repro.resilience.errors import OperationCancelled
from repro.resilience.retry import backoff_delays


class TestTokens:
    def test_never_cancelled_is_free(self):
        assert not NEVER_CANCELLED.cancelled
        NEVER_CANCELLED.raise_if_cancelled()  # no-op

    def test_flag_token_raises_with_reason(self):
        token = FlagToken()
        token.raise_if_cancelled()
        token.cancel("shutting down")
        with pytest.raises(OperationCancelled) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.reason == "shutting down"

    def test_flag_first_reason_sticks(self):
        token = FlagToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"

    def test_deadline_token(self):
        clock = {"now": 0.0}
        token = DeadlineToken(10.0, clock=lambda: clock["now"])
        assert not token.cancelled
        assert token.remaining == 10.0
        clock["now"] = 10.0
        assert token.cancelled
        assert token.remaining == 0.0
        with pytest.raises(OperationCancelled) as excinfo:
            token.raise_if_cancelled()
        assert excinfo.value.reason == TIMEOUT_REASON

    def test_deadline_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            DeadlineToken(0)

    def test_file_token_cross_process_switch(self, tmp_path):
        flag = tmp_path / "cancel"
        token = FileToken(flag)
        assert not token.cancelled
        FileToken(flag).trip("cancelled by client")
        assert token.cancelled
        assert token.reason == "cancelled by client"

    def test_file_token_empty_file_defaults_reason(self, tmp_path):
        flag = tmp_path / "cancel"
        flag.touch()
        assert FileToken(flag).reason == "cancelled"

    def test_composite_first_tripped_wins(self):
        a, b = FlagToken(), FlagToken()
        both = CompositeToken([a, b])
        assert not both.cancelled
        b.cancel("b says stop")
        assert both.cancelled
        assert both.reason == "b says stop"
        with pytest.raises(OperationCancelled):
            both.raise_if_cancelled()

    def test_maybe_deadline(self):
        assert maybe_deadline(None) is NEVER_CANCELLED
        assert isinstance(maybe_deadline(5.0), DeadlineToken)


class TestEngineCancellation:
    def test_engine_stops_between_rounds(self):
        from repro.simulation import SimulationConfig, make_engine

        token = FlagToken()
        config = SimulationConfig(n_users=20, n_tasks=5, rounds=10, seed=3)
        engine = make_engine(config, cancel=token)

        class StopAfterTwo:
            rounds = 0

            def __call__(self, record):
                StopAfterTwo.rounds += 1
                if StopAfterTwo.rounds == 2:
                    token.cancel("test stop")

        engine.observers.append(StopAfterTwo())
        with pytest.raises(OperationCancelled) as excinfo:
            engine.run()
        assert excinfo.value.reason == "test stop"
        assert StopAfterTwo.rounds == 2  # no third round ran

    def test_uncancelled_run_is_bit_identical(self):
        """Polling a token must not perturb the simulation."""
        from repro.metrics import MetricsSummary
        from repro.simulation import SimulationConfig, simulate

        config = SimulationConfig(n_users=25, n_tasks=6, rounds=5, seed=9)
        plain = MetricsSummary.from_result(simulate(config)).as_dict()
        with_token = MetricsSummary.from_result(
            simulate(config, cancel=FlagToken())
        ).as_dict()
        assert plain == with_token


class TestDecorrelatedJitter:
    def test_deterministic_with_injected_rng(self):
        a = backoff_delays(6, base_delay=0.1, jitter="decorrelated",
                           rng=random.Random(42))
        b = backoff_delays(6, base_delay=0.1, jitter="decorrelated",
                           rng=random.Random(42))
        assert a == b
        assert len(a) == 5

    def test_cap_is_respected(self):
        delays = backoff_delays(
            50, base_delay=1.0, max_delay=4.0, jitter="decorrelated",
            rng=random.Random(0),
        )
        assert all(d <= 4.0 for d in delays)
        assert all(d >= 1.0 for d in delays)

    def test_decorrelated_draws_stay_in_band(self):
        """Each delay is in [base, 3 * previous] (the AWS recipe)."""
        base = 0.5
        delays = backoff_delays(
            20, base_delay=base, jitter="decorrelated", rng=random.Random(7)
        )
        previous = base
        for delay in delays:
            assert base <= delay <= 3.0 * previous + 1e-12
            previous = delay

    def test_two_rngs_decorrelate(self):
        a = backoff_delays(10, jitter="decorrelated", rng=random.Random(1))
        b = backoff_delays(10, jitter="decorrelated", rng=random.Random(2))
        assert a != b

    def test_plain_schedule_unchanged(self):
        """The deterministic default survives the new knobs (regression)."""
        assert backoff_delays(4, base_delay=0.1, multiplier=2.0) == (0.1, 0.2, 0.4)

    def test_cap_applies_without_jitter(self):
        assert backoff_delays(5, base_delay=0.1, max_delay=0.3) == (
            0.1, 0.2, 0.3, 0.3,
        )

    def test_rejects_unknown_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            backoff_delays(3, jitter="full")

    def test_rejects_cap_below_base(self):
        with pytest.raises(ValueError, match="max_delay"):
            backoff_delays(3, base_delay=1.0, max_delay=0.5)
