"""Tests for the deterministic fault injectors (and the recovery paths
they exercise at the engine / IO boundaries)."""

import os

import pytest

from repro.core.mechanisms import make_mechanism
from repro.io.results import load_result, save_result
from repro.resilience.errors import MechanismPriceError, TransientIOError
from repro.resilience.faults import (
    CrashingMetric,
    FaultPlan,
    FaultyMechanism,
    FaultySelector,
    FlakyIO,
    InjectedFault,
    scripted_failures,
)
from repro.selection import GreedySelector
from repro.simulation.engine import SimulationEngine


class TestFaultPlan:
    def test_scripted_indices_fail(self):
        plan = scripted_failures(0, 2)
        assert [plan.next() for _ in range(4)] == [True, False, True, False]
        assert plan.failures == 2

    def test_seeded_rate_is_deterministic(self):
        a = FaultPlan(rate=0.5, seed=9)
        b = FaultPlan(rate=0.5, seed=9)
        assert [a.next() for _ in range(20)] == [b.next() for _ in range(20)]

    def test_rate_one_always_fails(self):
        plan = FaultPlan(rate=1.0, seed=1)
        assert all(plan.next() for _ in range(5))

    def test_max_failures_caps_injection(self):
        plan = FaultPlan(rate=1.0, seed=1, max_failures=2)
        assert [plan.next() for _ in range(4)] == [True, True, False, False]

    def test_mode_exclusivity(self):
        with pytest.raises(ValueError, match="either"):
            FaultPlan(fail_calls={1}, rate=0.5, seed=1)

    def test_rate_needs_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(rate=0.5)


class TestFaultySelector:
    def test_raises_on_schedule(self):
        from repro.selection import CandidateTask, TaskSelectionProblem
        from repro.geometry.point import Point

        problem = TaskSelectionProblem.build(
            origin=Point(0, 0),
            candidates=[CandidateTask(0, Point(10, 0), 5.0)],
            max_distance=100.0,
            cost_per_meter=0.01,
        )
        faulty = FaultySelector(GreedySelector(), scripted_failures(1))
        assert not faulty.select(problem).is_empty  # call 0 passes through
        with pytest.raises(InjectedFault):
            faulty.select(problem)


class TestFaultyMechanism:
    @pytest.fixture
    def config(self, fast_config):
        return fast_config.with_overrides(mechanism="fixed")

    def _engine(self, config, plan):
        inner = make_mechanism("fixed", **config.mechanism_arguments())
        return SimulationEngine(
            config, mechanism=FaultyMechanism(inner, plan)
        )

    def test_dropped_price_dies_at_the_boundary(self, config):
        engine = self._engine(config, scripted_failures(0))
        with pytest.raises(MechanismPriceError, match="omitted task ids"):
            engine.step()

    def test_error_names_the_mechanism(self, config):
        engine = self._engine(config, scripted_failures(0))
        with pytest.raises(MechanismPriceError, match="FaultyMechanism"):
            engine.step()

    def test_unfaulted_rounds_run_normally(self, config):
        engine = self._engine(config, FaultPlan())  # no faults scheduled
        assert engine.step().round_no == 1


class TestFlakyIO:
    @pytest.fixture
    def result(self):
        from repro.analysis.series import ExperimentResult, Series, SeriesPoint

        return ExperimentResult(
            experiment_id="drill",
            title="t", x_label="x", y_label="y",
            series=[Series("a", (SeriesPoint(1, 2.0),))],
        )

    def test_save_retries_through_transient_failure(
        self, result, tmp_path, monkeypatch
    ):
        flaky = FlakyIO(os.replace, scripted_failures(0))
        monkeypatch.setattr("repro.io.atomic.os.replace", flaky)
        path = save_result(result, tmp_path / "out.json")
        assert flaky.plan.calls == 2  # one failure, one success
        assert load_result(path).experiment_id == "drill"

    def test_persistent_failure_surfaces_and_preserves_old_file(
        self, result, tmp_path, monkeypatch
    ):
        path = tmp_path / "out.json"
        save_result(result, path)
        before = path.read_text()
        monkeypatch.setattr(
            "repro.io.atomic.os.replace",
            FlakyIO(os.replace, FaultPlan(rate=1.0, seed=1)),
        )
        with pytest.raises(TransientIOError):
            save_result(result, path, attempts=2)
        assert path.read_text() == before  # old artifact untouched
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []  # temp files cleaned up


class TestCrashingMetric:
    def test_crashes_exactly_once_on_schedule(self):
        metric = CrashingMetric(lambda _result: 7.0, crash_on_call=2)
        assert metric("run") == 7.0
        with pytest.raises(InjectedFault):
            metric("run")
        assert metric("run") == 7.0  # the "resumed process" succeeds

    def test_persistent_mode(self):
        metric = CrashingMetric(
            lambda _result: 7.0, crash_on_call=1, crash_once=False
        )
        with pytest.raises(InjectedFault):
            metric("run")
        with pytest.raises(InjectedFault):
            metric("run")


class TestEnginePriceValidation:
    """Engine-boundary checks beyond the id-dropping injector."""

    class _NaNMechanism:
        name = "nan"

        def initialize(self, world, rng):
            self.world = world

        def rewards(self, view):
            return {t.task_id: float("nan") for t in view.active_tasks}

    def test_non_finite_prices_rejected(self, fast_config):
        engine = SimulationEngine(fast_config, mechanism=self._NaNMechanism())
        with pytest.raises(MechanismPriceError, match="non-finite"):
            engine.step()
