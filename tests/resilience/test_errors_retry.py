"""Tests for the error taxonomy and the bounded-retry helper."""

import pytest

from repro.resilience.errors import (
    ConfigError,
    MechanismPriceError,
    ReproError,
    ResultCorruption,
    SelectorTimeout,
    TransientIOError,
)
from repro.resilience.retry import backoff_delays, with_retries


class TestTaxonomy:
    def test_everything_is_a_repro_error(self):
        for exc_type in (
            ConfigError, SelectorTimeout, MechanismPriceError,
            ResultCorruption, TransientIOError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_builtin_compatibility(self):
        """Each type keeps working at pre-taxonomy `except` sites."""
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ResultCorruption, ValueError)
        assert issubclass(MechanismPriceError, ValueError)
        assert issubclass(SelectorTimeout, TimeoutError)
        assert issubclass(TransientIOError, OSError)

    def test_catchable_as_family(self):
        with pytest.raises(ReproError):
            raise ConfigError("bad knob")


class TestBackoffDelays:
    def test_schedule(self):
        assert backoff_delays(4, base_delay=0.1, multiplier=2.0) == (0.1, 0.2, 0.4)

    def test_single_attempt_has_no_delays(self):
        assert backoff_delays(1) == ()

    def test_rejects_non_positive_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            backoff_delays(0)


class TestWithRetries:
    def test_success_first_try(self):
        assert with_retries(lambda: 42, sleep=lambda _s: None) == 42

    def test_retries_transient_then_succeeds(self):
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("disk hiccup")
            return "ok"

        assert with_retries(flaky, attempts=3, sleep=slept.append) == "ok"
        assert calls["n"] == 3
        assert slept == [0.05, pytest.approx(0.1)]

    def test_exhaustion_raises_last_error(self):
        def always():
            raise TransientIOError("still down")

        with pytest.raises(TransientIOError, match="still down"):
            with_retries(always, attempts=3, sleep=lambda _s: None)

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ConfigError("logic bug, not a hiccup")

        with pytest.raises(ConfigError):
            with_retries(broken, attempts=5, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_oserror_is_retryable_by_default(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("EAGAIN")
            return "ok"

        assert with_retries(flaky, sleep=lambda _s: None) == "ok"


class TestRetryLogging:
    def test_each_backoff_logs_a_structured_warning(self, caplog):
        import logging

        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("disk hiccup")
            return "ok"

        with caplog.at_level(logging.WARNING, logger="repro"):
            with_retries(flaky, attempts=3, sleep=lambda _s: None)
        records = [r for r in caplog.records if "transient failure" in r.message]
        assert [r.attempt for r in records] == [1, 2]
        assert all(r.attempts == 3 for r in records)
        assert all(r.name == "repro.resilience.retry" for r in records)
        assert records[0].delay_s == 0.05
        assert "disk hiccup" in records[0].error

    def test_final_failure_does_not_log_a_retry(self, caplog):
        import logging

        def always():
            raise TransientIOError("still down")

        with caplog.at_level(logging.WARNING, logger="repro"):
            with pytest.raises(TransientIOError):
                with_retries(always, attempts=2, sleep=lambda _s: None)
        records = [r for r in caplog.records if "transient failure" in r.message]
        assert len(records) == 1  # the exhausted attempt raises, not logs
