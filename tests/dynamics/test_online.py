"""The online baselines: stage structure, budget feasibility, scoring."""

import pytest

from repro.core.levels import DemandLevels
from repro.core.mechanisms.factory import MECHANISM_NAMES, MECHANISMS
from repro.dynamics.online import (
    IncentMeMechanism,
    OMGOnlineMechanism,
    stage_plan,
)
from repro.simulation import SimulationConfig, make_engine


def total_paid(result):
    return sum(m.reward for r in result.rounds for m in r.measurements)


def online_config(**overrides):
    base = dict(
        n_users=40,
        n_tasks=5,
        area_side=1500.0,
        required_measurements=5,
        deadline_range=(3, 8),
        rounds=8,
        budget=200.0,
        seed=5,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestRegistry:
    def test_both_baselines_are_registered(self):
        assert "omg-online" in MECHANISM_NAMES
        assert "incentme" in MECHANISM_NAMES

    def test_registry_builds_them(self):
        omg = MECHANISMS.create("omg-online", budget=100.0, horizon=10)
        assert isinstance(omg, OMGOnlineMechanism)
        incentme = MECHANISMS.create("incentme", budget=100.0)
        assert isinstance(incentme, IncentMeMechanism)

    def test_config_threads_the_horizon_to_omg(self):
        config = online_config(mechanism="omg-online", rounds=12)
        kwargs = config.mechanism_arguments()
        assert kwargs["horizon"] == 12
        assert kwargs["budget"] == config.budget
        engine = make_engine(config)
        assert engine.mechanism.horizon == 12

    def test_config_threads_the_radius_to_incentme(self):
        config = online_config(mechanism="incentme")
        kwargs = config.mechanism_arguments()
        assert kwargs["neighbour_radius"] == config.neighbour_radius
        assert "horizon" not in kwargs


class TestStagePlan:
    @pytest.mark.parametrize("horizon", [1, 2, 7, 8, 15, 16, 100])
    def test_stage_structure(self, horizon):
        plan = stage_plan(horizon, 1000.0)
        ends = [end for end, _ in plan]
        cumulative = [c for _, c in plan]
        assert ends == sorted(ends)
        assert ends[-1] == horizon
        assert cumulative == sorted(cumulative)
        # The total allocation stays strictly under the budget: the
        # reserved first share absorbs sampling-stage estimation error.
        assert cumulative[-1] < 1000.0

    def test_allocations_double_stage_over_stage(self):
        plan = stage_plan(16, 1000.0)
        shares = []
        previous = 0.0
        for _, cumulative in plan:
            shares.append(cumulative - previous)
            previous = cumulative
        for earlier, later in zip(shares, shares[1:]):
            assert later == pytest.approx(2.0 * earlier)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError, match="horizon"):
            stage_plan(0, 100.0)
        with pytest.raises(ValueError, match="budget"):
            stage_plan(10, 0.0)

    def test_cumulative_budget_lookup(self):
        mechanism = OMGOnlineMechanism(budget=1000.0, horizon=16)
        first_end, first_cumulative = mechanism.plan[0]
        assert mechanism.cumulative_budget(1) == first_cumulative
        assert mechanism.cumulative_budget(16) == mechanism.plan[-1][1]
        # Overtime rounds (deadlines outliving the horizon) stay capped
        # at the final stage's allocation.
        assert mechanism.cumulative_budget(99) == mechanism.plan[-1][1]


class TestBudgetFeasibility:
    def test_omg_paid_within_budget_closed_world(self):
        config = online_config(mechanism="omg-online")
        result = make_engine(config).run()
        assert total_paid(result) <= config.budget + 1e-6
        assert total_paid(result) > 0

    def test_omg_paid_within_budget_under_churn(self):
        config = online_config(
            mechanism="omg-online",
            dynamics={
                "user_arrival_rate": 2.0,
                "user_departure_rate": 0.05,
                "task_arrival_rate": 1.0,
                "task_deadline_range": [3, 5],
            },
        )
        result = make_engine(config).run()
        streamed = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "task_published"
        }
        assert streamed, "the fixture must stream tasks"
        assert total_paid(result) <= config.budget + 1e-6

    def test_incentme_paid_within_budget_closed_world(self):
        config = online_config(mechanism="incentme")
        result = make_engine(config).run()
        assert total_paid(result) <= config.budget + 1e-6
        assert total_paid(result) > 0

    def test_incentme_paid_within_budget_under_churn(self):
        config = online_config(
            mechanism="incentme",
            dynamics={
                "user_arrival_rate": 2.0,
                "user_departure_rate": 0.05,
                "task_arrival_rate": 1.0,
                "task_deadline_range": [3, 5],
            },
        )
        result = make_engine(config).run()
        assert total_paid(result) <= config.budget + 1e-6

    def test_omg_spend_ledger_tracks_payments(self):
        config = online_config(mechanism="omg-online")
        engine = make_engine(config)
        result = engine.run()
        # The ledger settles lazily on the next rewards() call; fold the
        # final round's deltas in before comparing.
        engine.mechanism._settle([])
        assert engine.mechanism.spent == pytest.approx(total_paid(result))


class TestOMGPricing:
    def test_thresholds_sit_on_the_step_grid(self):
        config = online_config(mechanism="omg-online", reward_step=0.5)
        result = make_engine(config).run()
        floor = 1e-6
        for record in result.rounds:
            prices = set(record.published_rewards.values())
            assert len(prices) <= 1, "OMG publishes one uniform threshold"
            for price in prices:
                if price > floor:
                    assert (price / 0.5) == pytest.approx(round(price / 0.5))

    def test_exhausted_stage_publishes_the_price_floor(self):
        mechanism = OMGOnlineMechanism(
            budget=10.0, step=0.5, horizon=8, price_floor=1e-6
        )
        mechanism._spent = 100.0  # past every stage allocation

        class _Task:
            task_id = 0
            received = 0
            remaining = 5

        class _View:
            round_no = 5
            active_tasks = [_Task()]

        mechanism._world = type("W", (), {"tasks": []})()
        prices = mechanism.rewards(_View())
        assert prices == {0: 1e-6}


class TestIncentMeScoring:
    def test_scores_are_normalised(self):
        config = online_config(mechanism="incentme")
        engine = make_engine(config)
        engine.run()
        demands = engine.mechanism.last_demands
        assert demands
        assert all(0.0 <= score <= 1.0 for score in demands.values())

    def test_open_world_widens_the_schedule_denominator(self):
        closed = online_config(mechanism="incentme")
        churned = online_config(
            mechanism="incentme",
            dynamics={"task_arrival_rate": 2.0, "task_deadline_range": [3, 5]},
        )
        closed_engine = make_engine(closed)
        churned_engine = make_engine(churned)
        # The mechanism initialises on the first step.
        closed_engine.step()
        churned_engine.step()
        # Same budget over strictly more required measurements: the
        # open-world base reward must be strictly smaller.
        assert (
            churned_engine.mechanism.schedule.base_reward
            < closed_engine.mechanism.schedule.base_reward
        )

    def test_crowd_instability_raises_rewards(self):
        mechanism_stable = MECHANISMS.create(
            "incentme", budget=200.0, levels=DemandLevels(5)
        )
        mechanism_churned = MECHANISMS.create(
            "incentme", budget=200.0, levels=DemandLevels(5)
        )

        class _Ledger:
            def __init__(self, presence):
                self._presence = presence

            def mean_presence(self, round_no):
                return self._presence

            def streamed_required_total(self):
                return 0

        import numpy as np

        from repro.simulation import SimulationEngine

        engine = SimulationEngine(online_config())
        world = engine.world
        mechanism_stable.initialize(world, np.random.default_rng(0))
        mechanism_churned.timeline = _Ledger(presence=0.5)
        mechanism_churned.initialize(world, np.random.default_rng(0))

        class _View:
            round_no = 3
            active_tasks = world.tasks
            user_locations = [u.location for u in world.users]

        stable = mechanism_stable.rewards(_View())
        churned = mechanism_churned.rewards(_View())
        assert sum(churned.values()) >= sum(stable.values())
        assert any(
            churned[tid] > stable[tid] for tid in churned
        ), "instability must raise at least one task's reward"
