"""The completeness_basis knob: which tasks the denominator counts."""

import pytest

from repro.metrics.completeness import (
    overall_completeness,
    per_task_completeness,
)
from repro.resilience.errors import ConfigError
from repro.simulation import SimulationConfig, make_engine
from repro.world.task import TaskStatus


def expiring_config(**overrides):
    """A run guaranteed to strand some tasks: too few users, tight
    deadlines, demand nobody can meet."""
    base = dict(
        n_users=6,
        n_tasks=8,
        area_side=2500.0,
        required_measurements=6,
        deadline_range=(2, 5),
        rounds=6,
        budget=300.0,
        seed=2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestConfigKnob:
    def test_default_is_all(self):
        assert expiring_config().completeness_basis == "all"

    def test_rejects_unknown_basis(self):
        with pytest.raises(ConfigError, match="completeness_basis"):
            expiring_config(completeness_basis="only-on-tuesdays")

    def test_accepts_exclude_expired(self):
        config = expiring_config(completeness_basis="exclude-expired")
        assert config.completeness_basis == "exclude-expired"


class TestBasisSemantics:
    @pytest.fixture(scope="class")
    def runs(self):
        """The same seed run under both bases (identical histories)."""
        all_basis = make_engine(expiring_config()).run()
        excl = make_engine(
            expiring_config(completeness_basis="exclude-expired")
        ).run()
        return all_basis, excl

    def test_fixture_strands_tasks(self, runs):
        all_basis, _ = runs
        expired = [
            t for t in all_basis.world.tasks if t.status is TaskStatus.EXPIRED
        ]
        assert expired, "the fixture must expire at least one task"
        assert len(expired) < len(all_basis.world.tasks)

    def test_basis_does_not_change_the_simulation(self, runs):
        all_basis, excl = runs
        assert [r.round_no for r in all_basis.rounds] == [
            r.round_no for r in excl.rounds
        ]
        assert [
            tuple(sorted(r.published_rewards.items())) for r in all_basis.rounds
        ] == [tuple(sorted(r.published_rewards.items())) for r in excl.rounds]

    def test_exclude_expired_shrinks_the_denominator(self, runs):
        all_basis, excl = runs
        full = per_task_completeness(all_basis)
        partial = per_task_completeness(excl)
        expired_ids = {
            t.task_id
            for t in all_basis.world.tasks
            if t.status is TaskStatus.EXPIRED
        }
        assert set(full) - set(partial) == expired_ids
        for tid, value in partial.items():
            assert value == full[tid]

    def test_exclude_expired_never_lowers_overall_completeness(self, runs):
        all_basis, excl = runs
        # Expired tasks are exactly the sub-1.0 stragglers; dropping
        # them can only raise (or preserve) the mean.
        assert overall_completeness(excl) >= overall_completeness(all_basis)

    def test_all_basis_counts_every_task(self, runs):
        all_basis, _ = runs
        assert set(per_task_completeness(all_basis)) == {
            t.task_id for t in all_basis.world.tasks
        }


class TestOpenWorldBasis:
    def test_streamed_tasks_enter_the_basis(self):
        config = expiring_config(
            n_users=20,
            required_measurements=6,
            budget=400.0,
            dynamics={"task_arrival_rate": 1.5, "task_deadline_range": [2, 3]},
        )
        result = make_engine(config).run()
        streamed = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "task_published"
        }
        assert streamed, "the fixture must stream tasks"
        assert streamed <= set(per_task_completeness(result))
