"""WorldTimeline against live engines: application, renewal, presence."""

import pytest

from repro.dynamics.processes import DynamicsSpec, EventStream, WorldEvent
from repro.dynamics.stream import WorldTimeline
from repro.simulation import SimulationConfig, make_engine
from repro.world.task import TaskStatus

from tests.conftest import make_task

CHURN = dict(
    user_arrival_rate=2.0,
    user_departure_rate=0.1,
    task_arrival_rate=1.0,
    task_deadline_range=[3, 5],
)


def churn_config(**overrides):
    base = dict(
        n_users=15,
        n_tasks=6,
        area_side=1500.0,
        required_measurements=4,
        deadline_range=(3, 8),
        rounds=8,
        budget=200.0,
        seed=7,
        dynamics=dict(CHURN),
    )
    base.update(overrides)
    return SimulationConfig(**base)


def hand_timeline(events=(), renewals=None, spec=None, rounds=8):
    """A timeline over a hand-built stream (no RNG, no engine needed)."""
    stream = EventStream(
        events=tuple(events),
        renewals=renewals or {},
        last_task_round=max(
            (e.round_no for e in events if e.kind == "task_published"),
            default=0,
        ),
    )
    return WorldTimeline(
        spec or DynamicsSpec(), stream, rounds, seed_user_ids=[0, 1, 2]
    )


class TestEngineIntegration:
    def test_closed_world_has_no_timeline(self):
        engine = make_engine(churn_config(dynamics={}))
        assert engine.timeline is None
        result = engine.run()
        assert all(record.dynamics == () for record in result.rounds)

    def test_events_mutate_the_world(self):
        engine = make_engine(churn_config())
        assert engine.timeline is not None
        before_users = {u.user_id for u in engine.world.users}
        before_tasks = {t.task_id for t in engine.world.tasks}
        result = engine.run()

        arrived = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "user_arrived"
        }
        departed = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "user_departed"
        }
        published = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "task_published"
        }
        assert arrived and published, "churn rates should produce events"
        after_users = {u.user_id for u in engine.world.users}
        assert after_users == (before_users | arrived) - departed
        assert {t.task_id for t in engine.world.tasks} == (
            before_tasks | published
        )

    def test_streamed_tasks_join_the_economy(self):
        """Streamed tasks get rewards published and can be measured."""
        config = churn_config(
            dynamics=dict(task_arrival_rate=3.0), seed=3
        )
        engine = make_engine(config)
        result = engine.run()
        published = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "task_published"
        }
        assert published
        priced = {
            task_id
            for r in result.rounds
            for task_id in r.published_rewards
        }
        assert published <= priced

    def test_record_dynamics_round_trip_order(self):
        """Events land on the record of the round they take effect in."""
        engine = make_engine(churn_config())
        result = engine.run()
        for record in result.rounds:
            assert all(e.round_no == record.round_no for e in record.dynamics)

    def test_run_extends_past_quiet_rounds_for_pending_tasks(self):
        """The engine must not stop while the stream still owes tasks."""
        engine = make_engine(churn_config())
        last = engine.timeline.stream.last_task_round
        assert engine.timeline.has_pending_tasks(last)
        assert not engine.timeline.has_pending_tasks(last + 1)


class TestRenewal:
    def test_renewal_extends_deadline(self):
        timeline = hand_timeline(
            renewals={0: ((0.1, 4),)},
            spec=DynamicsSpec(deadline_renewal_prob=0.5),
        )
        task = make_task(0, deadline=3)
        assert timeline.try_renew(task, round_no=3) == 7
        # The single pre-drawn lottery is spent.
        assert timeline.try_renew(task, round_no=7) is None

    def test_losing_draw_returns_none(self):
        timeline = hand_timeline(
            renewals={0: ((0.9, 4),)},
            spec=DynamicsSpec(deadline_renewal_prob=0.5),
        )
        assert timeline.try_renew(make_task(0, deadline=3), round_no=3) is None

    def test_unknown_task_has_no_lottery(self):
        timeline = hand_timeline()
        assert timeline.try_renew(make_task(99, deadline=3), round_no=3) is None

    def test_engine_emits_renewal_and_expiry_events(self):
        config = churn_config(
            n_users=4,
            required_measurements=30,  # unmeetable: every task goes unmet
            budget=800.0,  # keep Eq. 9's base reward positive
            deadline_range=(2, 3),
            dynamics=dict(
                deadline_renewal_prob=0.5, max_deadline_renewals=1
            ),
            seed=1,
        )
        engine = make_engine(config)
        result = engine.run()
        kinds = {e.kind for r in result.rounds for e in r.dynamics}
        assert "task_expired" in kinds
        expired_events = {
            e.subject_id
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "task_expired"
        }
        expired_records = {
            tid for r in result.rounds for tid in r.expired_task_ids
        }
        assert expired_events == expired_records
        for task in engine.world.tasks:
            if task.task_id in expired_records:
                assert task.status is TaskStatus.EXPIRED

    def test_renewed_task_outlives_original_deadline(self):
        config = churn_config(
            n_users=4,
            required_measurements=30,
            budget=800.0,
            deadline_range=(2, 2),
            rounds=6,
            dynamics=dict(
                deadline_renewal_prob=1.0, max_deadline_renewals=1
            ),
            seed=1,
        )
        engine = make_engine(config)
        result = engine.run()
        renewed = [
            e
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "deadline_renewed"
        ]
        assert renewed, "prob=1.0 must renew every unmet deadline once"
        for event in renewed:
            assert event.get("deadline") > 2
            # A renewed task is not expired in the same round.
            record = result.rounds[event.round_no - 1]
            assert event.subject_id not in record.expired_task_ids


class TestPresenceLedger:
    def test_seed_crowd_scores_full_presence(self):
        timeline = hand_timeline()
        assert timeline.mean_presence(5) == pytest.approx(1.0)

    def test_new_arrivals_lower_mean_presence(self):
        arrival = WorldEvent(
            "user_arrived",
            4,
            10,
            payload=(
                ("cost_per_meter", 0.002),
                ("speed", 2.0),
                ("time_budget", 900.0),
                ("x", 10.0),
                ("y", 20.0),
            ),
        )

        class _Sink:
            def _apply_dynamics(self, changes):
                pass

        timeline = hand_timeline(events=[arrival])
        timeline.advance(4, _Sink())
        # Three seed users at 1.0, one arrival at 1/4.
        assert timeline.mean_presence(4) == pytest.approx(
            (3 * 1.0 + 0.25) / 4
        )

    def test_departures_leave_the_ledger(self):
        class _Sink:
            def _apply_dynamics(self, changes):
                pass

        timeline = hand_timeline(
            events=[WorldEvent("user_departed", 3, 0)]
        )
        timeline.advance(3, _Sink())
        assert 0 not in timeline._alive
        assert timeline.mean_presence(3) == pytest.approx(1.0)

    def test_advance_returns_events_for_the_record(self):
        event = WorldEvent("user_departed", 2, 1)

        applied = []

        class _Sink:
            def _apply_dynamics(self, changes):
                applied.append(changes)

        timeline = hand_timeline(events=[event])
        assert timeline.advance(2, _Sink()) == [event]
        assert len(applied) == 1 and applied[0].departures == [1]
        assert timeline.advance(5, _Sink()) == []
        assert len(applied) == 1, "no-change rounds must not call the hook"


class TestStreamedRequiredTotal:
    def test_sums_required_over_published_tasks(self):
        events = [
            WorldEvent(
                "task_published",
                2,
                7,
                payload=(("deadline", 5), ("required", 4), ("x", 1.0), ("y", 2.0)),
            ),
            WorldEvent(
                "task_published",
                3,
                8,
                payload=(("deadline", 6), ("required", 6), ("x", 3.0), ("y", 4.0)),
            ),
            WorldEvent("user_departed", 3, 0),
        ]
        assert hand_timeline(events=events).streamed_required_total() == 10

    def test_empty_stream_totals_zero(self):
        assert hand_timeline().streamed_required_total() == 0
