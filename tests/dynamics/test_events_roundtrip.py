"""Open-world events through the JSONL log and back."""

import json

from repro.io.events import read_events_jsonl, write_events_jsonl
from repro.simulation import SimulationConfig, make_engine

CHURN = {
    "user_arrival_rate": 2.0,
    "user_departure_rate": 0.1,
    "task_arrival_rate": 1.5,
    "task_deadline_range": [3, 5],
    "deadline_renewal_prob": 0.5,
}


def run_config(**overrides):
    base = dict(
        n_users=20,
        n_tasks=5,
        area_side=1500.0,
        required_measurements=6,
        deadline_range=(3, 6),
        rounds=8,
        budget=300.0,
        seed=9,
        dynamics=dict(CHURN),
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestRoundTrip:
    def test_dynamics_survive_write_read(self, tmp_path):
        result = make_engine(run_config()).run()
        assert any(r.dynamics for r in result.rounds)
        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        replay = read_events_jsonl(path)
        assert [r.dynamics for r in replay.rounds] == [
            r.dynamics for r in result.rounds
        ]

    def test_streamed_tasks_fold_into_the_task_tables(self, tmp_path):
        result = make_engine(run_config()).run()
        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        replay = read_events_jsonl(path)
        published = {
            e.subject_id: e
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "task_published"
        }
        assert published, "the fixture must stream tasks"
        for tid, event in published.items():
            assert replay.task_required[tid] == event.get("required")
            assert tid in replay.task_deadlines
        assert replay.n_tasks == 5 + len(published)
        # Measurements on streamed tasks count in the replay totals.
        counts = replay.measurements_by_task()
        assert set(published) <= set(counts)

    def test_renewals_override_published_deadlines(self, tmp_path):
        config = run_config(
            n_users=4,
            required_measurements=30,
            budget=1500.0,
            deadline_range=(2, 2),
            dynamics={
                "deadline_renewal_prob": 1.0,
                "max_deadline_renewals": 1,
                "task_deadline_range": [3, 4],
            },
        )
        result = make_engine(config).run()
        renewed = {
            e.subject_id: e.get("deadline")
            for r in result.rounds
            for e in r.dynamics
            if e.kind == "deadline_renewed"
        }
        assert renewed, "prob=1.0 must renew unmet deadlines"
        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        replay = read_events_jsonl(path)
        for tid, deadline in renewed.items():
            assert replay.task_deadlines[tid] == deadline

    def test_closed_world_lines_carry_no_dynamics_key(self, tmp_path):
        result = make_engine(run_config(dynamics={})).run()
        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        for line in path.read_text().splitlines():
            assert "dynamics" not in json.loads(line)

    def test_round_payload_dynamics_shape(self, tmp_path):
        """The on-disk shape is the documented dict-of-primitives."""
        result = make_engine(run_config()).run()
        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        seen_kinds = set()
        for line in path.read_text().splitlines()[1:]:
            payload = json.loads(line)
            for entry in payload.get("dynamics", ()):
                assert set(entry) <= {"kind", "round_no", "subject_id", "payload"}
                assert entry["round_no"] == payload["round_no"]
                seen_kinds.add(entry["kind"])
        assert "user_arrived" in seen_kinds
        assert "task_published" in seen_kinds
