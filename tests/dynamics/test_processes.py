"""The pre-generated event stream: validation, determinism, shape."""

import numpy as np
import pytest

from repro.dynamics.processes import DynamicsSpec, WorldEvent, generate_stream
from repro.geometry import Point, RectRegion
from repro.resilience.errors import ConfigError

REGION = RectRegion.square(3000.0)


def make_stream(spec, rounds=10, seed=0, rng=None, **overrides):
    kwargs = dict(
        region=REGION,
        rounds=rounds,
        seed_user_ids=list(range(20)),
        seed_task_ids=list(range(5)),
        required_measurements=4,
        deadline_range=(3, 8),
        user_speed=2.0,
        cost_per_meter=0.002,
        user_time_budget=900.0,
        heterogeneity=0.0,
    )
    kwargs.update(overrides)
    if rng is None:
        rng = np.random.default_rng(seed)
    return generate_stream(spec, rng=rng, **kwargs)


class TestWorldEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            WorldEvent(kind="user_teleported", round_no=2, subject_id=1)

    def test_dict_round_trip(self):
        event = WorldEvent(
            kind="task_published",
            round_no=3,
            subject_id=7,
            payload=(("deadline", 6), ("required", 4), ("x", 1.5), ("y", -2.0)),
        )
        assert WorldEvent.from_dict(event.as_dict()) == event

    def test_payload_omitted_when_empty(self):
        event = WorldEvent(kind="task_expired", round_no=4, subject_id=2)
        assert "payload" not in event.as_dict()

    def test_get_with_default(self):
        event = WorldEvent(
            kind="deadline_renewed", round_no=2, subject_id=0,
            payload=(("deadline", 9),),
        )
        assert event.get("deadline") == 9
        assert event.get("missing", -1) == -1


class TestDynamicsSpec:
    def test_defaults_are_empty(self):
        assert DynamicsSpec().empty

    @pytest.mark.parametrize("field, value", [
        ("user_arrival_rate", -0.5),
        ("task_arrival_rate", -1.0),
        ("user_departure_rate", 1.0),
        ("user_departure_rate", -0.1),
        ("deadline_renewal_prob", 1.5),
        ("max_deadline_renewals", -1),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ConfigError):
            DynamicsSpec(**{field: value})

    def test_rejects_bad_deadline_range(self):
        with pytest.raises(ConfigError):
            DynamicsSpec(task_deadline_range=(5, 3))
        with pytest.raises(ConfigError):
            DynamicsSpec(task_deadline_range=(0, 3))

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="poisson_rate"):
            DynamicsSpec.from_mapping({"poisson_rate": 1.0})

    def test_mapping_round_trip(self):
        spec = DynamicsSpec(
            user_arrival_rate=2.0,
            user_departure_rate=0.05,
            task_arrival_rate=1.5,
            task_deadline_range=(4, 8),
            deadline_renewal_prob=0.3,
            max_deadline_renewals=2,
        )
        assert DynamicsSpec.from_mapping(spec.as_mapping()) == spec

    def test_as_mapping_drops_defaults(self):
        assert DynamicsSpec().as_mapping() == {}
        assert DynamicsSpec(task_arrival_rate=1.0).as_mapping() == {
            "task_arrival_rate": 1.0
        }


class TestGenerateStream:
    def test_empty_spec_consumes_no_randomness(self):
        rng = np.random.default_rng(42)
        stream = make_stream(DynamicsSpec(), rng=rng)
        assert stream.events == ()
        assert stream.renewals == {}
        assert stream.last_task_round == 0
        # The generator's state is untouched: an all-zero spec draws
        # nothing, mirroring the closed-world zero-heterogeneity idiom.
        assert rng.random() == np.random.default_rng(42).random()

    def test_deterministic_for_same_seed(self):
        spec = DynamicsSpec(
            user_arrival_rate=2.0,
            user_departure_rate=0.1,
            task_arrival_rate=1.0,
            deadline_renewal_prob=0.5,
            max_deadline_renewals=2,
        )
        assert make_stream(spec, seed=3) == make_stream(spec, seed=3)
        assert make_stream(spec, seed=3) != make_stream(spec, seed=4)

    def test_ids_continue_from_seed_world(self):
        spec = DynamicsSpec(user_arrival_rate=3.0, task_arrival_rate=2.0)
        stream = make_stream(spec)
        user_ids = [
            e.subject_id for e in stream.events if e.kind == "user_arrived"
        ]
        task_ids = [
            e.subject_id for e in stream.events if e.kind == "task_published"
        ]
        assert user_ids and min(user_ids) == 20  # seed users are 0..19
        assert user_ids == sorted(user_ids) and len(set(user_ids)) == len(user_ids)
        assert task_ids and min(task_ids) == 5  # seed tasks are 0..4
        assert len(set(task_ids)) == len(task_ids)

    def test_events_start_at_round_two(self):
        spec = DynamicsSpec(
            user_arrival_rate=5.0,
            user_departure_rate=0.2,
            task_arrival_rate=3.0,
        )
        stream = make_stream(spec)
        assert stream.events
        assert all(2 <= e.round_no <= 10 for e in stream.events)

    def test_departures_only_hit_live_users(self):
        spec = DynamicsSpec(user_arrival_rate=1.0, user_departure_rate=0.3)
        stream = make_stream(spec, rounds=15)
        alive = set(range(20))
        for event in stream.events:
            if event.kind == "user_arrived":
                alive.add(event.subject_id)
            elif event.kind == "user_departed":
                assert event.subject_id in alive
                alive.remove(event.subject_id)

    def test_published_tasks_carry_valid_deadlines(self):
        spec = DynamicsSpec(
            task_arrival_rate=2.0, task_deadline_range=(4, 6)
        )
        stream = make_stream(spec)
        published = [e for e in stream.events if e.kind == "task_published"]
        assert published
        for event in published:
            duration = event.get("deadline") - (event.round_no - 1)
            assert 4 <= duration <= 6
            assert event.get("required") == 4
            assert REGION.contains(Point(event.get("x"), event.get("y")))
        assert stream.last_task_round == max(e.round_no for e in published)

    def test_renewals_pre_drawn_per_task(self):
        spec = DynamicsSpec(
            task_arrival_rate=1.0,
            deadline_renewal_prob=0.5,
            max_deadline_renewals=3,
        )
        stream = make_stream(spec)
        published = {
            e.subject_id for e in stream.events if e.kind == "task_published"
        }
        assert set(stream.renewals) == set(range(5)) | published
        for pairs in stream.renewals.values():
            assert len(pairs) == 3
            for draw, duration in pairs:
                assert 0.0 <= draw < 1.0
                assert 3 <= duration <= 8  # falls back to deadline_range

    def test_no_renewals_when_prob_zero(self):
        spec = DynamicsSpec(task_arrival_rate=1.0)
        assert make_stream(spec).renewals == {}

    def test_heterogeneity_draws_user_traits(self):
        spec = DynamicsSpec(user_arrival_rate=4.0)
        homogeneous = make_stream(spec, heterogeneity=0.0)
        varied = make_stream(spec, heterogeneity=0.5)
        arrivals = [
            e for e in varied.events if e.kind == "user_arrived"
        ]
        assert arrivals
        speeds = {e.get("speed") for e in arrivals}
        assert len(speeds) > 1
        assert all(
            e.get("speed") == 2.0
            for e in homogeneous.events
            if e.kind == "user_arrived"
        )
