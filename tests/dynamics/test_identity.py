"""The open-world reproducibility contract, engine by engine.

Two invariants from docs/architecture.md are pinned here:

1. An *empty* dynamics block is inert: a run configured with all-zero
   churn rates is bit-identical (canonical round payloads — everything
   but wall-clock timings) to the same run with no dynamics block at
   all, on the scalar engine, the batched engine, and the 2-worker
   sharded path.
2. A *churning* run is an execution-independent function of (config,
   seed): scalar vs batched, 1 vs 2 workers, and interrupted-then-
   resumed vs uninterrupted all replay the same history.
"""

import pytest

from repro.io.events import _round_payload
from repro.scenarios import get_preset
from repro.server.worker import ResumingRoundWriter, canonical_round
from repro.simulation import SimulationConfig, make_engine
from repro.simulation.batch import BatchedSimulationEngine

ZERO_DYNAMICS = {
    "user_arrival_rate": 0.0,
    "user_departure_rate": 0.0,
    "task_arrival_rate": 0.0,
    "deadline_renewal_prob": 0.0,
}


def closed_config(**overrides):
    base = dict(
        n_users=30,
        n_tasks=8,
        area_side=2000.0,
        required_measurements=4,
        deadline_range=(3, 8),
        rounds=6,
        budget=400.0,
        seed=17,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def churn_config(**overrides):
    """The poisson-churn preset, downsized to unit-test scale."""
    defaults = dict(
        n_users=40, rounds=6, budget=600.0, seed=11, stream_rounds=False
    )
    defaults.update(overrides)
    return get_preset("poisson-churn").to_config(**defaults)


def canonical_rounds(result):
    """Wall-clock-free round payloads: the bit-identity currency."""
    return [canonical_round(_round_payload(r)) for r in result.rounds]


def semantic_rounds(result):
    """Engine-comparable behavioural fields (perf counters legitimately
    differ between the scalar and batched paths)."""
    return [
        (
            r.round_no,
            tuple(sorted(r.published_rewards.items())),
            tuple(
                (u.user_id, u.selected_task_ids, u.distance, u.reward, u.cost)
                for u in r.user_records
            ),
            tuple((m.task_id, m.user_id, m.reward) for m in r.measurements),
            tuple((j.task_id, j.user_id, j.reason) for j in r.rejections),
            r.completed_task_ids,
            r.expired_task_ids,
            r.selector_fallbacks,
            r.dynamics,
        )
        for r in result.rounds
    ]


def run_sharded(config, workers):
    engine = BatchedSimulationEngine(config, workers=workers)
    try:
        return engine.run()
    finally:
        engine.close()


class TestEmptyDynamicsIsInert:
    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    def test_zero_rates_match_no_block(self, engine):
        closed = make_engine(closed_config(engine=engine)).run()
        zeroed = make_engine(
            closed_config(engine=engine, dynamics=dict(ZERO_DYNAMICS))
        ).run()
        assert canonical_rounds(zeroed) == canonical_rounds(closed)

    def test_zero_rates_match_no_block_sharded(self):
        config = closed_config(engine="batched")
        closed = run_sharded(config, workers=2)
        zeroed = run_sharded(
            closed_config(engine="batched", dynamics=dict(ZERO_DYNAMICS)),
            workers=2,
        )
        assert canonical_rounds(zeroed) == canonical_rounds(closed)

    def test_closed_world_payloads_have_no_dynamics_key(self):
        result = make_engine(closed_config()).run()
        for record in result.rounds:
            assert "dynamics" not in _round_payload(record)


class TestChurnIsExecutionIndependent:
    def test_scalar_matches_batched(self):
        config = churn_config()
        scalar = make_engine(config.with_overrides(engine="scalar")).run()
        batched = make_engine(config).run()
        semantic = semantic_rounds(scalar)
        assert any(r[-1] for r in semantic), "churn must produce events"
        assert semantic_rounds(batched) == semantic

    @pytest.mark.parametrize("workers", [2])
    def test_worker_count_does_not_change_history(self, workers):
        config = churn_config()
        baseline = BatchedSimulationEngine(config).run()
        sharded = run_sharded(config, workers=workers)
        assert canonical_rounds(sharded) == canonical_rounds(baseline)

    def test_different_seeds_differ(self):
        a = make_engine(churn_config(seed=1)).run()
        b = make_engine(churn_config(seed=2)).run()
        assert semantic_rounds(a) != semantic_rounds(b)


class TestResumeIdentity:
    def run_with_writer(self, config, path, stop_after=None):
        """Run (or partially run) ``config``, streaming rounds to ``path``."""
        engine = make_engine(config)
        writer = ResumingRoundWriter(path, engine.world)
        engine.observers.append(writer)
        try:
            if stop_after is None:
                engine.run()
            else:
                for _ in range(stop_after):
                    engine.step()
        finally:
            writer.close()
        return writer

    def read_rounds(self, path):
        import json

        lines = path.read_text().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert payloads and payloads[0]["kind"] == "meta"
        return [canonical_round(p) for p in payloads[1:] if p["kind"] == "round"]

    def test_interrupted_churn_run_resumes_bit_identically(self, tmp_path):
        # A task stream keeps the run alive well past round 3, so the
        # "crash" below lands mid-history rather than at the end.
        config = churn_config(
            dynamics={
                "user_arrival_rate": 3.0,
                "user_departure_rate": 0.05,
                "task_arrival_rate": 2.0,
                "task_deadline_range": [2, 4],
            }
        )
        reference = tmp_path / "reference.jsonl"
        resumed = tmp_path / "resumed.jsonl"

        self.run_with_writer(config, reference)

        # Simulate a crash after three rounds, then a fresh worker
        # replaying the same deterministic run onto the same file.
        partial = self.run_with_writer(config, resumed, stop_after=3)
        assert partial.rounds_written == 3
        second = self.run_with_writer(config, resumed)
        assert second.completed_rounds == 3, "resume must see prior rounds"

        reference_rounds = self.read_rounds(reference)
        assert self.read_rounds(resumed) == reference_rounds
        assert any(
            payload.get("dynamics") for payload in reference_rounds
        ), "the fixture must actually churn"
