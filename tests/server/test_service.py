"""End-to-end tests for the job service over real HTTP.

Each test boots a :class:`~repro.server.app.JobService` on an ephemeral
port inside ``asyncio.run`` and talks to it through the blocking
:class:`~repro.server.client.ServerClient` on executor threads — the
same wire path production clients use (chunked NDJSON included).
"""

import asyncio
import functools

from repro.server import JobService, WorkerSupervisor
from repro.server.client import ServerClient

FAST = {"overrides": {"n_users": 25, "n_tasks": 6, "rounds": 4,
                      "budget": 500.0, "seed": 11}}

#: A job long enough to still be running when we poke at it (~10s).
SLOW = {"overrides": {"n_users": 2000, "n_tasks": 50, "rounds": 80,
                      "budget": 1e7, "arrival": "poisson", "seed": 2}}


def fast(seed):
    doc = {"overrides": dict(FAST["overrides"])}
    doc["overrides"]["seed"] = seed
    return doc


def service_test(**svc_kwargs):
    """Decorator: run the test coroutine against a live service.

    The coroutine receives ``(service, client, call)`` where ``call``
    hops a blocking client method onto an executor thread.
    """

    def decorate(coro_fn):
        def wrapper(tmp_path):
            async def main():
                kwargs = dict(svc_kwargs)
                supervisor_kwargs = kwargs.pop("supervisor_kwargs", None)
                if supervisor_kwargs is not None:
                    kwargs["supervisor"] = WorkerSupervisor(**supervisor_kwargs)
                service = JobService(tmp_path / "root", **kwargs)
                await service.start()
                client = ServerClient("127.0.0.1", service.port, timeout=60)
                loop = asyncio.get_running_loop()

                def call(fn, *args, **kw):
                    return loop.run_in_executor(
                        None, functools.partial(fn, *args, **kw)
                    )

                try:
                    await coro_fn(service, client, call)
                finally:
                    await service.stop()

            asyncio.run(main())

        # pytest must see wrapper's own (tmp_path) signature, so no
        # functools.wraps here — just carry the name and docstring over.
        wrapper.__name__ = coro_fn.__name__
        wrapper.__doc__ = coro_fn.__doc__
        return wrapper

    return decorate


@service_test(queue_limit=4, concurrency=1)
async def test_submit_runs_to_done(service, client, call):
    status, body, _ = await call(client.submit, FAST)
    assert status == 201
    assert body["deduplicated"] is False
    job_id = body["job"]["job_id"]
    final = await call(client.wait, job_id, 120)
    assert final["state"] == "done"
    assert final["result"]["summary"]["coverage"] >= 0
    status, doc = await call(client.status, job_id)
    assert status == 200 and doc["job"]["terminal"]


@service_test(queue_limit=4, concurrency=1)
async def test_dedup_by_fingerprint(service, client, call):
    status1, body1, _ = await call(client.submit, FAST)
    status2, body2, _ = await call(client.submit, FAST)
    assert status1 == 201
    assert status2 == 200
    assert body2["deduplicated"] is True
    assert body2["job"]["job_id"] == body1["job"]["job_id"]


@service_test(queue_limit=4, concurrency=1)
async def test_invalid_submission_is_structured_400(service, client, call):
    status, body, _ = await call(
        client.submit, {"overrides": {"n_users": -5}}
    )
    assert status == 400
    assert body["error"] == "invalid submission"
    assert body["field"] == "n_users"
    assert body["reason"]


@service_test(queue_limit=2, concurrency=1)
async def test_backpressure_429_with_retry_after(service, client, call):
    # One slow job occupies the worker; two fill the queue; the next
    # submissions must be refused with 429 + Retry-After.
    accepted = 0
    refused = []
    for seed in range(100, 108):
        status, body, headers = await call(
            client.submit, fast(seed)
        )
        if status == 201:
            accepted += 1
        elif status == 429:
            refused.append((body, headers))
    assert refused, "queue never saturated"
    for body, headers in refused:
        assert body["error"] == "queue full"
        assert int(headers["Retry-After"]) >= 1


@service_test(queue_limit=8, concurrency=1)
async def test_cancel_queued_and_running(service, client, call):
    status, body, _ = await call(client.submit, SLOW)
    running_id = body["job"]["job_id"]
    status, body, _ = await call(client.submit, fast(200))
    queued_id = body["job"]["job_id"]

    # Give the dispatcher a beat to start the slow job.
    for _ in range(100):
        status, doc = await call(client.status, running_id)
        if doc["job"]["state"] == "running":
            break
        await asyncio.sleep(0.05)

    status, doc = await call(client.cancel, queued_id)
    assert status == 200
    assert doc["job"]["state"] == "cancelled"

    status, doc = await call(client.cancel, running_id)
    assert status == 202
    final = await call(client.wait, running_id, 60)
    assert final["state"] == "cancelled"
    assert final["error"] == "cancelled by client"

    # Terminal jobs refuse further cancels.
    status, doc = await call(client.cancel, running_id)
    assert status == 409


@service_test(queue_limit=4, concurrency=1)
async def test_cancel_unknown_job_404(service, client, call):
    status, doc = await call(client.cancel, "job-999999")
    assert status == 404


@service_test(queue_limit=4, concurrency=1)
async def test_events_tail_streams_to_terminal_line(service, client, call):
    status, body, _ = await call(client.submit, FAST)
    job_id = body["job"]["job_id"]
    lines = await call(lambda: list(client.tail(job_id)))
    kinds = [line["kind"] for line in lines]
    assert kinds[0] == "meta"
    assert kinds[-1] == "job_state"
    assert lines[-1]["state"] == "done"
    rounds = [line["round_no"] for line in lines if line["kind"] == "round"]
    assert rounds == list(range(1, len(rounds) + 1))


@service_test(queue_limit=4, concurrency=1)
async def test_health_and_readiness(service, client, call):
    status, doc = await call(client.healthz)
    assert (status, doc["status"]) == (200, "ok")
    status, doc = await call(client.readyz)
    assert status == 200
    assert doc["status"] == "ready"
    # Shutdown flips readiness but never liveness.
    service.request_stop()
    status, doc = await call(client.readyz)
    assert status == 503
    status, doc = await call(client.healthz)
    assert status == 200


@service_test(queue_limit=4, concurrency=1)
async def test_http_refusals(service, client, call):
    import http.client
    import json as _json

    def raw(method, path, body=b"", headers=None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=30
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, _json.loads(response.read() or b"{}")
        finally:
            conn.close()

    status, _doc = await call(raw, "GET", "/no/such/route")
    assert status == 404
    status, _doc = await call(raw, "DELETE", "/jobs")
    assert status == 405
    status, doc = await call(raw, "POST", "/jobs", b"{not json")
    assert status == 400 and doc["field"] == "body"
    status, doc = await call(
        raw, "POST", "/jobs", b"x",
        {"Content-Length": str(10_000_000)},
    )
    assert status == 413


@service_test(
    queue_limit=4,
    concurrency=1,
    supervisor_kwargs=dict(max_attempts=2, backoff_base=0.01, backoff_cap=0.05),
)
async def test_poisoned_job_fails_after_capped_retries(service, client, call):
    # Passes boundary validation (selector_kwargs contents are
    # selector-specific) but crashes every worker at engine build.
    poison = {"overrides": {"n_users": 20, "rounds": 2, "seed": 1,
                            "selector_kwargs": {"bogus_kwarg": 1}}}
    status, body, _ = await call(client.submit, poison)
    assert status == 201
    final = await call(client.wait, body["job"]["job_id"], 120)
    assert final["state"] == "failed"
    assert final["attempts"] == 2
    assert "poisoned" in final["error"]


@service_test(queue_limit=4, concurrency=1, default_timeout=1.0)
async def test_timeout_marks_timed_out(service, client, call):
    status, body, _ = await call(client.submit, SLOW)
    assert status == 201
    final = await call(client.wait, body["job"]["job_id"], 60)
    assert final["state"] == "timed_out"
    assert "budget" in final["error"]


@service_test(queue_limit=8, concurrency=1)
async def test_memory_pressure_sheds_lowest_priority(service, client, call):
    # The slow job occupies the single worker; the queued jobs are the
    # shedding pool.
    status, body, _ = await call(client.submit, SLOW)
    slow_id = body["job"]["job_id"]
    for _ in range(200):
        status, doc = await call(client.status, slow_id)
        if doc["job"]["state"] == "running":
            break
        await asyncio.sleep(0.05)
    assert doc["job"]["state"] == "running"

    victim_ids = {}
    for seed, priority in ((300, 5), (301, 0)):
        doc = fast(seed)
        doc["priority"] = priority
        status, body, _ = await call(client.submit, doc)
        assert status == 201
        victim_ids[priority] = body["job"]["job_id"]

    # Trip the watermark: limit 1 byte, reader says 2 bytes — over.
    readings = iter([2, 0, 0, 0, 0, 0, 0, 0, 0, 0])
    service.watermark.limit_bytes = 1
    service.watermark._read = lambda: next(readings, 0)

    for _ in range(100):
        status, doc = await call(client.status, victim_ids[0])
        if doc["job"]["state"] == "cancelled":
            break
        await asyncio.sleep(0.05)
    assert doc["job"]["state"] == "cancelled"
    assert "memory pressure" in doc["job"]["error"]
    # The higher-priority job survived the shed.
    status, doc = await call(client.status, victim_ids[5])
    assert doc["job"]["state"] in ("queued", "running", "done")
