"""Tests for the worker process: resumable events, exit codes, fault drills.

Most tests drive :func:`repro.server.worker.run_job` in-process (same
code the subprocess entry point runs); the SIGKILL-shaped cases chop the
events file the way a kill would and assert the append-only resume
contract: one record per round, byte-for-byte stable simulation content.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience.errors import ResultCorruption
from repro.server.worker import (
    EXIT_BAD_JOB,
    EXIT_CANCELLED,
    EXIT_DONE,
    EXIT_INJECTED_CRASH,
    EXIT_TIMED_OUT,
    CRASH_P_ENV,
    CRASH_SEED_ENV,
    ResumingRoundWriter,
    canonical_round,
    run_job,
)

FAST_PAYLOAD = {"overrides": {"n_users": 25, "n_tasks": 6, "rounds": 4,
                              "budget": 500.0, "seed": 11}}


def write_job(job_dir, payload=None, job_id="job-t", obs_store=None):
    job_dir.mkdir(parents=True, exist_ok=True)
    (job_dir / "job.json").write_text(json.dumps({
        "job_id": job_id,
        "payload": payload or FAST_PAYLOAD,
        "obs_store": str(obs_store) if obs_store else None,
    }))
    return job_dir


def round_records(job_dir):
    lines = (job_dir / "events.jsonl").read_text().splitlines()
    payloads = [json.loads(line) for line in lines]
    assert payloads[0]["kind"] == "meta"
    return [p for p in payloads[1:] if p["kind"] == "round"]


class TestRunJob:
    def test_done_writes_result_and_events(self, tmp_path):
        job_dir = write_job(tmp_path / "job")
        assert run_job(job_dir, attempt=1, deadline=None) == EXIT_DONE
        result = json.loads((job_dir / "result.json").read_text())
        assert result["status"] == "done"
        rounds = round_records(job_dir)
        assert [r["round_no"] for r in rounds] == list(
            range(1, result["rounds_played"] + 1)
        )

    def test_bad_job_dir_is_poison(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert run_job(empty, attempt=1, deadline=None) == EXIT_BAD_JOB

    def test_invalid_payload_is_poison(self, tmp_path):
        job_dir = write_job(
            tmp_path / "job", payload={"overrides": {"bogus": 1}}
        )
        assert run_job(job_dir, attempt=1, deadline=None) == EXIT_BAD_JOB

    def test_pre_tripped_cancel_file(self, tmp_path):
        job_dir = write_job(tmp_path / "job")
        (job_dir / "cancel").write_text("cancelled by client\n")
        assert run_job(job_dir, attempt=1, deadline=None) == EXIT_CANCELLED

    def test_timeout_reason_maps_to_timed_out(self, tmp_path):
        job_dir = write_job(tmp_path / "job")
        (job_dir / "cancel").write_text("timeout\n")
        assert run_job(job_dir, attempt=1, deadline=None) == EXIT_TIMED_OUT

    def test_expired_deadline_times_out(self, tmp_path):
        job_dir = write_job(tmp_path / "job")
        assert run_job(job_dir, attempt=1, deadline=0.000001) == EXIT_TIMED_OUT

    def test_obs_store_ingest_is_idempotent(self, tmp_path):
        from repro.obs.store import RunStore

        store_root = tmp_path / "obs"
        job_dir = write_job(tmp_path / "job", obs_store=store_root)
        assert run_job(job_dir, attempt=1, deadline=None) == EXIT_DONE
        assert run_job(job_dir, attempt=2, deadline=None) == EXIT_DONE
        entries = RunStore(store_root).entries(kind="server-job")
        assert len(entries) == 1
        assert entries[0]["labels"]["job_id"] == "job-t"


class TestResume:
    def test_replay_appends_nothing(self, tmp_path):
        job_dir = write_job(tmp_path / "job")
        run_job(job_dir, attempt=1, deadline=None)
        before = (job_dir / "events.jsonl").read_bytes()
        run_job(job_dir, attempt=2, deadline=None)
        assert (job_dir / "events.jsonl").read_bytes() == before

    def test_torn_tail_resumes_without_dup_or_loss(self, tmp_path):
        """The SIGKILL signature: a partial trailing line.

        After resume the file must hold exactly one record per round,
        with simulation content identical to an uninterrupted run.
        """
        job_dir = write_job(tmp_path / "job")
        run_job(job_dir, attempt=1, deadline=None)
        reference = [canonical_round(r) for r in round_records(job_dir)]

        events = job_dir / "events.jsonl"
        raw = events.read_bytes()
        events.write_bytes(raw[: len(raw) - 40])  # tear the last line
        assert run_job(job_dir, attempt=2, deadline=None) == EXIT_DONE

        resumed = [canonical_round(r) for r in round_records(job_dir)]
        assert resumed == reference

    def test_resume_from_half_finished_run(self, tmp_path):
        """Keep only rounds 1..2 of 4, resume, expect the full set."""
        job_dir = write_job(tmp_path / "job")
        run_job(job_dir, attempt=1, deadline=None)
        reference = [canonical_round(r) for r in round_records(job_dir)]

        events = job_dir / "events.jsonl"
        lines = events.read_text().splitlines()
        events.write_text("\n".join(lines[:3]) + "\n")  # meta + 2 rounds
        assert run_job(job_dir, attempt=2, deadline=None) == EXIT_DONE
        assert [canonical_round(r) for r in round_records(job_dir)] == reference

    def test_midstream_corruption_is_fatal(self, tmp_path):
        job_dir = write_job(tmp_path / "job")
        run_job(job_dir, attempt=1, deadline=None)
        events = job_dir / "events.jsonl"
        lines = events.read_text().splitlines()
        lines[1] = '{"kind": "round", "round_no": 99}'  # out of sequence
        events.write_text("\n".join(lines) + "\n")
        world = object()
        with pytest.raises(ResultCorruption, match="sequence broken"):
            ResumingRoundWriter(events, world)


class TestCrashInjection:
    def test_injected_crash_exits_13(self, tmp_path):
        """p=1.0 must kill the worker on the first round — in a real
        subprocess, because the injector calls os._exit."""
        job_dir = write_job(tmp_path / "job")
        env = dict(os.environ)
        env[CRASH_P_ENV] = "1.0"
        env[CRASH_SEED_ENV] = "7"
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [str(_repro_src_root())]
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.server.worker", str(job_dir)],
            env=env, capture_output=True, timeout=120,
        )
        assert proc.returncode == EXIT_INJECTED_CRASH
        # The crash fired *after* the round was persisted.
        assert round_records(job_dir)

    def test_crash_then_clean_retry_completes(self, tmp_path):
        """Attempt 2 with p=0 resumes past the crash point."""
        job_dir = write_job(tmp_path / "job")
        env = dict(os.environ)
        env[CRASH_P_ENV] = "1.0"
        env[CRASH_SEED_ENV] = "7"
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [str(_repro_src_root())]
        )
        subprocess.run(
            [sys.executable, "-m", "repro.server.worker", str(job_dir)],
            env=env, capture_output=True, timeout=120,
        )
        durable = len(round_records(job_dir))
        assert run_job(job_dir, attempt=2, deadline=None) == EXIT_DONE
        rounds = round_records(job_dir)
        assert len(rounds) >= durable
        assert [r["round_no"] for r in rounds] == list(range(1, len(rounds) + 1))


class TestSigkillSubprocess:
    def test_sigkill_mid_run_then_resume(self, tmp_path):
        """Kill a real worker process mid-run; the resumed events file
        must equal an uninterrupted run's (timing telemetry aside)."""
        slow = {"overrides": {"n_users": 400, "n_tasks": 30, "rounds": 30,
                              "budget": 1e6, "arrival": "poisson", "seed": 2}}
        reference_dir = write_job(tmp_path / "ref", payload=slow, job_id="ref")
        assert run_job(reference_dir, attempt=1, deadline=None) == EXIT_DONE
        reference = [canonical_round(r) for r in round_records(reference_dir)]

        job_dir = write_job(tmp_path / "job", payload=slow, job_id="victim")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [str(_repro_src_root())]
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.server.worker", str(job_dir)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Wait until some rounds are durable, then SIGKILL.
        deadline = time.monotonic() + 60
        events = job_dir / "events.jsonl"
        while time.monotonic() < deadline:
            if events.exists() and events.stat().st_size > 2000:
                break
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        assert run_job(job_dir, attempt=2, deadline=None) == EXIT_DONE
        resumed = [canonical_round(r) for r in round_records(job_dir)]
        assert resumed == reference


def _repro_src_root():
    import repro

    from pathlib import Path

    return Path(repro.__file__).resolve().parent.parent
