"""Crash-recovery drill: SIGKILL a live server mid-job, restart, resume.

This is the whole point of the journal + append-only worker events: a
server killed without warning must come back, re-queue the in-flight
job, and finish it with **no duplicated and no lost round records** —
the rounds durable at kill time are a byte-stable prefix of the final
event history (timing telemetry aside).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.server.client import ServerClient
from repro.server.worker import canonical_round

#: Long enough (~10s) that the kill lands mid-run.
SLOW = {"overrides": {"n_users": 2000, "n_tasks": 50, "rounds": 80,
                      "budget": 1e7, "arrival": "poisson", "seed": 2}}


def _serve(root):
    """Launch ``repro serve`` in its own process group (so one killpg
    takes out the server *and* its worker children, like a machine
    reboot would)."""
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", str(root),
         "--port", "0", "--concurrency", "1"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )


def _client_when_up(root, deadline_seconds=30):
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            client = ServerClient.from_root(root, timeout=30)
            status, _ = client.healthz()
            if status == 200:
                return client
        except Exception:
            pass
        time.sleep(0.1)
    raise AssertionError("server never became healthy")


def _round_lines(events_path):
    rounds = []
    for line in events_path.read_bytes().split(b"\n"):
        if not line:
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            continue  # torn tail from the kill
        if payload.get("kind") == "round":
            rounds.append(payload)
    return rounds


@pytest.mark.slow
def test_sigkill_server_midjob_resumes_without_loss(tmp_path):
    root = tmp_path / "root"
    server = _serve(root)
    try:
        client = _client_when_up(root)
        status, body, _ = client.submit(SLOW)
        assert status == 201
        job_id = body["job"]["job_id"]
        events = root / "jobs" / job_id / "events.jsonl"

        # Let some rounds become durable, then kill the whole group.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if events.exists() and events.stat().st_size > 2000:
                break
            time.sleep(0.05)
        assert events.exists() and events.stat().st_size > 2000, (
            "job never produced durable rounds before the kill window"
        )
        os.killpg(os.getpgid(server.pid), signal.SIGKILL)
        server.wait(timeout=30)
        durable = [canonical_round(r) for r in _round_lines(events)]
        assert durable, "no complete round survived the kill"
    finally:
        if server.poll() is None:  # pragma: no cover - cleanup on failure
            os.killpg(os.getpgid(server.pid), signal.SIGKILL)

    # Restart over the same root: the journal re-queues the job and the
    # worker resumes append-only.
    server = _serve(root)
    try:
        client = _client_when_up(root)
        final = client.wait(job_id, timeout=120)
        assert final["state"] == "done"
        assert final["attempts"] >= 2  # the crash consumed an attempt

        rounds = [canonical_round(r) for r in _round_lines(events)]
        numbers = [r["round_no"] for r in rounds]
        assert numbers == list(range(1, len(numbers) + 1)), (
            "rounds duplicated or lost across the restart"
        )
        # Zero completed-round records lost: everything durable at kill
        # time is still there, unchanged.
        assert rounds[: len(durable)] == durable
        assert len(rounds) >= len(durable)

        # The journal agrees with the HTTP view after recovery.
        status, doc = client.list_jobs(state="done")
        assert any(j["job_id"] == job_id for j in doc["jobs"])
    finally:
        if server.poll() is None:
            os.killpg(os.getpgid(server.pid), signal.SIGKILL)
        server.wait(timeout=30)
