"""The chaos acceptance drill from the issue, end to end.

One service, everything going wrong at once: workers crash randomly
(p=0.2 fault injection), one job is poisoned (crashes every attempt),
and the queue is saturated past its limit.  The service must

- answer 429 + Retry-After for the overflow, never dying;
- drive every *accepted* job to a terminal state;
- poison the crash-every-time job (FAILED) after capped retries while
  jobs that merely crash *sometimes* still finish DONE;
- keep /healthz green the whole time.

(The SIGKILL-the-server half of the drill lives in test_recovery.py.)
"""

import asyncio
import functools

import pytest

from repro.server import JobService, WorkerSupervisor
from repro.server.client import ServerClient
from repro.server.worker import CRASH_P_ENV, CRASH_SEED_ENV

QUEUE_LIMIT = 3


def fast(seed):
    return {"overrides": {"n_users": 25, "n_tasks": 6, "rounds": 4,
                          "budget": 500.0, "seed": seed}}


POISON = {"overrides": {"n_users": 20, "rounds": 2, "seed": 1,
                        "selector_kwargs": {"bogus_kwarg": 1}}}


@pytest.mark.slow
def test_chaos_drill(tmp_path):
    asyncio.run(_drill(tmp_path))


async def _drill(tmp_path):
    supervisor = WorkerSupervisor(
        max_attempts=6,
        backoff_base=0.01,
        backoff_cap=0.05,
        env={CRASH_P_ENV: "0.2", CRASH_SEED_ENV: "1337"},
    )
    service = JobService(
        tmp_path / "root",
        queue_limit=QUEUE_LIMIT,
        concurrency=2,
        supervisor=supervisor,
    )
    await service.start()
    client = ServerClient("127.0.0.1", service.port, timeout=60)
    loop = asyncio.get_running_loop()

    def call(fn, *args, **kwargs):
        return loop.run_in_executor(None, functools.partial(fn, *args, **kwargs))

    health = []
    stop_probe = asyncio.Event()

    async def probe():
        while not stop_probe.is_set():
            status, _doc = await call(client.healthz)
            health.append(status)
            await asyncio.sleep(0.2)

    probe_task = loop.create_task(probe())
    try:
        status, body, _ = await call(client.submit, POISON)
        assert status == 201
        poison_id = body["job"]["job_id"]
        accepted = [poison_id]

        # Flood until the queue refuses — saturation is part of the drill.
        refusals = 0
        seed = 9000
        while refusals == 0:
            seed += 1
            assert seed < 9100, "queue never saturated"
            status, body, headers = await call(client.submit, fast(seed))
            if status == 201:
                accepted.append(body["job"]["job_id"])
            elif status == 429:
                refusals += 1
                assert int(headers["Retry-After"]) >= 1
                assert body["error"] == "queue full"

        waits = {job_id: call(client.wait, job_id, 300) for job_id in accepted}
        finals = {job_id: await fut for job_id, fut in waits.items()}

        # Every accepted job reached a terminal state.
        assert all(view["terminal"] for view in finals.values())

        # The poisoned job failed after exactly the attempt cap; the
        # merely-flaky jobs survived their p=0.2 crashes.
        poisoned = finals[poison_id]
        assert poisoned["state"] == "failed"
        assert "poisoned" in poisoned["error"]
        assert poisoned["attempts"] == supervisor.max_attempts
        for job_id, view in finals.items():
            if job_id == poison_id:
                continue
            assert view["state"] == "done", (job_id, view["error"])

        # Crash injection actually fired on at least one flaky job —
        # otherwise the drill degenerated into a sunny-day test.
        retried = [
            v["attempts"] for j, v in finals.items()
            if j != poison_id and v["attempts"] > 1
        ]
        assert retried, "p=0.2 injection never crashed a worker"
    finally:
        stop_probe.set()
        await probe_task
        await service.stop()

    # Liveness never flickered.
    assert health, "health probe never ran"
    assert set(health) == {200}
