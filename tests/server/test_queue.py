"""Tests for the bounded admission queue and the memory watermark."""

import pytest

from repro.server.queue import BoundedJobQueue, MemoryWatermark


class TestBoundedJobQueue:
    def test_priority_order_fifo_within_priority(self):
        queue = BoundedJobQueue(10)
        queue.offer("low", priority=0)
        queue.offer("high", priority=5)
        queue.offer("low2", priority=0)
        assert [queue.pop(), queue.pop(), queue.pop()] == ["high", "low", "low2"]
        assert queue.pop() is None

    def test_offer_refuses_when_full(self):
        queue = BoundedJobQueue(2)
        assert queue.offer("a")
        assert queue.offer("b")
        assert not queue.offer("c")
        assert queue.is_full

    def test_remove_frees_a_slot(self):
        queue = BoundedJobQueue(2)
        queue.offer("a")
        queue.offer("b")
        assert queue.remove("a")
        assert not queue.is_full
        assert queue.offer("c")
        assert queue.pop() == "b"
        assert queue.pop() == "c"

    def test_remove_unknown_is_false(self):
        queue = BoundedJobQueue(2)
        queue.offer("a")
        assert not queue.remove("nope")
        assert len(queue) == 1

    def test_shed_lowest_takes_newest_least_important(self):
        queue = BoundedJobQueue(10)
        queue.offer("keep", priority=5)
        queue.offer("old-low", priority=0)
        queue.offer("new-low", priority=0)
        assert queue.shed_lowest() == "new-low"
        assert queue.shed_lowest() == "old-low"
        assert queue.shed_lowest() == "keep"
        assert queue.shed_lowest() is None

    def test_snapshot_matches_pop_order(self):
        queue = BoundedJobQueue(10)
        queue.offer("b", priority=1)
        queue.offer("a", priority=9)
        queue.offer("c", priority=1)
        assert queue.snapshot() == ["a", "b", "c"]
        # snapshot does not consume
        assert len(queue) == 3

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError, match="limit"):
            BoundedJobQueue(0)


class TestMemoryWatermark:
    def test_disabled_without_limit(self):
        mark = MemoryWatermark(None, read=lambda: 10**12)
        assert not mark.over_limit

    def test_trips_over_limit(self):
        readings = iter([100, 300])
        mark = MemoryWatermark(200, read=lambda: next(readings))
        assert not mark.over_limit
        assert mark.over_limit

    def test_unreadable_rss_never_trips(self):
        # read_rss_bytes returns 0 on platforms without /proc.
        mark = MemoryWatermark(200, read=lambda: 0)
        assert not mark.over_limit

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ValueError, match="memory limit"):
            MemoryWatermark(0)
