"""Tests for boundary validation: structured 400s with field-level blame."""

import pytest

from repro.server.validate import (
    InvalidSubmission,
    parse_submission,
)


def reject(body):
    with pytest.raises(InvalidSubmission) as excinfo:
        parse_submission(body)
    return excinfo.value


class TestShapeValidation:
    def test_non_mapping_body(self):
        err = reject([1, 2, 3])
        assert err.field == "body"
        assert "JSON object" in err.reason

    def test_unknown_key_named(self):
        err = reject({"scnario": "city-2k"})
        assert err.field == "scnario"
        assert "valid keys" in err.reason

    def test_scenario_and_spec_are_exclusive(self):
        err = reject({"scenario": "city-2k", "spec": {"name": "x"}})
        assert err.field == "scenario"
        assert "not both" in err.reason

    def test_priority_must_be_int(self):
        assert reject({"priority": "high"}).field == "priority"
        assert reject({"priority": True}).field == "priority"

    def test_timeout_must_be_positive_number(self):
        assert reject({"timeout": "soon"}).field == "timeout"
        assert reject({"timeout": -3}).field == "timeout"
        assert reject({"timeout": 0}).field == "timeout"

    def test_overrides_must_be_mapping(self):
        assert reject({"overrides": ["seed", 7]}).field == "overrides"


class TestConfigBlame:
    def test_unknown_scenario_lists_presets(self):
        err = reject({"scenario": "atlantis"})
        assert err.field == "scenario"
        assert "city-2k" in err.reason  # the valid names are in the message

    def test_unknown_override_field(self):
        err = reject({"overrides": {"bogus_knob": 1}})
        assert err.field == "overrides"
        assert "bogus_knob" in err.reason

    def test_bad_config_value_blames_the_field(self):
        """A ConfigError surfaces under the config field it names."""
        err = reject({"overrides": {"n_users": -5}})
        assert err.field == "n_users"

    def test_as_dict_is_the_http_body(self):
        err = reject({"overrides": {"n_users": -5}})
        body = err.as_dict()
        assert body["error"] == "invalid submission"
        assert body["field"] == "n_users"
        assert body["reason"]


class TestAcceptedSubmissions:
    def test_defaults(self):
        parsed = parse_submission({})
        assert parsed.priority == 0
        assert parsed.timeout is None
        assert parsed.fingerprint
        assert parsed.payload["scenario"] is None

    def test_scenario_preset(self):
        parsed = parse_submission(
            {"scenario": "paper-2018", "overrides": {"seed": 9}}
        )
        assert parsed.payload["scenario"] == "paper-2018"
        assert parsed.config.seed == 9

    def test_fingerprint_is_config_equality(self):
        a = parse_submission({"overrides": {"seed": 5, "n_users": 30}})
        b = parse_submission({"overrides": {"n_users": 30, "seed": 5}})
        c = parse_submission({"overrides": {"n_users": 31, "seed": 5}})
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_inline_spec(self):
        parsed = parse_submission(
            {
                "spec": {
                    "name": "custom",
                    "description": "inline",
                    "config": {"n_users": 25, "seed": 4},
                }
            }
        )
        assert parsed.config.n_users == 25

    def test_timeout_normalised_to_float(self):
        assert parse_submission({"timeout": 30}).timeout == 30.0
