"""Tests for the job lifecycle state machine and its crash-safe journal."""

import json

import pytest

from repro.resilience.errors import ResultCorruption
from repro.server.jobs import (
    Job,
    JobJournal,
    JobState,
    JobStateError,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
)


def make_job(job_id="job-000001", **kwargs):
    defaults = dict(
        job_id=job_id,
        fingerprint="abc123",
        payload={"overrides": {"seed": 1}},
    )
    defaults.update(kwargs)
    return Job(**defaults)


class TestStateMachine:
    def test_new_job_is_queued(self):
        assert make_job().state is JobState.QUEUED
        assert not make_job().terminal

    def test_happy_path(self):
        job = make_job()
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        assert job.terminal
        assert job.started_at is not None
        assert job.finished_at is not None

    def test_crash_retry_edge(self):
        """RUNNING -> QUEUED is legal: a dead worker re-queues the job."""
        job = make_job()
        job.transition(JobState.RUNNING)
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.FAILED)
        assert job.state is JobState.FAILED

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES, key=lambda s: s.value))
    def test_terminal_states_have_no_exits(self, terminal):
        assert VALID_TRANSITIONS[terminal] == frozenset()
        job = make_job()
        job.transition(JobState.RUNNING)
        job.transition(terminal)
        with pytest.raises(JobStateError, match="illegal transition"):
            job.transition(JobState.QUEUED)

    def test_queued_cannot_jump_to_done(self):
        with pytest.raises(JobStateError, match="queued -> done"):
            make_job().transition(JobState.DONE)

    def test_roundtrip_through_dict(self):
        job = make_job(priority=3, timeout=12.5)
        job.transition(JobState.RUNNING)
        clone = Job.from_dict(json.loads(json.dumps(job.as_dict())))
        assert clone.state is JobState.RUNNING
        assert clone.priority == 3
        assert clone.timeout == 12.5

    def test_public_view_has_terminal_and_runtime(self):
        job = make_job()
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE)
        view = job.public_view()
        assert view["terminal"] is True
        assert view["runtime_seconds"] >= 0


class TestJobJournal:
    def test_submissions_assign_sequential_ids(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        assert journal.next_job_id() == "job-000001"
        journal.record_submitted(make_job(journal.next_job_id()))
        assert journal.next_job_id() == "job-000002"

    def test_reload_rebuilds_job_table(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        job = make_job(journal.next_job_id(), priority=2)
        journal.record_submitted(job)
        job.transition(JobState.RUNNING)
        job.attempts = 1
        journal.record_state(job)

        reloaded = JobJournal(path)
        assert len(reloaded) == 1
        loaded = reloaded.jobs["job-000001"]
        assert loaded.state is JobState.RUNNING
        assert loaded.attempts == 1
        assert loaded.priority == 2
        assert reloaded.next_job_id() == "job-000002"

    def test_partial_trailing_line_is_truncated(self, tmp_path):
        """A SIGKILL mid-append loses only the unfinished line."""
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record_submitted(make_job(journal.next_job_id()))
        with path.open("a") as handle:
            handle.write('{"kind": "state", "job_id": "job-0000')  # torn

        reloaded = JobJournal(path)
        assert reloaded.jobs["job-000001"].state is JobState.QUEUED
        # The torn line is gone from disk too.
        assert JobJournal(path).jobs["job-000001"].state is JobState.QUEUED

    def test_midstream_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = JobJournal(path)
        journal.record_submitted(make_job(journal.next_job_id()))
        lines = path.read_text().splitlines()
        lines[1] = "NOT JSON"
        lines.append(lines[0])  # keep a valid final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ResultCorruption, match="damaged mid-stream"):
            JobJournal(path)

    def test_wrong_header_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text('{"kind": "meta", "format_version": 999}\n')
        with pytest.raises(ResultCorruption, match="not a version"):
            JobJournal(path)

    def test_non_terminal_in_submission_order(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        first = make_job(journal.next_job_id())
        journal.record_submitted(first)
        second = make_job(journal.next_job_id(), fingerprint="def456")
        journal.record_submitted(second)
        first.transition(JobState.RUNNING)
        first.transition(JobState.DONE)
        journal.record_state(first)
        assert [j.job_id for j in journal.non_terminal()] == ["job-000002"]

    def test_dedup_probe_ignores_failed_jobs(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        job = make_job(journal.next_job_id())
        journal.record_submitted(job)
        assert journal.by_fingerprint("abc123") is job

        job.transition(JobState.RUNNING)
        job.transition(JobState.FAILED)
        journal.record_state(job)
        # A failed run must not block resubmission of the same config.
        assert journal.by_fingerprint("abc123") is None

    def test_dedup_probe_prefers_latest(self, tmp_path):
        journal = JobJournal(tmp_path / "journal.jsonl")
        old = make_job(journal.next_job_id())
        journal.record_submitted(old)
        old.transition(JobState.RUNNING)
        old.transition(JobState.DONE)
        journal.record_state(old)
        new = make_job(journal.next_job_id())
        journal.record_submitted(new)
        assert journal.by_fingerprint("abc123") is new
