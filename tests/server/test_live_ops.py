"""The live operations layer end to end: /metrics, progress, trace merge.

Boots real services (same harness as test_service.py) and checks the
tentpole contracts: deterministic Prometheus exposition, per-job
progress gauges fed by the worker's progress file, restart-safe
counters, cross-process trace stitching, and worker log-mode
propagation.
"""

import asyncio
import functools
import json

from repro.obs.live import metric_value, parse_prometheus
from repro.obs.log import configure_logging
from repro.obs.trace import merge_traces, trace_id_for_job
from repro.server import JobService, WorkerSupervisor
from repro.server.client import ServerClient

FAST = {"overrides": {"n_users": 25, "n_tasks": 6, "rounds": 4,
                      "budget": 500.0, "seed": 11}}

#: A job long enough to still be running when we scrape (~10s).
SLOW = {"overrides": {"n_users": 2000, "n_tasks": 50, "rounds": 80,
                      "budget": 1e7, "arrival": "poisson", "seed": 2}}


def service_test(**svc_kwargs):
    """Decorator: run the test coroutine against a live service."""

    def decorate(coro_fn):
        def wrapper(tmp_path):
            async def main():
                kwargs = dict(svc_kwargs)
                supervisor_kwargs = kwargs.pop("supervisor_kwargs", None)
                if supervisor_kwargs is not None:
                    kwargs["supervisor"] = WorkerSupervisor(**supervisor_kwargs)
                service = JobService(tmp_path / "root", **kwargs)
                await service.start()
                client = ServerClient("127.0.0.1", service.port, timeout=60)
                loop = asyncio.get_running_loop()

                def call(fn, *args, **kw):
                    return loop.run_in_executor(
                        None, functools.partial(fn, *args, **kw)
                    )

                try:
                    await coro_fn(service, client, call)
                finally:
                    await service.stop()

            asyncio.run(main())

        wrapper.__name__ = coro_fn.__name__
        wrapper.__doc__ = coro_fn.__doc__
        return wrapper

    return decorate


@service_test(queue_limit=4, concurrency=1)
async def test_idle_scrapes_are_byte_identical(service, client, call):
    status, first = await call(client.metrics)
    assert status == 200
    status, second = await call(client.metrics)
    assert first == second
    parsed = parse_prometheus(first)
    assert metric_value(parsed, "repro_queue_depth") == 0.0
    assert metric_value(parsed, "repro_running_jobs") == 0.0
    # Every lifecycle state is present (all zero on an idle server).
    for state in ("queued", "running", "done", "failed", "cancelled",
                  "timed_out"):
        assert metric_value(parsed, "repro_jobs", state=state) == 0.0


@service_test(queue_limit=4, concurrency=1)
async def test_metrics_content_type_is_prometheus_text(service, client, call):
    import http.client

    def raw():
        conn = http.client.HTTPConnection(
            "127.0.0.1", service.port, timeout=30
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            response.read()
            return dict(response.getheaders())
        finally:
            conn.close()

    headers = await call(raw)
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")


@service_test(queue_limit=4, concurrency=1)
async def test_submission_outcomes_are_counted(service, client, call):
    await call(client.submit, FAST)           # accepted
    await call(client.submit, FAST)           # deduplicated
    await call(client.submit, {"overrides": {"n_users": -1}})  # invalid
    status, text = await call(client.metrics)
    parsed = parse_prometheus(text)
    assert metric_value(
        parsed, "repro_submissions_total", outcome="accepted"
    ) == 1.0
    assert metric_value(
        parsed, "repro_submissions_total", outcome="deduplicated"
    ) == 1.0
    assert metric_value(
        parsed, "repro_submissions_total", outcome="invalid"
    ) == 1.0


@service_test(queue_limit=4, concurrency=1)
async def test_running_job_exports_progress_gauges(service, client, call):
    status, body, _ = await call(client.submit, SLOW)
    assert status == 201
    job_id = body["job"]["job_id"]

    # Wait until the worker has completed at least one round: the
    # round gauge for this job id appears on /metrics.
    round_no = None
    for _ in range(300):
        status, text = await call(client.metrics)
        parsed = parse_prometheus(text)
        round_no = metric_value(parsed, "repro_job_round", job=job_id)
        if round_no is not None:
            break
        await asyncio.sleep(0.1)
    assert round_no is not None, "progress gauges never appeared"
    assert 1 <= round_no <= 80
    assert metric_value(parsed, "repro_job_rounds_total", job=job_id) == 80.0
    assert metric_value(parsed, "repro_job_budget", job=job_id) == 1e7
    spend = metric_value(parsed, "repro_job_spend", job=job_id)
    assert 0.0 <= spend <= 1e7
    completeness = metric_value(parsed, "repro_job_completeness", job=job_id)
    assert 0.0 <= completeness <= 1.0
    assert metric_value(parsed, "repro_job_eta_seconds", job=job_id) >= 0.0
    assert metric_value(parsed, "repro_running_jobs") == 1.0

    # The progress endpoint serves the same snapshot as JSON.
    status, doc = await call(client.progress, job_id)
    assert status == 200
    assert doc["state"] == "running"
    assert doc["progress"]["job_id"] == job_id
    assert doc["progress"]["rounds_total"] == 80

    await call(client.cancel, job_id)
    await call(client.wait, job_id, 60)


@service_test(queue_limit=4, concurrency=1)
async def test_progress_endpoint_edges(service, client, call):
    status, doc = await call(client.progress, "job-999999")
    assert status == 404
    status, body, _ = await call(client.submit, FAST)
    job_id = body["job"]["job_id"]
    await call(client.wait, job_id, 120)
    status, doc = await call(client.progress, job_id)
    assert status == 200
    assert doc["state"] == "done"
    # Terminal jobs keep their last snapshot but export no gauges.
    assert doc["progress"]["round_no"] == 4
    status, text = await call(client.metrics)
    parsed = parse_prometheus(text)
    assert metric_value(parsed, "repro_job_round", job=job_id) is None


@service_test(queue_limit=4, concurrency=1)
async def test_job_trace_shards_merge_into_one_trace(service, client, call):
    status, body, _ = await call(client.submit, FAST)
    job_id = body["job"]["job_id"]
    await call(client.wait, job_id, 120)

    trace_dir = service.job_dir(job_id) / "trace"
    shards = sorted(trace_dir.glob("*.trace.jsonl"))
    names = [p.name for p in shards]
    assert "server.trace.jsonl" in names
    assert "worker-a1.trace.jsonl" in names

    payload = merge_traces(shards)
    assert payload["otherData"]["trace_id"] == trace_id_for_job(job_id)
    assert payload["otherData"]["parents"]["worker-a1"] == "supervise"

    x_events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    by_name = {}
    for event in x_events:
        by_name.setdefault(event["name"], []).append(event)
    supervise = by_name["supervise"][0]
    supervise_end = supervise["ts"] + supervise["dur"]
    # Every worker span (run, rounds, phases) nests inside supervise on
    # the merged timeline — the stitching contract.
    worker_tid = next(
        e["tid"] for e in payload["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
        and e["args"]["name"] == "worker-a1"
    )
    worker_spans = [e for e in x_events if e["tid"] == worker_tid]
    assert worker_spans, "the worker recorded no spans"
    assert any(e["name"] == "round" for e in worker_spans)
    for event in worker_spans:
        assert event["ts"] >= supervise["ts"] - 1.0
        assert event["ts"] + event["dur"] <= supervise_end + 1.0


@service_test(
    queue_limit=4,
    concurrency=1,
    supervisor_kwargs=dict(max_attempts=2, backoff_base=0.01,
                           backoff_cap=0.05),
)
async def test_crash_retries_counted_and_attempts_timed(service, client, call):
    poison = {"overrides": {"n_users": 20, "rounds": 2, "seed": 1,
                            "selector_kwargs": {"bogus_kwarg": 1}}}
    status, body, _ = await call(client.submit, poison)
    await call(client.wait, body["job"]["job_id"], 120)
    status, text = await call(client.metrics)
    parsed = parse_prometheus(text)
    # Two attempts, one retry between them, both attempt durations land
    # in the histogram.
    assert metric_value(parsed, "repro_crash_retries_total") == 1.0
    assert metric_value(parsed, "repro_attempt_seconds_count") == 2.0
    assert metric_value(parsed, "repro_jobs", state="failed") == 1.0


@service_test(queue_limit=4, concurrency=1)
async def test_worker_inherits_server_log_mode(service, client, call):
    # The test process *is* the server process here: configure JSON
    # logging at INFO and the supervisor must hand that mode to the
    # worker subprocess via the environment.
    configure_logging(verbosity=1, json_output=True)
    status, body, _ = await call(client.submit, FAST)
    job_id = body["job"]["job_id"]
    await call(client.wait, job_id, 120)
    log_path = service.job_dir(job_id) / "worker.log"
    payloads = []
    for line in log_path.read_text().splitlines():
        try:
            payloads.append(json.loads(line))
        except ValueError:
            continue  # interpreter noise (warnings), not log lines
    starting = [p for p in payloads if p.get("message") == "worker starting"]
    assert starting, "worker emitted no JSON 'worker starting' line"
    assert starting[0]["level"] == "INFO"
    assert starting[0]["logger"] == "repro.server.worker"
    assert starting[0]["attempt"] == 1


def test_restart_does_not_double_count_terminal_jobs(tmp_path):
    """SIGKILL-style restart: gauges rebuild from the journal, once."""

    async def first_life():
        service = JobService(tmp_path / "root", queue_limit=4, concurrency=1)
        await service.start()
        client = ServerClient("127.0.0.1", service.port, timeout=60)
        loop = asyncio.get_running_loop()
        try:
            _, body, _ = await loop.run_in_executor(
                None, functools.partial(client.submit, FAST)
            )
            await loop.run_in_executor(
                None, functools.partial(
                    client.wait, body["job"]["job_id"], 120
                )
            )
            _, text = await loop.run_in_executor(None, client.metrics)
            return parse_prometheus(text)
        finally:
            await service.stop()

    async def second_life():
        service = JobService(tmp_path / "root", queue_limit=4, concurrency=1)
        await service.start()
        client = ServerClient("127.0.0.1", service.port, timeout=60)
        loop = asyncio.get_running_loop()
        try:
            _, first = await loop.run_in_executor(None, client.metrics)
            _, second = await loop.run_in_executor(None, client.metrics)
            return first, second
        finally:
            await service.stop()

    before = asyncio.run(first_life())
    assert metric_value(before, "repro_jobs", state="done") == 1.0

    first, second = asyncio.run(second_life())
    # Determinism survives the restart...
    assert first == second
    after = parse_prometheus(first)
    # ...and the recovered journal yields the same single done job, not
    # a re-count, while process-lifetime counters start over.
    assert metric_value(after, "repro_jobs", state="done") == 1.0
    assert metric_value(
        after, "repro_submissions_total", outcome="accepted"
    ) is None
