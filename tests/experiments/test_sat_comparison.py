"""Tests for the SAT vs WST comparison experiment."""

import pytest

from repro.experiments.sat_comparison import MODES, sat_vs_wst
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def toy_config():
    return SimulationConfig(
        n_tasks=6, rounds=6, required_measurements=3,
        deadline_range=(3, 6), area_side=1500.0, budget=150.0,
    )


class TestStructure:
    def test_modes_and_axes(self, toy_config):
        result = sat_vs_wst(user_counts=(10, 20), repetitions=2,
                            base_config=toy_config)
        assert result.labels == list(MODES)
        assert result.experiment_id == "sat-vs-wst-completeness"
        for series in result.series:
            assert series.xs == [10, 20]

    def test_coverage_metric_variant(self, toy_config):
        result = sat_vs_wst(user_counts=(10,), repetitions=1,
                            base_config=toy_config, metric="coverage")
        assert result.experiment_id == "sat-vs-wst-coverage"
        assert "coverage" in result.y_label

    def test_unknown_metric(self, toy_config):
        with pytest.raises(ValueError, match="metric"):
            sat_vs_wst(user_counts=(10,), repetitions=1,
                       base_config=toy_config, metric="latency")

    def test_registered(self):
        from repro.experiments.registry import experiment_ids

        assert "sat-vs-wst" in experiment_ids()


class TestOutcome:
    def test_incentive_aware_modes_beat_fixed(self, toy_config):
        """Both demand-aware modes should out-complete fixed-reward WST."""
        result = sat_vs_wst(user_counts=(15,), repetitions=3,
                            base_config=toy_config)
        fixed = result.series_by_label("wst-fixed").points[0].mean
        on_demand = result.series_by_label("wst-on-demand").points[0].mean
        assert on_demand >= fixed - 5.0

    def test_deterministic(self, toy_config):
        a = sat_vs_wst(user_counts=(10,), repetitions=2, base_config=toy_config)
        b = sat_vs_wst(user_counts=(10,), repetitions=2, base_config=toy_config)
        assert a.rows() == b.rows()
