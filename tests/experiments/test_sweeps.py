"""Tests for the generic config sweep and the budget sweep."""

import pytest

from repro.experiments.sweeps import budget_sweep, config_sweep
from repro.metrics import coverage
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def toy_config():
    return SimulationConfig(
        n_users=12, n_tasks=5, rounds=6, required_measurements=3,
        area_side=1500.0, budget=150.0,
    )


class TestConfigSweep:
    def test_structure(self, toy_config):
        result = config_sweep(
            "n_users", [8, 16], repetitions=2, base_config=toy_config
        )
        assert result.experiment_id == "sweep-n_users"
        assert set(result.labels) == {"coverage_pct", "completeness_pct"}
        for series in result.series:
            assert series.xs == [8, 16]

    def test_values_sorted_into_result(self, toy_config):
        result = config_sweep(
            "n_users", [16, 8], repetitions=1, base_config=toy_config
        )
        assert result.series[0].xs == [8, 16]

    def test_custom_metrics(self, toy_config):
        result = config_sweep(
            "rounds", [4, 6],
            metrics={"cov": coverage},
            repetitions=1, base_config=toy_config,
        )
        assert result.labels == ["cov"]

    def test_unknown_field_rejected(self, toy_config):
        with pytest.raises(ValueError, match="unknown config field"):
            config_sweep("n_user", [8], repetitions=1, base_config=toy_config)

    def test_empty_values_rejected(self, toy_config):
        with pytest.raises(ValueError, match="non-empty"):
            config_sweep("n_users", [], repetitions=1, base_config=toy_config)

    def test_more_rounds_never_hurts_coverage(self, toy_config):
        result = config_sweep(
            "rounds", [2, 8], repetitions=3, base_config=toy_config
        )
        series = result.series_by_label("coverage_pct")
        assert series.point_at(8).mean >= series.point_at(2).mean - 1e-9


class TestBudgetSweep:
    def test_structure_and_registration(self):
        from repro.experiments.registry import experiment_ids

        assert "sweep-budget" in experiment_ids()

    def test_small_budgets_keep_eq9_feasible(self):
        # 200 $ at the paper's step would make r0 negative; the sweep must
        # shrink the step instead of crashing.
        result = budget_sweep(budgets=(200.0, 1000.0), n_users=15, repetitions=1)
        assert result.series_by_label("coverage_pct").xs == [200.0, 1000.0]

    def test_more_budget_never_hurts_completeness(self):
        result = budget_sweep(budgets=(300.0, 2000.0), n_users=40, repetitions=3)
        series = result.series_by_label("completeness_pct")
        assert series.point_at(2000.0).mean >= series.point_at(300.0).mean - 2.0
