"""Structural tests for the per-figure experiment modules.

These run each experiment at toy scale and check the returned panel has
the right axes, labels, and internal consistency.  The *shape* claims
versus the paper (who wins where) live in tests/integration/test_paper_claims.py
at a more trustworthy scale.
"""

import pytest

from repro.experiments import fig5, fig6, fig7, fig8, fig9
from repro.simulation.config import SimulationConfig

TOY_USERS = (10, 20)
REPS = 2


@pytest.fixture(scope="module")
def toy_config():
    return SimulationConfig(
        n_tasks=6, rounds=6, required_measurements=3,
        deadline_range=(3, 6), area_side=1500.0, budget=150.0,
    )


class TestFig5:
    def test_fig5a_series(self, toy_config):
        result = fig5.fig5a(user_counts=TOY_USERS, repetitions=REPS,
                            base_config=toy_config)
        assert result.experiment_id == "fig5a"
        assert result.labels == ["dp", "greedy"]
        assert result.series_by_label("dp").xs == list(TOY_USERS)

    def test_fig5a_dp_dominates_greedy(self, toy_config):
        from repro.analysis.shape import dominates

        result = fig5.fig5a(user_counts=TOY_USERS, repetitions=REPS,
                            base_config=toy_config)
        assert dominates(result.series_by_label("dp"),
                         result.series_by_label("greedy"), tolerance=1e-9)

    def test_fig5b_boxplot_series(self, toy_config):
        result = fig5.fig5b(user_counts=TOY_USERS, repetitions=REPS,
                            base_config=toy_config)
        assert result.labels == ["minimum", "q1", "median", "q3", "maximum"]
        # Quartiles ordered at every x.
        for x in TOY_USERS:
            values = [result.series_by_label(label).point_at(x).mean
                      for label in result.labels]
            assert values == sorted(values)

    def test_fig5b_differences_non_negative(self, toy_config):
        result = fig5.fig5b(user_counts=TOY_USERS, repetitions=REPS,
                            base_config=toy_config)
        minimum = result.series_by_label("minimum")
        assert all(point.mean >= -1e-9 for point in minimum.points)

    def test_paired_profits_shapes(self, toy_config):
        dp_means, greedy_means, diffs = fig5.paired_round2_profits(
            toy_config.with_overrides(n_users=10), repetitions=2
        )
        assert len(dp_means) == len(greedy_means) == 2
        assert all(d >= -1e-9 for d in diffs)


@pytest.mark.parametrize(
    "module,func,experiment_id,y_fragment",
    [
        (fig6, "fig6a", "fig6a", "coverage"),
        (fig7, "fig7a", "fig7a", "completeness"),
        (fig8, "fig8a", "fig8a", "measurements"),
        (fig9, "fig9a", "fig9a", "variance"),
        (fig9, "fig9b", "fig9b", "reward"),
    ],
)
def test_user_sweep_panels(module, func, experiment_id, y_fragment, toy_config):
    result = getattr(module, func)(
        user_counts=TOY_USERS, repetitions=REPS, base_config=toy_config
    )
    assert result.experiment_id == experiment_id
    assert y_fragment in result.y_label
    assert result.labels == ["on-demand", "fixed", "steered"]
    assert result.x_label == "users"


@pytest.mark.parametrize(
    "module,func,experiment_id,first_x",
    [
        (fig6, "fig6b", "fig6b", 1),
        (fig7, "fig7b", "fig7b", 5),
        (fig8, "fig8b", "fig8b", 1),
    ],
)
def test_round_sweep_panels(module, func, experiment_id, first_x, toy_config):
    result = getattr(module, func)(
        horizon=6, n_users=10, repetitions=REPS, base_config=toy_config
    )
    assert result.experiment_id == experiment_id
    assert result.x_label == "round"
    for series in result.series:
        assert series.xs[0] == first_x
        assert series.xs[-1] == 6


class TestPanelSemantics:
    def test_fig6b_series_cumulative(self, toy_config):
        result = fig6.fig6b(horizon=6, n_users=10, repetitions=REPS,
                            base_config=toy_config)
        for series in result.series:
            assert all(a <= b + 1e-9 for a, b in zip(series.means, series.means[1:]))

    def test_fig6a_percent_scale(self, toy_config):
        result = fig6.fig6a(user_counts=TOY_USERS, repetitions=REPS,
                            base_config=toy_config)
        for series in result.series:
            assert all(0.0 <= p.mean <= 100.0 for p in series.points)

    def test_fig8b_counts_non_negative(self, toy_config):
        result = fig8.fig8b(horizon=6, n_users=10, repetitions=REPS,
                            base_config=toy_config)
        for series in result.series:
            assert all(p.mean >= 0 for p in series.points)
