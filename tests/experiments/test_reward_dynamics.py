"""Tests for the reward-dynamics experiment and its metric."""

import pytest

from repro.experiments.reward_dynamics import reward_dynamics
from repro.metrics.rewards import average_published_reward_per_round
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def toy_config():
    return SimulationConfig(
        n_tasks=6, rounds=6, required_measurements=3,
        area_side=1500.0, budget=150.0,
    )


class TestMetric:
    def test_matches_round_records(self, toy_config):
        result = simulate(toy_config.with_overrides(n_users=10, seed=3))
        series = average_published_reward_per_round(result, result.rounds_played)
        for round_no, value in enumerate(series, start=1):
            prices = result.round(round_no).published_rewards
            expected = sum(prices.values()) / len(prices) if prices else 0.0
            assert value == pytest.approx(expected)

    def test_pads_past_history(self, toy_config):
        result = simulate(toy_config.with_overrides(n_users=10, seed=3))
        series = average_published_reward_per_round(result, 20)
        assert len(series) == 20
        assert all(v == 0.0 for v in series[result.rounds_played:])

    def test_bad_horizon(self, toy_config):
        result = simulate(toy_config.with_overrides(n_users=10, seed=3))
        with pytest.raises(ValueError, match="horizon"):
            average_published_reward_per_round(result, 0)


class TestExperiment:
    def test_structure(self, toy_config):
        result = reward_dynamics(
            horizon=6, n_users=10, repetitions=2, base_config=toy_config
        )
        assert result.experiment_id == "reward-dynamics"
        assert result.labels == ["on-demand", "fixed", "steered"]
        for series in result.series:
            assert series.xs == [1, 2, 3, 4, 5, 6]

    def test_steered_prices_decay(self, toy_config):
        result = reward_dynamics(
            horizon=3, n_users=15, repetitions=3, base_config=toy_config
        )
        steered = result.series_by_label("steered").means
        assert steered[0] > steered[1] or steered[1] == 0.0

    def test_registered(self):
        from repro.experiments.registry import experiment_ids

        assert "reward-dynamics" in experiment_ids()
