"""Unit tests for the experiment registry."""

import pytest

from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.simulation.config import SimulationConfig

#: DESIGN.md §4 requires one regenerable target per paper panel.
PAPER_PANELS = [
    "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b",
    "fig8a", "fig8b", "fig9a", "fig9b",
]


class TestRegistry:
    def test_every_paper_panel_registered(self):
        assert set(PAPER_PANELS) <= set(experiment_ids())

    def test_ablations_registered(self):
        ids = experiment_ids()
        assert {"ablation-levels", "ablation-factors",
                "ablation-mobility", "ablation-weights"} <= set(ids)

    def test_callables(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())

    def test_run_experiment_forwards_kwargs(self):
        config = SimulationConfig(
            n_tasks=5, rounds=5, required_measurements=3,
            area_side=1200.0, budget=120.0,
        )
        result = run_experiment(
            "fig6a", user_counts=(8,), repetitions=1, base_config=config
        )
        assert result.experiment_id == "fig6a"

    def test_unknown_id(self):
        with pytest.raises(ValueError, match="fig6a"):
            run_experiment("fig99z")
