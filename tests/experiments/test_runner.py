"""Unit tests for repro.experiments.runner."""

import pytest

from repro.experiments.runner import (
    PAPER_REPETITIONS,
    PAPER_USER_COUNTS,
    default_repetitions,
    default_user_counts,
    repeat_metric,
    repeat_metrics,
    repeat_series_metric,
)
from repro.metrics import coverage


@pytest.fixture
def config(fast_config):
    return fast_config


class TestDefaults:
    def test_paper_axis(self):
        assert default_user_counts() == PAPER_USER_COUNTS == (40, 60, 80, 100, 120, 140)
        assert PAPER_REPETITIONS == 100

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "7")
        assert default_repetitions() == 7

    def test_env_absent_uses_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        assert default_repetitions(fallback=4) == 4

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "many")
        with pytest.raises(ValueError, match="REPRO_REPS"):
            default_repetitions()
        monkeypatch.setenv("REPRO_REPS", "0")
        with pytest.raises(ValueError, match="REPRO_REPS"):
            default_repetitions()


class TestRepeat:
    def test_collects_per_metric_values(self, config):
        values = repeat_metrics(
            config,
            {"coverage": coverage, "constant": lambda _r: 1.0},
            repetitions=3,
        )
        assert len(values["coverage"]) == 3
        assert values["constant"] == [1.0, 1.0, 1.0]

    def test_reps_validated(self, config):
        with pytest.raises(ValueError, match="repetitions"):
            repeat_metrics(config, {}, repetitions=0)

    def test_deterministic_given_base_seed(self, config):
        a = repeat_metric(config, coverage, repetitions=3, base_seed=5)
        b = repeat_metric(config, coverage, repetitions=3, base_seed=5)
        assert a == b

    def test_config_seed_is_ignored(self, config):
        a = repeat_metric(config.with_overrides(seed=1), coverage, 3, base_seed=5)
        b = repeat_metric(config.with_overrides(seed=2), coverage, 3, base_seed=5)
        assert a == b

    def test_repetitions_vary(self, config):
        """Different repetitions see different worlds (not copies)."""
        values = repeat_metric(config, lambda r: r.total_paid, repetitions=6)
        assert len(set(values)) > 1


class TestSeriesMetric:
    def test_transposed_shape(self, config):
        from repro.metrics import measurements_per_round

        per_position = repeat_series_metric(
            config, lambda r: measurements_per_round(r, 5), repetitions=3
        )
        assert len(per_position) == 5
        assert all(len(reps) == 3 for reps in per_position)

    def test_inconsistent_lengths_rejected(self, config):
        lengths = iter([2, 3, 2])

        def ragged(_result):
            return [0.0] * next(lengths)

        with pytest.raises(ValueError, match="inconsistent"):
            repeat_series_metric(config, ragged, repetitions=3)


class _Counting:
    def __init__(self, metric):
        self.metric = metric
        self.calls = 0

    def __call__(self, result):
        self.calls += 1
        return self.metric(result)


class TestJournaledRepeat:
    def test_journaled_values_match_unjournaled(self, config, tmp_path):
        plain = repeat_metric(config, coverage, 3, base_seed=2)
        journaled = repeat_metric(
            config, coverage, 3, base_seed=2, journal=tmp_path / "j.jsonl"
        )
        assert journaled == plain

    def test_second_call_reads_the_journal_not_the_simulator(
        self, config, tmp_path
    ):
        journal = tmp_path / "j.jsonl"
        first = repeat_metric(config, coverage, 3, base_seed=2, journal=journal)
        counting = _Counting(coverage)
        second = repeat_metric(config, counting, 3, base_seed=2, journal=journal)
        assert counting.calls == 0
        assert second == first

    def test_extending_repetitions_reuses_the_cached_prefix(
        self, config, tmp_path
    ):
        journal = tmp_path / "j.jsonl"
        repeat_metric(config, coverage, 2, base_seed=2, journal=journal)
        counting = _Counting(coverage)
        extended = repeat_metric(
            config, counting, 5, base_seed=2, journal=journal
        )
        assert counting.calls == 3  # only reps 2..4 simulated
        assert extended == repeat_metric(config, coverage, 5, base_seed=2)

    def test_different_base_seed_rejects_the_journal(self, config, tmp_path):
        from repro.resilience.errors import ConfigError

        journal = tmp_path / "j.jsonl"
        repeat_metric(config, coverage, 2, base_seed=2, journal=journal)
        with pytest.raises(ConfigError, match="different configuration"):
            repeat_metric(config, coverage, 2, base_seed=3, journal=journal)

    def test_metric_names_are_part_of_the_campaign_identity(
        self, config, tmp_path
    ):
        from repro.resilience.errors import ConfigError

        journal = tmp_path / "j.jsonl"
        repeat_metrics(config, {"coverage": coverage}, 2, journal=journal)
        with pytest.raises(ConfigError, match="different configuration"):
            repeat_metrics(config, {"welfare": coverage}, 2, journal=journal)

    def test_series_metric_journal_resume(self, config, tmp_path):
        from repro.metrics import measurements_per_round

        journal = tmp_path / "series.jsonl"
        series_metric = lambda r: measurements_per_round(r, 4)  # noqa: E731
        first = repeat_series_metric(
            config, series_metric, 3, journal=journal
        )
        counting = _Counting(series_metric)
        second = repeat_series_metric(config, counting, 3, journal=journal)
        assert counting.calls == 0
        assert second == first
