"""Unit tests for repro.experiments.runner."""

import pytest

from repro.experiments.runner import (
    PAPER_REPETITIONS,
    PAPER_USER_COUNTS,
    default_repetitions,
    default_user_counts,
    repeat_metric,
    repeat_metrics,
    repeat_series_metric,
)
from repro.metrics import coverage
from repro.simulation.config import SimulationConfig


@pytest.fixture
def config(fast_config):
    return fast_config


class TestDefaults:
    def test_paper_axis(self):
        assert default_user_counts() == PAPER_USER_COUNTS == (40, 60, 80, 100, 120, 140)
        assert PAPER_REPETITIONS == 100

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "7")
        assert default_repetitions() == 7

    def test_env_absent_uses_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPS", raising=False)
        assert default_repetitions(fallback=4) == 4

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "many")
        with pytest.raises(ValueError, match="REPRO_REPS"):
            default_repetitions()
        monkeypatch.setenv("REPRO_REPS", "0")
        with pytest.raises(ValueError, match="REPRO_REPS"):
            default_repetitions()


class TestRepeat:
    def test_collects_per_metric_values(self, config):
        values = repeat_metrics(
            config,
            {"coverage": coverage, "constant": lambda _r: 1.0},
            repetitions=3,
        )
        assert len(values["coverage"]) == 3
        assert values["constant"] == [1.0, 1.0, 1.0]

    def test_reps_validated(self, config):
        with pytest.raises(ValueError, match="repetitions"):
            repeat_metrics(config, {}, repetitions=0)

    def test_deterministic_given_base_seed(self, config):
        a = repeat_metric(config, coverage, repetitions=3, base_seed=5)
        b = repeat_metric(config, coverage, repetitions=3, base_seed=5)
        assert a == b

    def test_config_seed_is_ignored(self, config):
        a = repeat_metric(config.with_overrides(seed=1), coverage, 3, base_seed=5)
        b = repeat_metric(config.with_overrides(seed=2), coverage, 3, base_seed=5)
        assert a == b

    def test_repetitions_vary(self, config):
        """Different repetitions see different worlds (not copies)."""
        values = repeat_metric(config, lambda r: r.total_paid, repetitions=6)
        assert len(set(values)) > 1


class TestSeriesMetric:
    def test_transposed_shape(self, config):
        from repro.metrics import measurements_per_round

        per_position = repeat_series_metric(
            config, lambda r: measurements_per_round(r, 5), repetitions=3
        )
        assert len(per_position) == 5
        assert all(len(reps) == 3 for reps in per_position)

    def test_inconsistent_lengths_rejected(self, config):
        lengths = iter([2, 3, 2])

        def ragged(_result):
            return [0.0] * next(lengths)

        with pytest.raises(ValueError, match="inconsistent"):
            repeat_series_metric(config, ragged, repetitions=3)
