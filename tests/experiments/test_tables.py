"""Tests pinning the regenerated Tables I-III to the paper."""

import pytest

from repro.experiments.tables import PAPER_WEIGHTS, all_tables, table1, table2, table3


class TestTable1:
    def test_matrix_entries(self):
        table = table1()
        assert table.rows[0][1:] == [1.0, 3.0, 5.0]
        assert table.rows[1][1:] == [pytest.approx(0.333), 1.0, 2.0]
        assert table.rows[2][1:] == [0.2, 0.5, 1.0]

    def test_consistency_metadata(self):
        assert table1().metadata["consistency_ratio"] < 0.1


class TestTable2:
    def test_normalised_entries_match_paper(self):
        rows = table2().rows
        assert rows[0][1:4] == [0.652, 0.667, 0.625]
        assert rows[1][1:4] == [0.217, 0.222, 0.25]
        # Paper prints 0.131 for the first entry (rounding); exact is 0.130.
        assert rows[2][1:4] == [pytest.approx(0.130, abs=2e-3),
                                pytest.approx(0.111, abs=1e-3),
                                pytest.approx(0.125, abs=1e-3)]

    def test_weights_match_paper(self):
        rows = table2().rows
        weights = [row[-1] for row in rows]
        assert weights == [pytest.approx(w, abs=1e-3) for w in PAPER_WEIGHTS]

    def test_weight_error_metadata_small(self):
        assert table2().metadata["max_weight_error"] < 1e-3


class TestTable3:
    def test_default_five_levels(self):
        table = table3()
        assert len(table.rows) == 5
        assert table.rows[0] == ["[0.0, 0.2]", 1]
        assert table.rows[1] == ["(0.2, 0.4]", 2]
        assert table.rows[4] == ["(0.8, 1.0]", 5]

    def test_other_level_counts(self):
        assert len(table3(level_count=10).rows) == 10


class TestAllTables:
    def test_order_and_ids(self):
        tables = all_tables()
        assert [t.table_id for t in tables] == ["table1", "table2", "table3"]

    def test_as_dict(self):
        payload = table1().as_dict()
        assert payload["table_id"] == "table1"
        assert len(payload["rows"]) == 3
