"""Parallel repetition campaigns: bit-identity with serial + resumability.

The contract of ``workers`` (see :mod:`repro.experiments.runner`): the
simulations fan across processes, but metrics and journaling stay in the
parent and values are reassembled in repetition order — so a parallel
campaign's aggregate is *bit-identical* to a serial one, and its journal
is interchangeable with a serial journal (a campaign may be started
serial, killed, and resumed parallel, or vice versa).
"""

import json

import pytest

from repro.experiments.runner import (
    repeat_metric,
    repeat_metrics,
    repeat_series_metric,
)
from repro.metrics import coverage
from repro.resilience.journal import RunJournal

WORKERS = 4
REPS = 6


def total_paid(result):
    return result.total_paid


def paid_by_round(result):
    # Padded to the horizon: runs may stop early once every task is done.
    paid = [record.total_paid for record in result.rounds]
    return paid + [0.0] * (result.config.rounds - len(paid))


@pytest.fixture
def config(fast_config):
    return fast_config


class TestBitIdentity:
    def test_scalar_metrics_bit_identical(self, config):
        metrics = {"coverage": coverage, "paid": total_paid}
        serial = repeat_metrics(config, metrics, REPS, base_seed=11)
        parallel = repeat_metrics(
            config, metrics, REPS, base_seed=11, workers=WORKERS
        )
        assert serial == parallel  # == on floats: bitwise, not approximate

    def test_series_metric_bit_identical(self, config):
        serial = repeat_series_metric(config, paid_by_round, REPS, base_seed=3)
        parallel = repeat_series_metric(
            config, paid_by_round, REPS, base_seed=3, workers=WORKERS
        )
        assert serial == parallel

    def test_single_repetition_short_circuits_the_pool(self, config):
        # One repetition never pays process-pool startup; same values.
        serial = repeat_metric(config, coverage, 1, base_seed=0)
        parallel = repeat_metric(config, coverage, 1, base_seed=0, workers=WORKERS)
        assert serial == parallel

    def test_workers_validated(self, config):
        with pytest.raises(ValueError, match="workers"):
            repeat_metrics(config, {"c": coverage}, 2, workers=0)

    def test_campaign_registry_bit_identical(self, config):
        """Worker metric registries merge order-independently: every
        simulation-derived series in the folded campaign registry is
        bit-identical to a serial campaign's.  Wall-clock series
        (``selector_seconds*``) are excluded — timings differ between any
        two executions, parallel or not."""
        from repro.obs.metrics import MetricsRegistry

        def simulated_series(registry):
            return {
                key: state
                for key, state in registry.as_dict().items()
                if not key.startswith("selector_seconds")
            }

        serial_registry = MetricsRegistry()
        parallel_registry = MetricsRegistry()
        repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=11,
            registry=serial_registry,
        )
        repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=11,
            workers=WORKERS, registry=parallel_registry,
        )
        assert serial_registry  # the campaign actually populated it
        assert simulated_series(parallel_registry) == simulated_series(
            serial_registry
        )

    def test_journal_loaded_reps_contribute_no_metrics(self, config, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        journal = tmp_path / "campaign.jsonl"
        repeat_metrics(config, {"c": coverage}, REPS, base_seed=5, journal=journal)
        registry = MetricsRegistry()
        repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=5,
            journal=journal, registry=registry,
        )
        assert not registry  # everything resumed, nothing simulated


class TestParallelJournal:
    def test_parallel_journal_has_every_repetition(self, config, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=2,
            journal=journal, workers=WORKERS,
        )
        entries = [json.loads(line) for line in journal.read_text().splitlines()]
        reps = sorted(e["rep"] for e in entries if e["kind"] == "rep")
        assert reps == list(range(REPS))

    def test_parallel_journal_matches_serial_journal_values(self, config, tmp_path):
        serial_journal = tmp_path / "serial.jsonl"
        parallel_journal = tmp_path / "parallel.jsonl"
        serial = repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=2, journal=serial_journal
        )
        parallel = repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=2,
            journal=parallel_journal, workers=WORKERS,
        )
        assert serial == parallel
        per_rep = {}
        for line in parallel_journal.read_text().splitlines():
            entry = json.loads(line)
            if entry["kind"] == "rep":
                per_rep[entry["rep"]] = entry["payload"]["values"]["c"]
        for line in serial_journal.read_text().splitlines():
            entry = json.loads(line)
            if entry["kind"] == "rep":
                assert per_rep[entry["rep"]] == entry["payload"]["values"]["c"]

    def test_resume_after_kill_mid_campaign(self, config, tmp_path):
        """A killed campaign resumes parallel and matches an uninterrupted run.

        The kill is simulated by (a) journaling only a prefix of the
        repetitions and (b) appending the partial tail line a crash
        mid-append leaves behind.
        """
        journal = tmp_path / "campaign.jsonl"
        metrics = {"c": coverage}
        # The uninterrupted ground truth, fully serial, no journal.
        expected = repeat_metrics(config, metrics, REPS, base_seed=9)

        # Phase 1: the campaign dies after 2 of REPS repetitions ...
        repeat_metrics(config, metrics, 2, base_seed=9, journal=journal)
        # ... mid-append of the third (partial JSON tail, no newline flush).
        with journal.open("a") as handle:
            handle.write('{"kind": "rep", "rep": 2, "payl')

        # Phase 2: resume the full campaign with a worker pool.
        resumed = repeat_metrics(
            config, metrics, REPS, base_seed=9, journal=journal, workers=WORKERS
        )
        assert resumed == expected

        # The healed journal now checkpoints every repetition exactly once.
        entries = [json.loads(line) for line in journal.read_text().splitlines()]
        reps = sorted(e["rep"] for e in entries if e["kind"] == "rep")
        assert reps == list(range(REPS))

    def test_parallel_campaign_resumes_serial(self, config, tmp_path):
        """Journals are interchangeable across worker counts."""
        journal_path = tmp_path / "campaign.jsonl"
        expected = repeat_metrics(config, {"c": coverage}, REPS, base_seed=4)
        repeat_metrics(
            config, {"c": coverage}, 3, base_seed=4,
            journal=journal_path, workers=WORKERS,
        )
        resumed = repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=4, journal=journal_path
        )
        assert resumed == expected

    def test_resumed_reps_are_not_resimulated(self, config, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        repeat_metrics(
            config, {"c": coverage}, REPS, base_seed=1,
            journal=journal, workers=WORKERS,
        )
        fingerprint = json.loads(journal.read_text().splitlines()[0])["fingerprint"]
        log = RunJournal(journal, fingerprint)
        assert log.completed_reps == REPS
        assert log.first_missing(REPS) == REPS


class TestCLIWorkers:
    def test_parser_accepts_workers(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig6a", "--workers", "4"])
        assert args.workers == 4
        args = build_parser().parse_args(["sweep", "n_users", "20", "--workers", "2"])
        assert args.workers == 2

    def test_workers_rejected_for_non_repeating_experiment(self, capsys):
        from repro.cli import main

        code = main(["run", "welfare", "--workers", "2"])
        assert code == 2
        assert "--workers" in capsys.readouterr().err
