"""Tests for the reproduction-report generator."""

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.experiments.report import CLAIMS, REPORT_PANELS, build_report, evaluate_claims


def fake_panel(experiment_id, series_values):
    series = [
        Series(label, tuple(SeriesPoint(x, v) for x, v in enumerate(values, start=1)))
        for label, values in series_values.items()
    ]
    return ExperimentResult(experiment_id, experiment_id, "x", "y", series)


class TestClaims:
    def test_every_report_panel_has_a_claim(self):
        claimed = {claim.panel for claim in CLAIMS}
        assert set(REPORT_PANELS) <= claimed

    def test_passing_fig6a(self):
        panel = fake_panel("fig6a", {
            "on-demand": [100.0, 100.0],
            "fixed": [90.0, 95.0],
            "steered": [100.0, 100.0],
        })
        rows = evaluate_claims({"fig6a": panel})
        assert rows and all(row["passed"] for row in rows)

    def test_failing_fig6a_dominance(self):
        panel = fake_panel("fig6a", {
            "on-demand": [80.0, 80.0],
            "fixed": [90.0, 95.0],
            "steered": [100.0, 100.0],
        })
        rows = evaluate_claims({"fig6a": panel})
        assert any(not row["passed"] for row in rows)

    def test_missing_series_fails_gracefully(self):
        panel = fake_panel("fig9b", {"on-demand": [1.0, 0.9]})
        rows = evaluate_claims({"fig9b": panel})
        assert rows
        # The dominance claim needs the baselines -> FAIL, not crash.
        assert any(not row["passed"] for row in rows)

    def test_unrun_panels_skipped(self):
        assert evaluate_claims({}) == []


class TestBuildReport:
    @pytest.fixture(scope="class")
    def report(self):
        # A two-panel report at repetitions=1 keeps this test quick while
        # exercising the real experiment path end to end.
        return build_report(repetitions=1, panels=("fig6a", "fig9b"))

    def test_contains_claim_matrix(self, report):
        assert "## Claim matrix" in report
        assert "| panel | claim | verdict |" in report
        assert "PASS" in report or "FAIL" in report

    def test_contains_panel_tables(self, report):
        assert "## fig6a:" in report
        assert "## fig9b:" in report
        assert "on-demand" in report

    def test_summary_line(self, report):
        assert "claims reproduced" in report


class TestClaimStability:
    def test_stable_panel(self, monkeypatch):
        from repro.experiments import report as report_module

        result = fake_panel("fig5a", {"dp": [3.0, 2.0], "greedy": [1.0, 1.0]})
        monkeypatch.setattr(
            report_module, "run_experiment", lambda panel, **kw: result
        )
        rows = report_module.claim_stability("fig5a", seeds=(0, 1))
        assert rows
        assert all(row["stable"] for row in rows)
        assert all(row["passes"] == 2 for row in rows)

    def test_unknown_panel(self):
        from repro.experiments.report import claim_stability

        with pytest.raises(ValueError, match="no claims registered"):
            claim_stability("fig0x")

    def test_empty_seeds(self):
        from repro.experiments.report import claim_stability

        with pytest.raises(ValueError, match="seeds"):
            claim_stability("fig5a", seeds=())

    def test_real_panel_stability(self):
        from repro.experiments.report import claim_stability

        rows = claim_stability("fig5a", seeds=(0, 1), repetitions=2)
        # DP >= greedy is a per-instance optimality fact: stable always.
        assert all(row["stable"] for row in rows)


class TestCli:
    def test_report_command_writes_file(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_REPS", "1")
        monkeypatch.setattr(
            "repro.experiments.report.REPORT_PANELS", ("fig6a",)
        )
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out)]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()
