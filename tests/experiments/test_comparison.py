"""Unit tests for the mechanism comparison harness."""

import pytest

from repro.experiments.comparison import (
    MECHANISMS_COMPARED,
    mechanism_round_sweep,
    mechanism_user_sweep,
)
from repro.metrics import coverage, measurements_per_round
from repro.simulation.config import SimulationConfig


@pytest.fixture
def base_config():
    return SimulationConfig(
        n_tasks=6, rounds=6, required_measurements=3,
        area_side=1500.0, budget=150.0,
    )


class TestUserSweep:
    def test_structure(self, base_config):
        result = mechanism_user_sweep(
            "figT", "Test", "coverage", coverage,
            user_counts=(10, 20), repetitions=2, base_config=base_config,
        )
        assert result.labels == list(MECHANISMS_COMPARED)
        for series in result.series:
            assert series.xs == [10, 20]
            assert all(point.n == 2 for point in series.points)

    def test_metadata_provenance(self, base_config):
        result = mechanism_user_sweep(
            "figT", "Test", "coverage", coverage,
            user_counts=(10,), repetitions=2, base_config=base_config, base_seed=9,
        )
        assert result.metadata["repetitions"] == 2
        assert result.metadata["base_seed"] == 9
        assert result.metadata["selector"] == "dp"

    def test_mechanism_subset(self, base_config):
        result = mechanism_user_sweep(
            "figT", "Test", "coverage", coverage,
            user_counts=(10,), mechanisms=("fixed",), repetitions=2,
            base_config=base_config,
        )
        assert result.labels == ["fixed"]

    def test_deterministic(self, base_config):
        def run():
            return mechanism_user_sweep(
                "figT", "Test", "coverage", coverage,
                user_counts=(12,), repetitions=2, base_config=base_config,
            )

        assert run().rows() == run().rows()


class TestRoundSweep:
    def test_structure(self, base_config):
        result = mechanism_round_sweep(
            "figT", "Test", "measurements",
            lambda r: measurements_per_round(r, 6),
            horizon=6, n_users=12, repetitions=2, base_config=base_config,
        )
        for series in result.series:
            assert series.xs == [1, 2, 3, 4, 5, 6]

    def test_first_round_trimming(self, base_config):
        result = mechanism_round_sweep(
            "figT", "Test", "measurements",
            lambda r: measurements_per_round(r, 6),
            horizon=6, first_round=3, n_users=12, repetitions=2,
            base_config=base_config,
        )
        for series in result.series:
            assert series.xs == [3, 4, 5, 6]

    def test_bad_first_round(self, base_config):
        with pytest.raises(ValueError, match="first_round"):
            mechanism_round_sweep(
                "figT", "Test", "y", lambda r: [0.0], horizon=1, first_round=2,
                repetitions=1, base_config=base_config,
            )
