"""Tests for the platform-welfare experiment panel."""

import pytest

from repro.experiments.welfare import welfare_by_mechanism
from repro.simulation.config import SimulationConfig


@pytest.fixture(scope="module")
def toy_config():
    return SimulationConfig(
        n_tasks=6, rounds=6, required_measurements=3,
        area_side=1500.0, budget=150.0,
    )


class TestStructure:
    def test_panel_shape(self, toy_config):
        result = welfare_by_mechanism(
            user_counts=(10, 20), repetitions=2, base_config=toy_config,
            value_per_measurement=150.0 / 18.0,
        )
        assert result.experiment_id == "welfare"
        assert result.labels == ["on-demand", "fixed", "steered"]
        assert result.metadata["value_per_measurement"] == pytest.approx(150.0 / 18.0)

    def test_registered(self):
        from repro.experiments.registry import experiment_ids

        assert "welfare" in experiment_ids()


class TestOrdering:
    def test_on_demand_top_at_scale(self):
        """At the paper constants, on-demand wins welfare decisively."""
        from repro.analysis.shape import dominates

        result = welfare_by_mechanism(user_counts=(100,), repetitions=3)
        on_demand = result.series_by_label("on-demand")
        assert dominates(on_demand, result.series_by_label("fixed"))
        assert dominates(on_demand, result.series_by_label("steered"))
