"""Smoke + structure tests for the ablation experiments.

Ablations are exploratory, so these tests pin structure (one variant per
x position, both headline metrics present, determinism) rather than
outcomes; outcome-level readings live in the ablation bench output.
"""

import pytest

from repro.experiments import ablations


@pytest.mark.parametrize(
    "runner,expected_variants",
    [
        (lambda: ablations.level_count_ablation(
            level_counts=(2, 5), repetitions=1, n_users=10),
         ["N=2", "N=5", "level-free"]),
        (lambda: ablations.factor_ablation(repetitions=1, n_users=10),
         ["full", "no-deadline", "no-progress", "no-scarcity"]),
        (lambda: ablations.mobility_ablation(repetitions=1, n_users=10),
         ["stationary", "follow-path", "random-waypoint"]),
        (lambda: ablations.weight_method_ablation(repetitions=1, n_users=10),
         ["column-normalization", "eigenvector"]),
    ],
)
def test_ablation_structure(runner, expected_variants):
    result = runner()
    assert result.metadata["variants"] == expected_variants
    assert set(result.labels) == {"coverage_pct", "completeness_pct"}
    for series in result.series:
        assert len(series.points) == len(expected_variants)
        assert all(0.0 <= p.mean <= 100.0 for p in series.points)


def test_ablations_deterministic():
    a = ablations.factor_ablation(repetitions=1, n_users=10, base_seed=3)
    b = ablations.factor_ablation(repetitions=1, n_users=10, base_seed=3)
    assert a.rows() == b.rows()


def test_factor_weights_renormalised():
    """The dropped-factor variants must still sum their weights to 1
    (enforced by DemandWeights itself; this pins the renormalisation)."""
    from repro.core.demand import DemandWeights

    full = DemandWeights.from_ahp()
    total = full.progress + full.scarcity
    dropped = DemandWeights(0.0, full.progress / total, full.scarcity / total)
    assert dropped.deadline == 0.0
    assert dropped.progress + dropped.scarcity == pytest.approx(1.0)
