"""The unified factory registries and their deprecated shims.

Mechanisms and selectors construct through one :class:`repro.registry.
Registry` surface; the old ``make_mechanism``/``make_selector`` helpers
must keep working — same objects, same error messages — but warn.
"""

import pytest

from repro.core.mechanisms import MECHANISMS, make_mechanism
from repro.core.mechanisms.base import IncentiveMechanism
from repro.registry import Registry
from repro.selection import SELECTORS, make_selector
from repro.selection.base import Selector


class TestRegistrySurface:
    def test_selector_names_available(self):
        names = SELECTORS.available()
        for name in ("dp", "greedy", "brute-force"):
            assert name in names

    def test_mechanism_names_available(self):
        names = MECHANISMS.available()
        for name in ("on-demand", "fixed"):
            assert name in names

    def test_create_builds_instances(self):
        assert isinstance(SELECTORS.create("greedy"), Selector)
        assert isinstance(MECHANISMS.create("fixed"), IncentiveMechanism)

    def test_create_forwards_kwargs(self):
        selector = SELECTORS.create("dp", max_exact_tasks=9)
        assert selector.max_exact_tasks == 9

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="greedy"):
            SELECTORS.create("oracle")
        with pytest.raises(ValueError, match="on-demand"):
            MECHANISMS.create("telepathy")

    def test_reregistering_same_class_is_noop(self):
        registry = Registry("widget")

        class Widget:
            name = "w"

        registry.register(Widget)
        registry.register(Widget)  # module reloads must stay harmless
        assert registry.available() == ("w",)

    def test_name_collision_between_classes_rejected(self):
        registry = Registry("widget")

        class First:
            name = "w"

        class Second:
            name = "w"

        registry.register(First)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Second)


class TestFacadeRoundTrip:
    """Every registry entry must construct through the api facade."""

    def test_every_mechanism_builds_via_api(self):
        from repro import api

        for name in MECHANISMS.available():
            mechanism = api.create_mechanism(name)
            assert isinstance(mechanism, IncentiveMechanism), name
            assert mechanism.name == name
            assert MECHANISMS.get(name) is type(mechanism)

    def test_every_selector_builds_via_api(self):
        from repro import api

        for name in SELECTORS.available():
            selector = api.create_selector(name)
            assert isinstance(selector, Selector), name
            assert selector.name == name
            assert SELECTORS.get(name) is type(selector)

    def test_factory_modules_are_shims_over_the_registries(self):
        """The deprecated factory modules re-export the same objects."""
        from repro.core.mechanisms import factory as mechanism_factory
        from repro.selection import factory as selector_factory

        assert mechanism_factory.MECHANISMS is MECHANISMS
        assert selector_factory.SELECTORS is SELECTORS
        assert mechanism_factory.__all__ == [
            "MECHANISMS", "MECHANISM_NAMES", "make_mechanism"
        ]
        assert selector_factory.__all__ == [
            "SELECTORS", "SELECTOR_NAMES", "make_selector"
        ]


class TestDeprecatedShims:
    def test_make_selector_warns_but_works(self):
        with pytest.deprecated_call(match="SELECTORS.create"):
            selector = make_selector("greedy")
        assert isinstance(selector, Selector)

    def test_make_mechanism_warns_but_works(self):
        with pytest.deprecated_call(match="MECHANISMS.create"):
            mechanism = make_mechanism("fixed")
        assert isinstance(mechanism, IncentiveMechanism)

    def test_shim_and_registry_agree_on_errors(self):
        with pytest.deprecated_call():
            with pytest.raises(ValueError, match="greedy"):
                make_selector("oracle")
