"""The unified factory registries and their deprecated shims.

Mechanisms and selectors construct through one :class:`repro.registry.
Registry` surface; the old ``make_mechanism``/``make_selector`` helpers
must keep working — same objects, same error messages — but warn.
"""

import pytest

from repro.core.mechanisms import MECHANISMS, make_mechanism
from repro.core.mechanisms.base import IncentiveMechanism
from repro.registry import Registry
from repro.selection import SELECTORS, make_selector
from repro.selection.base import Selector


class TestRegistrySurface:
    def test_selector_names_available(self):
        names = SELECTORS.available()
        for name in ("dp", "greedy", "brute-force"):
            assert name in names

    def test_mechanism_names_available(self):
        names = MECHANISMS.available()
        for name in ("on-demand", "fixed"):
            assert name in names

    def test_create_builds_instances(self):
        assert isinstance(SELECTORS.create("greedy"), Selector)
        assert isinstance(MECHANISMS.create("fixed"), IncentiveMechanism)

    def test_create_forwards_kwargs(self):
        selector = SELECTORS.create("dp", max_exact_tasks=9)
        assert selector.max_exact_tasks == 9

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="greedy"):
            SELECTORS.create("oracle")
        with pytest.raises(ValueError, match="on-demand"):
            MECHANISMS.create("telepathy")

    def test_reregistering_same_class_is_noop(self):
        registry = Registry("widget")

        class Widget:
            name = "w"

        registry.register(Widget)
        registry.register(Widget)  # module reloads must stay harmless
        assert registry.available() == ("w",)

    def test_name_collision_between_classes_rejected(self):
        registry = Registry("widget")

        class First:
            name = "w"

        class Second:
            name = "w"

        registry.register(First)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Second)


class TestDeprecatedShims:
    def test_make_selector_warns_but_works(self):
        with pytest.deprecated_call(match="SELECTORS.create"):
            selector = make_selector("greedy")
        assert isinstance(selector, Selector)

    def test_make_mechanism_warns_but_works(self):
        with pytest.deprecated_call(match="MECHANISMS.create"):
            mechanism = make_mechanism("fixed")
        assert isinstance(mechanism, IncentiveMechanism)

    def test_shim_and_registry_agree_on_errors(self):
        with pytest.deprecated_call():
            with pytest.raises(ValueError, match="greedy"):
                make_selector("oracle")
