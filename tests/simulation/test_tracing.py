"""Tracing and per-round metrics must observe the run, never perturb it."""

import dataclasses

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanTracer
from repro.simulation.engine import simulate


def _comparable(result):
    """Everything numeric about a run, for bit-identity assertions."""
    return {
        "total_paid": result.total_paid,
        "total_measurements": result.total_measurements,
        "rounds": [
            (
                record.round_no,
                record.published_rewards,
                record.measurements,
                record.rejections,
                record.completed_task_ids,
            )
            for record in result.rounds
        ],
    }


class TestBitIdentity:
    def test_traced_run_matches_untraced(self, fast_config):
        plain = simulate(fast_config)
        traced = simulate(fast_config, tracer=SpanTracer())
        assert _comparable(traced) == _comparable(plain)

    def test_traced_run_matches_across_repeats(self, fast_config):
        first = simulate(fast_config, tracer=SpanTracer())
        second = simulate(fast_config, tracer=SpanTracer())
        assert _comparable(first) == _comparable(second)


class TestSpanStructure:
    def test_run_round_phase_spans_present(self, fast_config):
        tracer = SpanTracer()
        result = simulate(fast_config, tracer=tracer)
        names = [record.name for record in tracer.spans]
        assert names.count("run") == 1
        assert names.count("round") == result.rounds_played
        for phase in ("price-publish", "select", "upload"):
            assert names.count(phase) == result.rounds_played
        assert "select-user" in names

    def test_phase_spans_nest_inside_rounds(self, fast_config):
        tracer = SpanTracer()
        simulate(fast_config, tracer=tracer)
        depth = {record.name: record.depth for record in tracer.spans}
        assert depth["run"] == 0
        assert depth["round"] == 1
        assert depth["select"] == 2
        assert depth["select-user"] == 3


class TestPerRoundMetrics:
    def test_every_round_carries_a_registry(self, fast_config):
        result = simulate(fast_config)
        assert all(
            isinstance(record.metrics, MetricsRegistry) for record in result.rounds
        )

    def test_totals_reconcile_with_the_result(self, fast_config):
        result = simulate(fast_config)
        totals = result.metrics_totals()
        assert totals.value("payout_total") == pytest.approx(result.total_paid)
        accepted = totals.value("measurements_total", outcome="accepted")
        assert accepted == result.total_measurements
        perf = result.perf_totals()
        assert totals.value("selector_calls") == perf.selector_calls
        assert totals.value("selector_seconds_total") == pytest.approx(
            perf.selector_wall_time
        )
        histogram = totals.series().get("selector_seconds")
        assert histogram is not None and histogram.count == perf.selector_calls

    def test_budget_remaining_gauge_is_the_final_balance(self, fast_config):
        result = simulate(fast_config)
        totals = result.metrics_totals()
        assert totals.value("budget_remaining") == pytest.approx(
            fast_config.budget - result.total_paid
        )

    def test_demand_level_distribution_counts_tasks(self, fast_config):
        config = dataclasses.replace(fast_config, mechanism="on-demand")
        result = simulate(config)
        totals = result.metrics_totals()
        level_total = sum(
            instrument.value
            for key, instrument in totals.series().items()
            if key.startswith("demand_level_total{")
        )
        # One demand level per active task per round.
        assert level_total > 0
