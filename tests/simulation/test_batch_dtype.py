"""The float32 distance pipeline and the dtype-aware chunk budget.

float32 halves the distance-matrix memory traffic; the contract is that
it may only perturb low-order bits of *distances*, never decisions:
every reachability comparison within the float32 error band of a user's
budget is re-decided in float64, so candidate sets — and with a
deterministic selector, selections — match the float64 pipeline exactly.
"""

import numpy as np
import pytest

from repro.resilience.errors import ConfigError
from repro.simulation import SimulationConfig
from repro.simulation.batch import (
    BatchedRoundProblems,
    BatchedSimulationEngine,
    DEFAULT_CHUNK_BYTES,
    float32_boundary_tol,
)


def selections_by_round(result):
    return [
        [(u.user_id, u.selected_task_ids) for u in record.user_records]
        for record in result.rounds
    ]


BASE = dict(
    n_users=400,
    n_tasks=60,
    rounds=4,
    area_side=8000.0,
    budget=9000.0,
    deadline_range=(2, 4),
    participation_rate=0.8,
    arrival="poisson",
    selector="greedy",
    engine="batched",
    seed=5,
)


class TestFloat32SelectionParity:
    def test_selections_match_float64_pipeline(self):
        r64 = BatchedSimulationEngine(SimulationConfig(**BASE)).run()
        r32 = BatchedSimulationEngine(
            SimulationConfig(distance_dtype="float32", **BASE)
        ).run()
        assert selections_by_round(r32) == selections_by_round(r64)
        assert r32.total_measurements == r64.total_measurements

    def test_float32_matrices_reach_the_selector(self):
        config = SimulationConfig(distance_dtype="float32", **BASE)
        engine = BatchedSimulationEngine(config)
        problems = engine._round_problems(
            engine.published_tasks(), engine.published_rewards()
        )
        assert problems.dtype == np.float32
        for _user, problem in problems.iter_problems(engine.world.users[:20]):
            assert problem.distance_matrix.dtype == np.float32

    def test_boundary_tol_scales_with_magnitude(self):
        small = float32_boundary_tol(1000.0, 1000.0)
        large = float32_boundary_tol(100_000.0, 1000.0)
        assert large > small > 0.0
        # At city-1m magnitudes the band stays sub-meter: wide enough
        # to cover float32 rounding, far too narrow to change geometry.
        assert large < 1.0


class TestDtypeKnob:
    def test_config_rejects_unknown_dtype(self):
        with pytest.raises(ConfigError, match="distance_dtype"):
            SimulationConfig(distance_dtype="float16")

    def test_config_rejects_float32_on_scalar_engine(self):
        with pytest.raises(ConfigError, match="batched"):
            SimulationConfig(distance_dtype="float32", engine="scalar")

    def test_problems_reject_unknown_dtype(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            BatchedRoundProblems([], {}, dtype=np.int32)


class TestChunkByteBudget:
    def test_chunk_elements_derived_from_byte_budget(self):
        p64 = BatchedRoundProblems([], {}, dtype=np.float64)
        p32 = BatchedRoundProblems([], {}, dtype=np.float32)
        assert p64.chunk_elements == DEFAULT_CHUNK_BYTES // 8
        # Same byte footprint, twice the elements in float32.
        assert p32.chunk_elements == 2 * p64.chunk_elements

    def test_explicit_chunk_elements_still_wins(self):
        problems = BatchedRoundProblems([], {}, chunk_elements=7)
        assert problems.chunk_elements == 7

    def test_zero_chunk_elements_still_rejected(self):
        with pytest.raises(ValueError, match="chunk_elements"):
            BatchedRoundProblems([], {}, chunk_elements=0)

    def test_chunk_bytes_must_hold_an_element(self):
        with pytest.raises(ValueError, match="chunk_bytes"):
            BatchedRoundProblems([], {}, chunk_bytes=4, dtype=np.float64)
