"""The sharded select phase: bit-identical at every worker count.

The contract under test is the one docs/architecture.md pins: sharding
is an *execution* knob.  For any preset and any worker count the engine
must produce exactly the RoundRecord sequence the in-process batched
path produces — same prices, same selections, same measurements, same
rejections, same completions — and the perf accounting must not vary
with the worker count either.
"""

import pytest

from repro.resilience.errors import ConfigError
from repro.scenarios import PRESETS
from repro.simulation import make_engine
from repro.simulation.batch import BatchedSimulationEngine


def round_histories(result):
    """Every behavioural field of every round, comparison-ready."""
    return [
        (
            record.round_no,
            tuple(sorted(record.published_rewards.items())),
            tuple(
                (u.user_id, u.selected_task_ids, u.distance, u.reward, u.cost)
                for u in record.user_records
            ),
            tuple(
                (m.task_id, m.user_id, m.reward) for m in record.measurements
            ),
            tuple(
                (r.task_id, r.user_id, r.reason) for r in record.rejections
            ),
            record.completed_task_ids,
            record.expired_task_ids,
        )
        for record in result.rounds
    ]


def final_positions(engine):
    return [(u.user_id, u.location.x, u.location.y) for u in engine.world.users]


#: Downsized preset overrides: every preset through city-2k, shrunk so a
#: full worker sweep stays unit-test fast.  ``stream_rounds=False`` so
#: the result retains the rounds we compare.
PRESET_OVERRIDES = {
    "paper-2018": dict(rounds=2),
    "poisson-stream": dict(rounds=2),
    "rush-hour": dict(rounds=3, n_users=120),
    "city-2k": dict(rounds=3, n_users=400, n_tasks=60, area_side=6000.0),
}


def preset_config(name):
    overrides = dict(PRESET_OVERRIDES[name])
    overrides.update(engine="batched", stream_rounds=False, seed=11)
    return PRESETS[name].to_config(**overrides)


class TestWorkerCountDeterminism:
    @pytest.mark.parametrize("name", sorted(PRESET_OVERRIDES))
    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_history_identical_at_every_worker_count(self, name, workers):
        config = preset_config(name)
        baseline_engine = BatchedSimulationEngine(config)
        baseline = round_histories(baseline_engine.run())
        assert baseline, "preset must play at least one round"

        sharded_engine = BatchedSimulationEngine(config, workers=workers)
        try:
            sharded = round_histories(sharded_engine.run())
        finally:
            sharded_engine.close()
        assert sharded == baseline
        assert final_positions(sharded_engine) == final_positions(
            baseline_engine
        )

    def test_perf_accounting_is_worker_count_independent(self):
        config = preset_config("city-2k")
        baseline = BatchedSimulationEngine(config).run().perf_totals()
        engine = BatchedSimulationEngine(config, workers=2)
        try:
            sharded = engine.run().perf_totals()
        finally:
            engine.close()
        # One shared construction per round, one assembled problem per
        # participant, one selector call per user with candidates —
        # regardless of how many processes did the work.
        assert sharded.problem_cache_misses == baseline.problem_cache_misses
        assert sharded.problem_cache_hits == baseline.problem_cache_hits
        assert sharded.selector_calls == baseline.selector_calls


class TestWorkerKnobValidation:
    def test_scalar_engine_rejects_workers(self):
        config = PRESETS["paper-2018"].to_config(rounds=2)
        assert config.engine == "scalar"
        with pytest.raises(ConfigError, match="batched"):
            make_engine(config, workers=2)

    def test_scalar_engine_accepts_workers_one(self):
        config = PRESETS["paper-2018"].to_config(rounds=2)
        engine = make_engine(config, workers=1)
        assert type(engine).__name__ == "SimulationEngine"

    def test_pool_rejects_single_worker(self):
        from repro.simulation.shard import ShardedSelectionPool

        config = preset_config("city-2k")
        engine = BatchedSimulationEngine(config)
        with pytest.raises(ConfigError, match="workers >= 2"):
            ShardedSelectionPool(engine, 1)

    def test_unpicklable_selector_is_a_config_error(self):
        config = preset_config("city-2k")

        class LocalSelector:  # not importable from a worker process
            def select(self, problem):  # pragma: no cover - never called
                raise AssertionError

        with pytest.raises(ConfigError, match="picklable"):
            BatchedSimulationEngine(
                config, selector=LocalSelector(), workers=2
            )

    def test_close_leaves_engine_usable_in_process(self):
        config = preset_config("city-2k")
        engine = BatchedSimulationEngine(config, workers=2)
        engine.step()
        engine.close()
        # After the pool is gone, the same engine finishes on the
        # in-process path (shared arrays were copied back private).
        record = engine.step()
        assert record.round_no == 2


class TestShardTracePropagation:
    def test_pool_workers_write_trace_shards(self, tmp_path, monkeypatch):
        from repro.obs.trace import (
            TRACE_DIR_ENV,
            TRACE_ID_ENV,
            merge_traces,
            read_trace_shard,
        )

        monkeypatch.setenv(TRACE_ID_ENV, "feedcafe00000001")
        monkeypatch.setenv(TRACE_DIR_ENV, str(tmp_path))
        config = preset_config("city-2k")
        engine = BatchedSimulationEngine(config, workers=2)
        try:
            engine.run()
        finally:
            engine.close()
        shards = sorted(tmp_path.glob("shard-*.trace.jsonl"))
        assert shards, "pool workers wrote no trace shards"
        for shard in shards:
            loaded = read_trace_shard(shard)
            assert loaded["meta"]["trace_id"] == "feedcafe00000001"
            assert loaded["meta"]["parent_span_id"] == "select"
            assert all(
                span["name"] == "shard-select" for span in loaded["spans"]
            )
        payload = merge_traces(shards)
        assert payload["otherData"]["trace_id"] == "feedcafe00000001"

    def test_pool_is_silent_without_a_trace_context(self, tmp_path,
                                                    monkeypatch):
        from repro.obs.trace import TRACE_DIR_ENV, TRACE_ID_ENV

        monkeypatch.delenv(TRACE_ID_ENV, raising=False)
        monkeypatch.delenv(TRACE_DIR_ENV, raising=False)
        config = preset_config("city-2k")
        engine = BatchedSimulationEngine(config, workers=2)
        try:
            engine.run()
        finally:
            engine.close()
        assert not list(tmp_path.glob("*.trace.jsonl"))
