"""Engine edge cases: RNG accounting, rejection reasons, early stop.

Complements test_engine.py with the boundary behaviours the resilience
work leans on: exact participation-stream consumption (so legacy seeds
replay bit-identically), both contribution-rejection reasons, and the
finished-engine guard after an early stop.
"""

import pytest

from repro.resilience.errors import ConfigError, MechanismPriceError
from repro.selection import Selection
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import spawn_streams


class ScriptedCoordinator:
    """Assigns exactly the scripted selections: {round: {user_id: task_ids}}."""

    def __init__(self, script):
        self.script = script

    def assign(self, round_no, active_tasks, users, prices):
        plan = self.script.get(round_no, {})
        return {
            user_id: Selection(
                task_ids=tuple(task_ids), distance=0.0, reward=0.0, cost=0.0
            )
            for user_id, task_ids in plan.items()
        }


@pytest.fixture
def tiny_config():
    return SimulationConfig(n_users=3, n_tasks=4, rounds=5, mechanism="fixed")


class TestParticipationStream:
    def test_full_rate_consumes_no_randomness(self, fast_config):
        engine = SimulationEngine(fast_config)
        before = engine._streams["participation"].bit_generator.state
        engine.step()
        assert engine._streams["participation"].bit_generator.state == before

    def test_partial_rate_consumes_one_draw_per_user_per_round(self):
        config = SimulationConfig(
            n_users=10, n_tasks=4, rounds=3, participation_rate=0.6, seed=11
        )
        engine = SimulationEngine(config)
        engine.step()
        engine.step()
        # Exactly n_users draws per round, from the dedicated stream.
        reference = spawn_streams(config.seed)["participation"]
        reference.random(2 * config.n_users)
        assert (
            engine._streams["participation"].bit_generator.state
            == reference.bit_generator.state
        )

    def test_zero_rate_is_a_config_error(self):
        with pytest.raises(ConfigError, match="participation_rate"):
            SimulationConfig(participation_rate=0.0)


class TestRejectionReasons:
    def test_full_task_rejects_the_late_arrival(self, tiny_world, tiny_config):
        # All three users walk to task 0 (capacity 2): whoever the random
        # arrival order puts last is rejected because the task is full.
        engine = SimulationEngine(
            tiny_config,
            world=tiny_world,
            coordinator=ScriptedCoordinator({1: {0: (0,), 1: (0,), 2: (0,)}}),
        )
        record = engine.step()
        assert len(record.measurements) == 2
        assert [r.reason for r in record.rejections] == ["full"]
        assert record.completed_task_ids == (0,)

    def test_repeat_contribution_is_rejected_as_duplicate(
        self, tiny_world, tiny_config
    ):
        # Round 1: user 0 contributes to task 0 (1 of 2 slots used).
        # Round 2: user 0 is sent back to the *still-open* task 0.
        engine = SimulationEngine(
            tiny_config,
            world=tiny_world,
            coordinator=ScriptedCoordinator({1: {0: (0,)}, 2: {0: (0,)}}),
        )
        engine.step()
        record = engine.step()
        assert [r.reason for r in record.rejections] == ["duplicate"]
        assert record.measurements == ()


class TestPriceBoundary:
    class _NegativeMechanism:
        name = "negative"

        def initialize(self, world, rng):
            pass

        def rewards(self, view):
            return {t.task_id: -1.0 for t in view.active_tasks}

    def test_negative_prices_rejected_at_the_boundary(self, fast_config):
        engine = SimulationEngine(fast_config, mechanism=self._NegativeMechanism())
        with pytest.raises(MechanismPriceError, match="negative"):
            engine.step()


class TestEarlyStop:
    def test_step_after_early_completion_raises(self, tiny_world, tiny_config):
        # Users 0 and 1 each sweep all four tasks in round 1; every task
        # reaches its 2 required measurements, so the run ends 4 rounds
        # before the horizon.
        engine = SimulationEngine(
            tiny_config,
            world=tiny_world,
            coordinator=ScriptedCoordinator(
                {1: {0: (0, 1, 2, 3), 1: (0, 1, 2, 3)}}
            ),
        )
        record = engine.step()
        assert sorted(record.completed_task_ids) == [0, 1, 2, 3]
        assert engine.finished
        with pytest.raises(RuntimeError, match="finished"):
            engine.step()
