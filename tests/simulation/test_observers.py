"""Unit tests for the ready-made round observers."""

import io

import pytest

from repro.metrics import coverage_by_round
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine
from repro.simulation.observers import BudgetLedger, CoverageTracker, ProgressPrinter


@pytest.fixture
def config(fast_config):
    return fast_config


class TestProgressPrinter:
    def test_one_line_per_round(self, config):
        stream = io.StringIO()
        engine = SimulationEngine(config, observers=[ProgressPrinter(stream)])
        result = engine.run()
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == result.rounds_played
        assert lines[0].startswith("round  1:")
        assert "measurements" in lines[0]

    def test_prefix(self, config):
        stream = io.StringIO()
        engine = SimulationEngine(
            config, observers=[ProgressPrinter(stream, prefix="on-demand")]
        )
        engine.step()
        assert stream.getvalue().startswith("on-demand round")

    def test_line_reports_the_round_totals(self, config):
        stream = io.StringIO()
        engine = SimulationEngine(config, observers=[ProgressPrinter(stream)])
        result = engine.run()
        first_line = stream.getvalue().splitlines()[0]
        record = result.rounds[0]
        assert f"{record.measurement_count:>4} measurements" in first_line
        assert f"${record.total_paid:.2f} paid" in first_line


class TestBudgetLedger:
    def test_tracks_platform_payout(self, config):
        ledger = BudgetLedger(budget=config.budget)
        result = SimulationEngine(config, observers=[ledger]).run()
        assert ledger.total_paid == pytest.approx(result.total_paid)
        assert ledger.remaining == pytest.approx(config.budget - result.total_paid)
        assert len(ledger.paid_by_round) == result.rounds_played

    def test_never_breaches_on_real_runs(self):
        """Eq. 8 as a live assertion across seeds."""
        for seed in range(5):
            config = SimulationConfig(
                n_users=20, n_tasks=6, rounds=8, required_measurements=4,
                area_side=1500.0, budget=200.0, seed=seed,
            )
            ledger = BudgetLedger(budget=config.budget)
            SimulationEngine(config, observers=[ledger]).run()
            assert ledger.remaining >= -1e-9

    def test_breach_detection(self):
        from repro.simulation.events import MeasurementEvent, RoundRecord

        ledger = BudgetLedger(budget=1.0)
        record = RoundRecord(
            round_no=1, published_rewards={0: 2.0}, user_records=(),
            measurements=(MeasurementEvent(1, 0, 0, 2.0),),
            rejections=(), completed_task_ids=(), expired_task_ids=(),
        )
        with pytest.raises(RuntimeError, match="paid 2.00 of 1.00"):
            ledger(record)

    def test_budget_validated(self):
        with pytest.raises(ValueError, match="budget"):
            BudgetLedger(budget=0.0)


class TestCoverageTracker:
    def test_matches_metric(self, config):
        tracker = CoverageTracker(n_tasks=config.n_tasks)
        result = SimulationEngine(config, observers=[tracker]).run()
        expected = coverage_by_round(result, result.rounds_played)
        assert tracker.by_round == pytest.approx(expected)

    def test_monotone(self, config):
        tracker = CoverageTracker(n_tasks=config.n_tasks)
        SimulationEngine(config, observers=[tracker]).run()
        assert all(a <= b for a, b in zip(tracker.by_round, tracker.by_round[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="n_tasks"):
            CoverageTracker(n_tasks=0)
