"""Unit tests for repro.simulation.rng."""

import pytest

from repro.simulation.rng import STREAM_NAMES, child_seed, spawn_streams


class TestSpawnStreams:
    def test_default_streams_present(self):
        streams = spawn_streams(0)
        assert set(streams) == set(STREAM_NAMES)

    def test_streams_are_independent(self):
        streams = spawn_streams(0)
        a = streams["world"].random(5)
        b = streams["mechanism"].random(5)
        assert not (a == b).all()

    def test_same_seed_reproduces(self):
        a = spawn_streams(42)["world"].random(10)
        b = spawn_streams(42)["world"].random(10)
        assert (a == b).all()

    def test_different_seed_differs(self):
        a = spawn_streams(1)["world"].random(10)
        b = spawn_streams(2)["world"].random(10)
        assert not (a == b).all()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            spawn_streams(0, names=("a", "a"))

    def test_extra_stream_does_not_perturb_existing(self):
        """Adding a stream name must not change earlier streams' draws."""
        short = spawn_streams(7, names=("world", "mechanism"))
        long = spawn_streams(7, names=("world", "mechanism", "extra"))
        assert (short["world"].random(5) == long["world"].random(5)).all()


class TestChildSeed:
    def test_deterministic(self):
        assert child_seed(5, 3) == child_seed(5, 3)

    def test_distinct_across_indices(self):
        seeds = {child_seed(5, i) for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_across_bases(self):
        assert child_seed(1, 0) != child_seed(2, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            child_seed(1, -1)

    def test_no_arithmetic_aliasing(self):
        """(base+1, i) must not collide with (base, i+1) style neighbours."""
        grid = {child_seed(b, i) for b in range(10) for i in range(10)}
        assert len(grid) == 100
