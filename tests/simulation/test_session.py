"""Stepwise sessions: the bit-identity contract and session semantics.

The tentpole guarantee: a session stepped with no actions replays
``simulate()`` bit-identically — RoundRecord by RoundRecord — on every
preset through ``city-2k`` and on every engine (scalar, batched,
sharded).  Plus the session-only semantics: observe is pure, actions
invalidate the price cache, close is idempotent and releases shared
memory mid-run.
"""

import pytest

from repro import api
from repro.simulation import (
    SimulationConfig,
    make_engine,
    open_session,
    round_fingerprint,
    result_fingerprint,
)
from repro.simulation.session import SessionObservation

#: Downsized overrides per preset: small enough that 3 engine modes x
#: (reference + session) stay test-suite fast, unchanged in structure
#: (dynamics blocks, populations, arrival policies all intact).
PRESET_OVERRIDES = {
    "paper-2018": dict(n_users=30, n_tasks=6, rounds=5),
    "poisson-stream": dict(n_users=30, n_tasks=4, rounds=5),
    "poisson-churn": dict(n_users=20, n_tasks=5, rounds=5),
    "task-stream-2k": dict(n_users=80, n_tasks=6, rounds=4),
    "rush-hour": dict(n_users=40, n_tasks=8, rounds=5),
    "city-2k": dict(n_users=80, n_tasks=12, rounds=4),
}

ENGINE_MODES = ("scalar", "batched", "sharded")


def _config(preset: str, mode: str) -> SimulationConfig:
    overrides = dict(PRESET_OVERRIDES[preset])
    if mode == "scalar":
        # The scalar reference engine has no float32 distance pipeline.
        overrides.update(engine="scalar", distance_dtype="float64")
    else:
        overrides.update(engine="batched")
    return api.build_config(scenario=preset, **overrides)


def _workers(mode):
    return 2 if mode == "sharded" else None


def _reference_records(config, workers):
    """The engine's own history, captured via the observer hook (works
    for streaming presets, whose results drop per-round records)."""
    captured = []
    engine = make_engine(
        config, observers=[captured.append],
        **({} if workers is None else {"workers": workers}),
    )
    try:
        result = engine.run()
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return captured, result


class TestBitIdentity:
    @pytest.mark.parametrize("preset", sorted(PRESET_OVERRIDES))
    @pytest.mark.parametrize("mode", ENGINE_MODES)
    def test_session_replays_simulate(self, preset, mode):
        config = _config(preset, mode)
        workers = _workers(mode)
        reference, ref_result = _reference_records(config, workers)
        stepped = []
        with open_session(config, workers=workers) as session:
            while not session.finished:
                session.observe()  # must never perturb the replay
                stepped.append(session.step())
            result = session.result()
        assert [round_fingerprint(r) for r in stepped] == [
            round_fingerprint(r) for r in reference
        ]
        assert result_fingerprint(result) == result_fingerprint(ref_result)

    def test_run_without_actions_equals_engine_run(self):
        config = _config("paper-2018", "scalar")
        _, ref_result = _reference_records(config, None)
        with open_session(config) as session:
            result = session.run()
        assert result_fingerprint(result) == result_fingerprint(ref_result)


class TestObserve:
    def test_observe_is_pure_and_repeatable(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            first = session.observe()
            second = session.observe()
            assert isinstance(first, SessionObservation)
            assert first == second
            assert first.round_no == 1
            assert first.published_rewards  # round 1 is priced
            assert first.budget == config.budget
            assert first.total_paid == 0.0

    def test_observe_matches_round_prices(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            snapshot = session.observe()
            record = session.step()
            assert snapshot.published_rewards == record.published_rewards

    def test_observe_after_finish_has_no_prices(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            session.run()
            final = session.observe()
        assert final.finished
        assert final.published_rewards == {}
        assert final.demands == {}

    def test_task_snapshots_track_progress(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            before = session.observe()
            session.step()
            after = session.observe()
        received = lambda obs: sum(t.received for t in obs.tasks)  # noqa: E731
        assert received(before) == 0
        assert received(after) > 0


class TestActions:
    def test_action_invalidates_observe_price_cache(self):
        """observe() pre-prices the round; an action must reprice it."""
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            before = session.observe()
            record = session.step({"reward_step": 2.0})
            assert record.published_rewards != before.published_rewards

    def test_noop_action_keeps_identity(self):
        config = _config("paper-2018", "scalar")
        _, ref_result = _reference_records(config, None)
        with open_session(config) as session:
            while not session.finished:
                session.step({})  # empty mapping: nothing applied
            result = session.result()
        assert result_fingerprint(result) == result_fingerprint(ref_result)

    def test_run_with_action_script(self):
        config = _config("paper-2018", "scalar")
        actions = [None, {"reward_step": 1.0}]  # shorter than the run
        with open_session(config) as session:
            result = session.run(actions)
        assert result.rounds_played >= 2
        ladder_gap = lambda r: (  # noqa: E731 - distinct published prices
            max(r.published_rewards.values()) - min(r.published_rewards.values())
        )
        # Round 2 was priced with step=1.0; its reward ladder is wider
        # than round 1's (step=0.5) whenever both rounds span >1 level.
        assert result.round(2).published_rewards != result.round(1).published_rewards \
            or ladder_gap(result.round(2)) != ladder_gap(result.round(1))

    def test_malformed_action_steps_nothing(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            with pytest.raises(ValueError):
                session.step({"weights": [1.0, 2.0]})  # wrong arity
            assert session.current_round == 1  # the round did not play

    def test_partially_invalid_action_leaves_pricing_untouched(self):
        """A mixed action with one bad key must not half-apply: after
        the ValueError the round reprices exactly as observed."""
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            before = session.observe()
            with pytest.raises(ValueError):
                session.step({"weights": [2, 1, 1], "reward_step": -1.0})
            assert session.current_round == 1
            assert session.observe().published_rewards == (
                before.published_rewards
            )

    def test_observe_does_not_perturb_stateful_policy_mechanism(self):
        """With mechanism='policy' an observe() prices the round (the
        wrapped policy acts once); a subsequent step(action) reprices
        but must not re-run the policy — the trajectory cannot depend
        on whether observe() was called."""
        overrides = dict(
            PRESET_OVERRIDES["paper-2018"],
            engine="scalar",
            distance_dtype="float64",
            mechanism="policy",
            mechanism_kwargs={
                "policy": {"name": "step-decay", "decay": 0.7},
            },
        )
        config = api.build_config(scenario="paper-2018", **overrides)
        action = {"weights": [0.5, 0.3, 0.2]}
        with open_session(config) as plain:
            while not plain.finished:
                plain.step(dict(action))
            plain_result = plain.result()
        with open_session(config) as observed:
            while not observed.finished:
                observed.observe()  # prices: the policy acts here
                observed.step(dict(action))  # reprices: no second act
            observed_result = observed.result()
        assert result_fingerprint(observed_result) == result_fingerprint(
            plain_result
        )


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_stepping(self):
        config = _config("paper-2018", "scalar")
        session = open_session(config)
        session.step()
        session.close()
        session.close()  # idempotent
        assert session.closed
        with pytest.raises(RuntimeError, match="closed"):
            session.step()
        with pytest.raises(RuntimeError, match="closed"):
            session.observe()

    def test_mid_session_close_releases_shared_memory(self):
        config = _config("city-2k", "sharded")
        session = open_session(config, workers=2)
        try:
            assert session.engine.workers == 2
            assert not session.engine.closed  # the pool is live
            session.step()  # genuinely mid-run
            assert not session.finished
        finally:
            session.close()
        assert session.engine.closed
        assert session.engine._shards is None

    def test_step_after_finish_raises(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            session.run()
            with pytest.raises(RuntimeError, match="finished"):
                session.step()

    def test_result_valid_mid_run(self):
        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            session.step()
            partial = session.result()
            assert partial.rounds_played == 1


class TestEventStreaming:
    def test_session_writes_identical_events_jsonl(self, tmp_path):
        """The events-JSONL writer sees the same records either way."""
        from repro.io.events import RoundStreamWriter, read_events_jsonl

        config = _config("task-stream-2k", "batched")  # stream_rounds on
        direct_path = tmp_path / "direct.jsonl"
        engine = make_engine(config)
        with RoundStreamWriter(direct_path, engine.world) as writer:
            engine.observers.append(writer)
            engine.run()
        session_path = tmp_path / "session.jsonl"
        with open_session(config) as session:
            with RoundStreamWriter(session_path, session.engine.world) as writer:
                session.engine.observers.append(writer)
                while not session.finished:
                    session.step()
        direct = read_events_jsonl(direct_path)
        stepped = read_events_jsonl(session_path)
        assert [round_fingerprint(r) for r in direct.rounds] == [
            round_fingerprint(r) for r in stepped.rounds
        ]


class TestFingerprints:
    def test_round_fingerprint_ignores_perf_and_metrics(self):
        import dataclasses

        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            record = session.step()
        stripped = dataclasses.replace(record, perf=None, metrics=None)
        assert round_fingerprint(record) == round_fingerprint(stripped)

    def test_round_fingerprint_sees_every_deterministic_field(self):
        import dataclasses

        config = _config("paper-2018", "scalar")
        with open_session(config) as session:
            record = session.step()
        mutated = dataclasses.replace(record, selector_fallbacks=99)
        assert round_fingerprint(record) != round_fingerprint(mutated)
