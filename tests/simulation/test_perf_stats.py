"""PerfStats: the engine's execution counters and their plumbing.

The counters are pure observability — they must describe the run
(selector calls, cache hits, DP states) without ever influencing it,
survive the JSONL event-log round trip, and merge cleanly across rounds
and campaigns.
"""

import pytest

from repro.simulation import PerfStats, SimulationConfig, simulate
from repro.io.events import read_events_jsonl, write_events_jsonl


@pytest.fixture
def result(fast_config):
    return simulate(fast_config)


class TestPerfStatsObject:
    def test_add_merges_counts(self):
        a = PerfStats(problem_cache_hits=2, selector_calls=3, selector_wall_time=0.5)
        b = PerfStats(problem_cache_hits=1, dp_states_expanded=7)
        a.add(b)
        assert a.problem_cache_hits == 3
        assert a.selector_calls == 3
        assert a.dp_states_expanded == 7
        assert a.selector_wall_time == pytest.approx(0.5)

    def test_merged_skips_none(self):
        parts = [PerfStats(selector_calls=2), None, PerfStats(selector_calls=5)]
        assert PerfStats.merged(parts).selector_calls == 7

    def test_round_trip_dict(self):
        stats = PerfStats(
            problem_cache_hits=4,
            problem_cache_misses=1,
            price_cache_hits=2,
            dp_states_expanded=99,
            selector_calls=8,
            selector_wall_time=0.25,
        )
        assert PerfStats.from_dict(stats.as_dict()) == stats

    def test_cache_hit_rate(self):
        assert PerfStats().cache_hit_rate == 0.0
        assert PerfStats(
            problem_cache_hits=3, problem_cache_misses=1
        ).cache_hit_rate == pytest.approx(0.75)


class TestEngineCounters:
    def test_every_round_carries_perf(self, result):
        assert result.rounds
        for record in result.rounds:
            assert record.perf is not None

    def test_selector_call_accounting(self, result):
        totals = result.perf_totals()
        # One problem per (round, available user): calls == cache touches.
        assert totals.selector_calls > 0
        assert totals.selector_calls == (
            totals.problem_cache_hits
        ), "each selection should hit the shared per-round problem cache"
        assert totals.problem_cache_misses == result.rounds_played
        assert totals.selector_wall_time > 0.0

    def test_dp_states_counted_for_dp_selector(self, result):
        assert result.perf_totals().dp_states_expanded > 0

    def test_counters_do_not_change_the_simulation(self, fast_config):
        """Perf instrumentation is observability only: same history."""
        a = simulate(fast_config)
        b = simulate(fast_config)
        assert [r.measurements for r in a.rounds] == [
            r.measurements for r in b.rounds
        ]
        assert a.total_paid == b.total_paid

    def test_greedy_selector_reports_no_dp_states(self, fast_config):
        config = fast_config.with_overrides(selector="greedy")
        totals = simulate(config).perf_totals()
        assert totals.dp_states_expanded == 0
        assert totals.selector_calls > 0


class TestEventLogRoundTrip:
    def test_perf_survives_jsonl(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        replay = read_events_jsonl(path)
        for original, loaded in zip(result.rounds, replay.rounds):
            assert loaded.perf == original.perf

    def test_old_logs_without_perf_still_load(self, result, tmp_path):
        import json

        path = write_events_jsonl(result, tmp_path / "events.jsonl")
        lines = path.read_text().splitlines()
        stripped = [lines[0]]
        for line in lines[1:]:
            payload = json.loads(line)
            payload.pop("perf", None)
            stripped.append(json.dumps(payload))
        path.write_text("\n".join(stripped) + "\n")
        replay = read_events_jsonl(path)
        assert all(record.perf is None for record in replay.rounds)
