"""Unit tests for repro.simulation.events."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.simulation.events import (
    RoundRecord,
    UserRoundRecord,
    merge_user_records,
)


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(n_users=15, n_tasks=6, rounds=8,
                                     required_measurements=4, budget=200.0,
                                     area_side=1500.0, seed=3))


class TestUserRoundRecord:
    def test_profit_and_participation(self):
        record = UserRoundRecord(
            round_no=1, user_id=0, selected_task_ids=(1, 2),
            distance=100.0, reward=3.0, cost=0.2,
        )
        assert record.profit == pytest.approx(2.8)
        assert record.participated

    def test_sit_out(self):
        record = UserRoundRecord(
            round_no=1, user_id=0, selected_task_ids=(),
            distance=0.0, reward=0.0, cost=0.0,
        )
        assert not record.participated
        assert record.profit == 0.0


class TestRoundRecord:
    def test_round_accessors(self, result):
        first = result.round(1)
        assert isinstance(first, RoundRecord)
        assert first.round_no == 1
        assert first.measurement_count == len(first.measurements)
        assert first.total_paid == pytest.approx(
            sum(e.reward for e in first.measurements)
        )

    def test_round_out_of_range(self, result):
        with pytest.raises(IndexError, match="not played"):
            result.round(result.rounds_played + 1)
        with pytest.raises(IndexError, match="not played"):
            result.round(0)

    def test_participating_users_counts_selectors(self, result):
        record = result.round(1)
        expected = sum(1 for r in record.user_records if r.selected_task_ids)
        assert record.participating_users == expected


class TestSimulationResult:
    def test_totals_add_up(self, result):
        assert result.total_measurements == sum(
            r.measurement_count for r in result.rounds
        )
        assert result.total_paid == pytest.approx(
            sum(r.total_paid for r in result.rounds)
        )

    def test_measurements_by_task_covers_all_tasks(self, result):
        counts = result.measurements_by_task()
        assert set(counts) == {t.task_id for t in result.world.tasks}
        assert sum(counts.values()) == result.total_measurements

    def test_task_counts_match_world_state(self, result):
        counts = result.measurements_by_task()
        for task in result.world.tasks:
            assert counts[task.task_id] == task.received

    def test_user_profits_whole_run(self, result):
        profits = result.user_profits()
        assert len(profits) == len(result.world.users)
        # Cross-check against the users' own accounting.
        for user, profit in zip(result.world.users, profits):
            assert profit == pytest.approx(user.total_profit)

    def test_user_profits_single_round(self, result):
        profits = result.user_profits(round_no=1)
        record = result.round(1)
        assert profits == [r.profit for r in record.user_records]


class TestMergeUserRecords:
    def test_merges_by_user(self):
        records = [
            UserRoundRecord(1, 0, (1,), 10.0, 2.0, 0.5),
            UserRoundRecord(2, 0, (2,), 10.0, 1.0, 0.5),
            UserRoundRecord(1, 1, (3,), 10.0, 4.0, 1.0),
        ]
        merged = merge_user_records(records)
        assert merged[0] == (3.0, 1.0)
        assert merged[1] == (4.0, 1.0)

    def test_empty(self):
        assert merge_user_records([]) == {}
