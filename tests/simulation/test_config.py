"""Unit tests for repro.simulation.config."""

import pytest

from repro.core.levels import DemandLevels
from repro.simulation.config import SimulationConfig


class TestDefaults:
    def test_paper_constants(self):
        config = SimulationConfig()
        assert config.n_tasks == 20
        assert config.area_side == 3000.0
        assert config.required_measurements == 20
        assert config.deadline_range == (5, 15)
        assert config.budget == 1000.0
        assert config.reward_step == 0.5
        assert config.level_count == 5
        assert config.user_speed == 2.0
        assert config.cost_per_meter == 0.002

    def test_total_required_measurements(self):
        assert SimulationConfig().total_required_measurements == 400

    def test_region(self):
        assert SimulationConfig().region.width == 3000.0


class TestValidation:
    @pytest.mark.parametrize(
        "field,value,pattern",
        [
            ("n_users", 0, "n_users"),
            ("n_tasks", 0, "n_tasks"),
            ("rounds", 0, "rounds"),
            ("area_side", -1.0, "area_side"),
            ("budget", 0.0, "budget"),
            ("level_count", 0, "level_count"),
            ("layout", "hexagonal", "layout"),
            ("deadline_range", (0, 5), "deadline_range"),
            ("deadline_range", (6, 5), "deadline_range"),
        ],
    )
    def test_bad_values_rejected(self, field, value, pattern):
        with pytest.raises(ValueError, match=pattern):
            SimulationConfig(**{field: value})


class TestOverrides:
    def test_with_overrides_replaces(self):
        config = SimulationConfig().with_overrides(n_users=55, seed=9)
        assert config.n_users == 55
        assert config.seed == 9

    def test_with_overrides_preserves_rest(self):
        config = SimulationConfig(budget=500.0).with_overrides(n_users=55)
        assert config.budget == 500.0

    def test_original_unchanged(self):
        base = SimulationConfig()
        base.with_overrides(n_users=55)
        assert base.n_users == 100

    def test_unknown_keys_named_in_error(self):
        with pytest.raises(ValueError) as excinfo:
            SimulationConfig().with_overrides(n_userz=5, warp_factor=9)
        message = str(excinfo.value)
        assert "n_userz" in message
        assert "warp_factor" in message

    def test_unknown_key_error_lists_valid_fields(self):
        with pytest.raises(ValueError, match="n_users"):
            SimulationConfig().with_overrides(n_userz=5)


class TestMechanismArguments:
    def test_on_demand_gets_budget_knobs(self):
        args = SimulationConfig(mechanism="on-demand").mechanism_arguments()
        assert args["budget"] == 1000.0
        assert args["step"] == 0.5
        assert isinstance(args["levels"], DemandLevels)
        assert args["neighbour_radius"] == 500.0

    def test_fixed_gets_no_radius(self):
        args = SimulationConfig(mechanism="fixed").mechanism_arguments()
        assert "neighbour_radius" not in args
        assert args["budget"] == 1000.0

    def test_steered_gets_only_explicit_kwargs(self):
        config = SimulationConfig(
            mechanism="steered", mechanism_kwargs={"decay": 0.3}
        )
        assert config.mechanism_arguments() == {"decay": 0.3}

    def test_explicit_kwargs_override_derived(self):
        config = SimulationConfig(
            mechanism="on-demand", mechanism_kwargs={"budget": 123.0}
        )
        assert config.mechanism_arguments()["budget"] == 123.0

    def test_world_generator_mirrors_config(self):
        generator = SimulationConfig(n_users=33).world_generator()
        assert generator.n_users == 33
        assert generator.n_tasks == 20
        assert generator.user_time_budget == 900.0
