"""Unit and invariant tests for the simulation engine (the Fig. 1 loop)."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate
from repro.world.task import TaskStatus


@pytest.fixture
def config(fast_config):
    return fast_config


class TestLifecycle:
    def test_run_plays_at_most_configured_rounds(self, config):
        result = simulate(config)
        assert 1 <= result.rounds_played <= config.rounds

    def test_round_numbers_sequential(self, config):
        result = simulate(config)
        assert [r.round_no for r in result.rounds] == list(
            range(1, result.rounds_played + 1)
        )

    def test_step_then_run_completes(self, config):
        engine = SimulationEngine(config)
        first = engine.step()
        assert first.round_no == 1
        assert engine.current_round == 2
        result = engine.run()
        assert result.rounds_played >= 1
        assert engine.finished

    def test_step_after_finish_raises(self, config):
        engine = SimulationEngine(config)
        engine.run()
        with pytest.raises(RuntimeError, match="finished"):
            engine.step()

    def test_run_after_run_is_idempotent(self, config):
        engine = SimulationEngine(config)
        result = engine.run()
        again = engine.run()
        assert again is result
        assert again.rounds_played == result.rounds_played

    def test_stops_when_all_tasks_inactive(self):
        # Plenty of users, tiny requirements: everything finishes early.
        config = SimulationConfig(
            n_users=60, n_tasks=3, required_measurements=2,
            area_side=800.0, rounds=15, budget=100.0, seed=1,
        )
        result = simulate(config)
        assert result.rounds_played < 15
        assert all(not t.is_active for t in result.world.tasks)


class TestInvariants:
    """The paper's structural rules, checked over a full run."""

    @pytest.fixture(scope="class")
    def result(self):
        return simulate(SimulationConfig(
            n_users=25, n_tasks=8, rounds=10, required_measurements=5,
            area_side=2000.0, budget=400.0, seed=11,
        ))

    def test_no_task_exceeds_required_measurements(self, result):
        for task in result.world.tasks:
            assert task.received <= task.required_measurements

    def test_each_user_contributes_at_most_once_per_task(self, result):
        seen = set()
        for record in result.rounds:
            for event in record.measurements:
                key = (event.task_id, event.user_id)
                assert key not in seen
                seen.add(key)

    def test_total_paid_within_budget(self, result):
        """Eq. 8: the platform can never overspend its budget."""
        assert result.total_paid <= result.config.budget + 1e-9

    def test_measurements_match_task_state(self, result):
        counts = result.measurements_by_task()
        for task in result.world.tasks:
            assert task.received == counts[task.task_id]

    def test_published_rewards_cover_exactly_active_tasks(self, result):
        active = {t.task_id for t in result.world.tasks}
        for record in result.rounds:
            # Every measurement was paid at that round's published price.
            for event in record.measurements:
                assert event.reward == pytest.approx(
                    record.published_rewards[event.task_id]
                )

    def test_rewards_positive(self, result):
        for record in result.rounds:
            assert all(price > 0 for price in record.published_rewards.values())

    def test_user_distance_within_their_budget(self, result):
        max_distance = 2.0 * 900.0  # speed * time budget
        for record in result.rounds:
            for user_record in record.user_records:
                assert user_record.distance <= max_distance + 1e-6

    def test_completed_tasks_have_completed_status(self, result):
        completed_ids = {
            task_id for record in result.rounds for task_id in record.completed_task_ids
        }
        for task in result.world.tasks:
            if task.task_id in completed_ids:
                assert task.status is TaskStatus.COMPLETED

    def test_expired_tasks_past_deadline(self, result):
        for record in result.rounds:
            for task_id in record.expired_task_ids:
                task = result.world.tasks[task_id]
                assert task.status is TaskStatus.EXPIRED
                assert record.round_no >= task.deadline

    def test_no_measurement_after_deadline(self, result):
        for task in result.world.tasks:
            for round_no in task.measurements_by_round:
                assert round_no <= task.deadline


class TestDeterminism:
    def test_same_seed_same_history(self, config):
        a = simulate(config)
        b = simulate(config)
        assert a.total_measurements == b.total_measurements
        assert a.total_paid == pytest.approx(b.total_paid)
        for ra, rb in zip(a.rounds, b.rounds):
            assert ra.published_rewards == rb.published_rewards
            assert ra.measurements == rb.measurements

    def test_different_seed_differs(self, config):
        a = simulate(config)
        b = simulate(config.with_overrides(seed=config.seed + 1))
        different = (
            a.total_measurements != b.total_measurements
            or a.round(1).published_rewards != b.round(1).published_rewards
            or a.round(1).measurements != b.round(1).measurements
        )
        assert different


class TestHooks:
    def test_observers_called_per_round(self, config):
        seen = []
        engine = SimulationEngine(config, observers=[lambda r: seen.append(r.round_no)])
        result = engine.run()
        assert seen == [r.round_no for r in result.rounds]

    def test_injected_world_is_used(self, config, tiny_world):
        engine = SimulationEngine(config, world=tiny_world)
        assert engine.world is tiny_world

    def test_build_problems_excludes_past_contributions(self, config):
        engine = SimulationEngine(config)
        engine.step()
        for user, problem in engine.build_problems():
            contributed = {
                t.task_id for t in engine.world.tasks
                if user.user_id in t.contributors
            }
            offered = {c.task_id for c in problem.candidates}
            assert not (contributed & offered)

    def test_published_rewards_is_repeatable(self, config):
        engine = SimulationEngine(config)
        engine.step()
        assert engine.published_rewards() == engine.published_rewards()


class TestLayouts:
    def test_clustered_layout_runs(self):
        config = SimulationConfig(
            n_users=20, n_tasks=6, rounds=6, required_measurements=3,
            budget=200.0, layout="clustered", seed=5,
        )
        result = simulate(config)
        assert result.rounds_played >= 1

    @pytest.mark.parametrize("mobility", ["stationary", "follow-path", "random-waypoint"])
    def test_all_mobility_policies_run(self, mobility):
        config = SimulationConfig(
            n_users=12, n_tasks=5, rounds=5, required_measurements=3,
            budget=150.0, mobility=mobility, seed=2,
        )
        result = simulate(config)
        assert result.rounds_played >= 1
        region = result.world.region
        assert all(region.contains(u.location) for u in result.world.users)

    @pytest.mark.parametrize("mechanism", ["on-demand", "fixed", "steered", "proportional"])
    def test_all_mechanisms_run(self, mechanism):
        config = SimulationConfig(
            n_users=12, n_tasks=5, rounds=5, required_measurements=3,
            budget=150.0, mechanism=mechanism, seed=2,
        )
        assert simulate(config).rounds_played >= 1

    @pytest.mark.parametrize("selector", ["dp", "greedy", "greedy-2opt"])
    def test_all_selectors_run(self, selector):
        config = SimulationConfig(
            n_users=12, n_tasks=5, rounds=5, required_measurements=3,
            budget=150.0, selector=selector, seed=2,
        )
        assert simulate(config).rounds_played >= 1
