"""The batched engine path: bit-identity with the scalar engine.

The batched engine's whole contract is "same histories, faster" — so
these tests compare full behavioral round histories (published rewards,
per-user records, measurements, rejections, lifecycle events) and final
world state field by field, never wall-clock or perf counters.
"""

import numpy as np
import pytest

from repro.simulation import SimulationConfig, SimulationEngine, make_engine
from repro.simulation.batch import BatchedRoundProblems, BatchedSimulationEngine
from repro.simulation.round_cache import RoundProblems


def behavioral_history(result):
    """Every behavioral field of a run, as one comparable structure."""
    return [
        (
            record.round_no,
            tuple(sorted(record.published_rewards.items())),
            tuple(
                (u.user_id, tuple(u.selected_task_ids), u.distance,
                 u.reward, u.cost)
                for u in record.user_records
            ),
            tuple((m.user_id, m.task_id, m.round_no)
                  for m in record.measurements),
            tuple((r.user_id, r.task_id, r.reason)
                  for r in record.rejections),
            tuple(sorted(record.completed_task_ids)),
            tuple(sorted(record.expired_task_ids)),
        )
        for record in result.rounds
    ]


def final_world_state(engine):
    return (
        tuple(
            (u.user_id, u.location.x, u.location.y, u.total_reward,
             u.total_cost)
            for u in engine.world.users
        ),
        tuple(
            (t.task_id, t.received, t.status.value,
             tuple(sorted(t.contributors)))
            for t in engine.world.tasks
        ),
    )


def run_both(**overrides):
    base = SimulationConfig(**overrides)
    scalar = make_engine(base.with_overrides(engine="scalar"))
    batched = make_engine(base.with_overrides(engine="batched"))
    return (scalar, scalar.run()), (batched, batched.run())


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_paper_world(self, seed):
        (s_eng, s_res), (b_eng, b_res) = run_both(
            n_users=60, n_tasks=20, rounds=10, seed=seed
        )
        assert behavioral_history(s_res) == behavioral_history(b_res)
        assert final_world_state(s_eng) == final_world_state(b_eng)
        assert s_res.total_paid == b_res.total_paid

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(selector="greedy", mobility="random-waypoint"),
            dict(mechanism="fixed", participation_rate=0.7,
                 release_range=(1, 5)),
            dict(heterogeneity=0.3, layout="clustered"),
            dict(arrival="poisson"),
        ],
        ids=["waypoint", "fixed-partial", "clustered-hetero", "poisson"],
    )
    def test_extension_knobs(self, overrides):
        (s_eng, s_res), (b_eng, b_res) = run_both(
            n_users=50, n_tasks=15, rounds=8, seed=11, **overrides
        )
        assert behavioral_history(s_res) == behavioral_history(b_res)
        assert final_world_state(s_eng) == final_world_state(b_eng)

    def test_streamed_rounds(self):
        (_, s_res), (_, b_res) = run_both(
            n_users=40, rounds=6, seed=3, stream_rounds=True
        )
        assert s_res.total_measurements == b_res.total_measurements
        assert s_res.total_paid == b_res.total_paid


class TestChunking:
    def test_pathologically_small_chunks_change_nothing(self):
        base = SimulationConfig(n_users=40, rounds=5, seed=3)
        reference = make_engine(base).run()
        tiny_chunks = make_engine(base.with_overrides(engine="batched"))
        tiny_chunks.chunk_elements = 7  # ~1 user per chunk
        assert behavioral_history(tiny_chunks.run()) == behavioral_history(
            reference
        )

    def test_chunk_elements_validated(self):
        with pytest.raises(ValueError, match="chunk_elements"):
            BatchedRoundProblems([], {}, chunk_elements=0)


class TestProblemParity:
    def test_iter_problems_matches_problem_for(self):
        engine = make_engine(
            SimulationConfig(n_users=25, seed=5, engine="batched")
        )
        engine.step()  # advance one round so some tasks have contributors
        tasks = engine.active_tasks()
        prices = {t.task_id: 1.0 for t in tasks}
        scalar = RoundProblems(tasks, prices)
        batched = BatchedRoundProblems(tasks, prices)
        users = list(engine.world.users)
        for user, problem in batched.iter_problems(users):
            expected = scalar.problem_for(user)
            assert [c.task_id for c in problem.candidates] == [
                c.task_id for c in expected.candidates
            ]
            np.testing.assert_array_equal(
                problem.distance_matrix, expected.distance_matrix
            )
            assert problem.max_distance == expected.max_distance
            assert problem.cost_per_meter == expected.cost_per_meter

    def test_empty_problem_skips_selector(self):
        # Shrink travel budgets to zero reach: every problem is empty, so
        # the batched engine must answer without a single selector call.
        engine = make_engine(
            SimulationConfig(
                n_users=10, rounds=2, seed=0, engine="batched",
                user_time_budget=0.001,
            )
        )
        calls = []
        original = engine.selector.select

        def counting(problem):
            calls.append(problem)
            return original(problem)

        engine.selector.select = counting
        result = engine.run()
        assert calls == []
        assert all(
            not record.selected_task_ids
            for round_record in result.rounds
            for record in round_record.user_records
        )


class TestEngineFactory:
    def test_dispatches_on_config_engine(self):
        scalar = make_engine(SimulationConfig(n_users=5))
        batched = make_engine(SimulationConfig(n_users=5, engine="batched"))
        assert type(scalar) is SimulationEngine
        assert isinstance(batched, BatchedSimulationEngine)

    def test_batched_flips_mechanism_flag(self):
        engine = make_engine(SimulationConfig(n_users=5, engine="batched"))
        assert getattr(engine.mechanism, "batched", False) is True
        scalar = make_engine(SimulationConfig(n_users=5))
        assert getattr(scalar.mechanism, "batched", True) is False
