"""Tests for stochastic per-round participation."""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate


def config_with(rate, **overrides):
    base = SimulationConfig(
        n_users=20, n_tasks=6, rounds=8, required_measurements=3,
        area_side=1500.0, budget=200.0, participation_rate=rate, seed=5,
    )
    return base.with_overrides(**overrides) if overrides else base


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="participation_rate"):
            config_with(0.0)
        with pytest.raises(ValueError, match="participation_rate"):
            config_with(1.5)

    def test_full_rate_is_default(self):
        assert SimulationConfig().participation_rate == 1.0


class TestBehaviour:
    def test_full_rate_replays_legacy_seeds(self):
        """rate=1.0 must consume no participation randomness."""
        a = simulate(config_with(1.0))
        b = simulate(config_with(1.0))
        assert a.total_measurements == b.total_measurements

    def test_partial_rate_reduces_participation(self):
        full = simulate(config_with(1.0))
        half = simulate(config_with(0.4))
        full_participants = sum(r.participating_users for r in full.rounds[:3])
        half_participants = sum(r.participating_users for r in half.rounds[:3])
        assert half_participants < full_participants

    def test_sitting_out_users_have_empty_records(self):
        engine = SimulationEngine(config_with(0.5))
        record = engine.step()
        # With rate 0.5 and 20 users, someone almost surely sat out; all
        # sit-outs must show zero activity everywhere.
        idle = [r for r in record.user_records if not r.participated]
        assert idle
        assert all(r.distance == 0.0 and r.reward == 0.0 for r in idle)

    def test_invariants_hold_under_partial_participation(self):
        result = simulate(config_with(0.5))
        assert result.total_paid <= 200.0 + 1e-9
        for task in result.world.tasks:
            assert task.received <= task.required_measurements

    def test_deterministic(self):
        a = simulate(config_with(0.6))
        b = simulate(config_with(0.6))
        assert a.total_measurements == b.total_measurements
        assert a.total_paid == pytest.approx(b.total_paid)

    def test_sat_mode_respects_participation(self):
        from repro.allocation.greedy_server import GreedyServerCoordinator

        config = config_with(0.3)
        engine = SimulationEngine(config, coordinator=GreedyServerCoordinator())
        record = engine.step()
        # The coordinator only saw the available subset.
        assert record.participating_users <= len(engine.world.users)
        idle = [r for r in record.user_records if not r.participated]
        assert idle
