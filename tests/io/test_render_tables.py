"""Unit tests for repro.io.tables (ASCII/markdown rendering)."""

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.io.tables import render_experiment, render_markdown, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "22.50" in lines[3]

    def test_none_renders_dash(self):
        text = render_table(["x", "y"], [[1, None]])
        assert "-" in text.splitlines()[-1]

    def test_precision(self):
        text = render_table(["v"], [[3.14159]], precision=4)
        assert "3.1416" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_integers_not_decimalised(self):
        text = render_table(["n"], [[42]])
        assert "42" in text and "42.00" not in text


class TestRenderMarkdown:
    def test_structure(self):
        text = render_markdown(["a", "b"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.50 |"

    def test_width_mismatch(self):
        with pytest.raises(ValueError, match="width"):
            render_markdown(["a"], [[1, 2]])


class TestRenderExperiment:
    def test_contains_title_and_series(self):
        result = ExperimentResult(
            experiment_id="figX",
            title="Example",
            x_label="users",
            y_label="metric",
            series=[Series("on-demand", (SeriesPoint(40, 1.5),))],
            metadata={"repetitions": 2},
        )
        text = render_experiment(result)
        assert "figX: Example" in text
        assert "repetitions=2" in text
        assert "on-demand" in text
        assert "1.50" in text
