"""Unit tests for repro.io.csvio."""

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.io.csvio import read_series_csv, write_series_csv


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="fig-test",
        title="CSV round trip",
        x_label="users",
        y_label="coverage",
        series=[
            Series("on-demand", (SeriesPoint(40, 99.0, 1.0, 5), SeriesPoint(60, 100.0, 0.0, 5))),
            Series("fixed", (SeriesPoint(40, 90.0, 2.0, 5),)),
        ],
    )


class TestCsv:
    def test_round_trip_points(self, result, tmp_path):
        path = write_series_csv(result, tmp_path / "out.csv")
        loaded = read_series_csv(path)
        by_label = {s.label: s for s in loaded.series}
        assert by_label["on-demand"].points == result.series[0].points
        assert by_label["fixed"].points == result.series[1].points

    def test_header_line(self, result, tmp_path):
        path = write_series_csv(result, tmp_path / "out.csv")
        first = path.read_text().splitlines()[0]
        assert first == "series,x,mean,std,n"

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_series_csv(path)

    def test_points_sorted_on_read(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text(
            "series,x,mean,std,n\ns,2,1.0,0.0,1\ns,1,2.0,0.0,1\n"
        )
        loaded = read_series_csv(path)
        assert loaded.series[0].xs == [1.0, 2.0]
