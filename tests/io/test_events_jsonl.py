"""Tests for the JSONL event-log export/import."""

import json

import pytest

from repro.io.events import read_events_jsonl, write_events_jsonl
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=12, n_tasks=5, rounds=6, required_measurements=3,
        area_side=1500.0, budget=150.0, seed=41,
    ))


class TestRoundTrip:
    def test_totals_survive(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        replay = read_events_jsonl(path)
        assert replay.total_measurements == result.total_measurements
        assert replay.total_paid == pytest.approx(result.total_paid)
        assert replay.n_tasks == 5
        assert replay.n_users == 12

    def test_round_records_survive(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        replay = read_events_jsonl(path)
        assert len(replay.rounds) == result.rounds_played
        for original, loaded in zip(result.rounds, replay.rounds):
            assert loaded.round_no == original.round_no
            assert loaded.published_rewards == original.published_rewards
            assert loaded.measurements == original.measurements
            assert loaded.rejections == original.rejections

    def test_per_task_counts_survive(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        replay = read_events_jsonl(path)
        assert replay.measurements_by_task() == result.measurements_by_task()

    def test_file_is_one_json_per_line(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "meta"
        assert all(json.loads(line)["kind"] == "round" for line in lines[1:])
        assert len(lines) == 1 + result.rounds_played


class TestMetricsPayloads:
    def test_per_round_metrics_survive(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        replay = read_events_jsonl(path)
        for original, loaded in zip(result.rounds, replay.rounds):
            assert loaded.metrics is not None
            assert loaded.metrics.as_dict() == original.metrics.as_dict()

    def test_histogram_state_round_trips_exactly(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        replay = read_events_jsonl(path)
        for original, loaded in zip(result.rounds, replay.rounds):
            before = original.metrics.series()["selector_seconds"]
            after = loaded.metrics.series()["selector_seconds"]
            assert after.bounds == before.bounds
            assert after.bucket_counts == before.bucket_counts
            assert (after.count, after.sum) == (before.count, before.sum)
            assert (after.min, after.max) == (before.min, before.max)

    def test_totals_reconstruct_from_the_log(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        replay = read_events_jsonl(path)
        assert (
            replay.metrics_totals().as_dict()
            == result.metrics_totals().as_dict()
        )

    def test_logs_without_metrics_still_load(self, result, tmp_path):
        """Pre-observability logs (no 'metrics' key) stay readable."""
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        lines = []
        for line in path.read_text().splitlines():
            payload = json.loads(line)
            payload.pop("metrics", None)
            lines.append(json.dumps(payload))
        path.write_text("\n".join(lines) + "\n")
        replay = read_events_jsonl(path)
        assert all(record.metrics is None for record in replay.rounds)
        assert not replay.metrics_totals()  # empty registry, not a crash


class TestValidation:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_events_jsonl(path)

    def test_foreign_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "meta", "format_version": 99}) + "\n")
        with pytest.raises(ValueError, match="version"):
            read_events_jsonl(path)

    def test_bad_line_kind_rejected(self, result, tmp_path):
        path = write_events_jsonl(result, tmp_path / "run.jsonl")
        content = path.read_text() + json.dumps({"kind": "banana"}) + "\n"
        path.write_text(content)
        with pytest.raises(ValueError, match="unexpected line kind"):
            read_events_jsonl(path)
