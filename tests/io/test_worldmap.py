"""Unit tests for the ASCII world map."""

import pytest

from repro.io.worldmap import render_world
from repro.world.generator import World
from repro.world.task import TaskStatus
from tests.conftest import make_task, make_user


@pytest.fixture
def world(region):
    tasks = [
        make_task(0, 100.0, 100.0, required=1),
        make_task(1, 900.0, 900.0, required=1),
    ]
    users = [make_user(0, 500.0, 500.0)]
    return World(region=region, tasks=tasks, users=users)


class TestRenderWorld:
    def test_markers_present(self, world):
        text = render_world(world)
        assert "T" in text
        assert "." in text

    def test_legend_counts(self, world):
        text = render_world(world)
        assert "T=active(2)" in text
        assert ".=user(1)" in text
        assert "area 1000x1000 m" in text

    def test_completed_and_expired_markers(self, world):
        world.tasks[0].record_measurement(0, round_no=1)
        world.tasks[1].status = TaskStatus.EXPIRED
        text = render_world(world)
        assert "C=completed(1)" in text
        assert "X=expired(1)" in text
        assert "C" in text and "X" in text

    def test_task_marker_wins_over_user(self, region):
        tasks = [make_task(0, 500.0, 500.0, required=1)]
        users = [make_user(0, 500.0, 500.0)]
        text = render_world(World(region=region, tasks=tasks, users=users))
        grid_rows = [line for line in text.splitlines() if line.startswith("|")]
        assert any("T" in row for row in grid_rows)
        assert not any("." in row for row in grid_rows)

    def test_corner_positions(self, region):
        """Boundary coordinates must land inside the grid (no IndexError)."""
        tasks = [make_task(0, 0.0, 0.0, required=1),
                 make_task(1, 1000.0, 1000.0, required=1)]
        users = [make_user(0, 1000.0, 0.0)]
        text = render_world(World(region=region, tasks=tasks, users=users))
        grid_rows = [line for line in text.splitlines() if line.startswith("|")]
        # Bottom-left task in the last grid row, top-right in the first.
        assert "T" in grid_rows[0]
        assert "T" in grid_rows[-1]

    def test_y_axis_points_up(self, region):
        tasks = [make_task(0, 500.0, 990.0, required=1)]
        users = [make_user(0, 500.0, 10.0)]
        text = render_world(World(region=region, tasks=tasks, users=users))
        grid_rows = [line for line in text.splitlines() if line.startswith("|")]
        task_row = next(i for i, row in enumerate(grid_rows) if "T" in row)
        user_row = next(i for i, row in enumerate(grid_rows) if "." in row)
        assert task_row < user_row

    def test_grid_validated(self, world):
        with pytest.raises(ValueError, match="grid too small"):
            render_world(world, width=5, height=2)

    def test_fixed_line_width(self, world):
        text = render_world(world, width=40, height=10)
        grid_rows = [line for line in text.splitlines() if line.startswith("|")]
        assert len(grid_rows) == 10
        assert all(len(row) == 42 for row in grid_rows)
