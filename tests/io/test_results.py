"""Unit tests for repro.io.results."""

import json

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.io.results import FORMAT_VERSION, load_result, save_result
from repro.resilience.errors import ResultCorruption, TransientIOError


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="fig-test",
        title="Round trip",
        x_label="x",
        y_label="y",
        series=[Series("a", (SeriesPoint(1, 2.0, 0.5, 4),))],
        metadata={"repetitions": 4},
    )


class TestRoundTrip:
    def test_save_and_load(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        loaded = load_result(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.series[0].points == result.series[0].points
        assert loaded.metadata == result.metadata

    def test_parents_created(self, result, tmp_path):
        path = save_result(result, tmp_path / "a" / "b" / "out.json")
        assert path.exists()

    def test_file_is_versioned_json(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION

    def test_foreign_version_rejected(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_result(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result(tmp_path / "nope.json")


class TestCorruptionHandling:
    def test_undecodable_json_names_the_file_and_suggests_rerun(
        self, result, tmp_path
    ):
        path = save_result(result, tmp_path / "out.json")
        path.write_text('{"format_version": 1, "resu')  # truncated write
        with pytest.raises(ResultCorruption, match="re-run"):
            load_result(path)
        with pytest.raises(ResultCorruption, match="out.json"):
            load_result(path)

    def test_corruption_is_still_a_value_error(self, result, tmp_path):
        """Pre-taxonomy callers catching ValueError keep working."""
        path = save_result(result, tmp_path / "out.json")
        path.write_text("not json at all")
        with pytest.raises(ValueError):
            load_result(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ResultCorruption):
            load_result(path)

    def test_malformed_result_payload_rejected(self, tmp_path):
        path = tmp_path / "out.json"
        path.write_text(json.dumps({"format_version": FORMAT_VERSION}))
        with pytest.raises(ResultCorruption, match="malformed"):
            load_result(path)


class TestAtomicity:
    def test_no_temp_files_left_behind(self, result, tmp_path):
        save_result(result, tmp_path / "out.json")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_existing_file_survives_a_failed_write(
        self, result, tmp_path, monkeypatch
    ):
        path = save_result(result, tmp_path / "out.json")
        before = path.read_text()

        def refuse(*_args, **_kwargs):
            raise TransientIOError("injected replace failure")

        monkeypatch.setattr("repro.io.atomic.os.replace", refuse)
        with pytest.raises(TransientIOError):
            save_result(result, path, attempts=2)
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]
