"""Unit tests for repro.io.results."""

import json

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.io.results import FORMAT_VERSION, load_result, save_result


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="fig-test",
        title="Round trip",
        x_label="x",
        y_label="y",
        series=[Series("a", (SeriesPoint(1, 2.0, 0.5, 4),))],
        metadata={"repetitions": 4},
    )


class TestRoundTrip:
    def test_save_and_load(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        loaded = load_result(path)
        assert loaded.experiment_id == result.experiment_id
        assert loaded.series[0].points == result.series[0].points
        assert loaded.metadata == result.metadata

    def test_parents_created(self, result, tmp_path):
        path = save_result(result, tmp_path / "a" / "b" / "out.json")
        assert path.exists()

    def test_file_is_versioned_json(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == FORMAT_VERSION

    def test_foreign_version_rejected(self, result, tmp_path):
        path = save_result(result, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_result(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_result(tmp_path / "nope.json")
