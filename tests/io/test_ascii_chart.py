"""Unit tests for repro.io.ascii_chart."""

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint
from repro.io.ascii_chart import render_chart, render_sparkline


def panel(series_values):
    series = [
        Series(label, tuple(SeriesPoint(x, v) for x, v in enumerate(values)))
        for label, values in series_values.items()
    ]
    return ExperimentResult(
        experiment_id="chart-test",
        title="Chart",
        x_label="x",
        y_label="y",
        series=series,
    )


class TestRenderChart:
    def test_contains_axes_and_legend(self):
        text = render_chart(panel({"a": [1, 2, 3], "b": [3, 2, 1]}))
        assert "chart-test" in text
        assert "o=a" in text and "x=b" in text
        assert "y: y, x: x" in text

    def test_extreme_labels(self):
        text = render_chart(panel({"a": [10.0, 50.0]}))
        assert "50" in text
        assert "10" in text

    def test_rising_series_marker_positions(self):
        text = render_chart(panel({"a": [0.0, 100.0]}), width=10, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        # Max at top-right, min at bottom-left.
        assert rows[0].rstrip().endswith("o|")
        assert "o" in rows[-1].split("|")[1][:2]

    def test_collision_marker(self):
        text = render_chart(panel({"a": [5.0, 5.0], "b": [5.0, 9.0]}))
        assert "*" in text

    def test_flat_series_renders(self):
        text = render_chart(panel({"a": [2.0, 2.0, 2.0]}))
        assert "o" in text

    def test_degenerate_grid_rejected(self):
        with pytest.raises(ValueError, match="grid too small"):
            render_chart(panel({"a": [1, 2]}), width=4, height=2)

    def test_empty_panel_rejected(self):
        empty = ExperimentResult("e", "t", "x", "y", series=[])
        with pytest.raises(ValueError, match="no points"):
            render_chart(empty)

    def test_line_width_is_stable(self):
        text = render_chart(panel({"a": [1, 5, 2]}), width=30, height=8)
        chart_rows = [line for line in text.splitlines() if line.endswith("|")]
        assert len({len(row) for row in chart_rows}) == 1


class TestSparkline:
    def test_monotone_series(self):
        line = render_sparkline(Series("up", tuple(
            SeriesPoint(i, float(i)) for i in range(8)
        )))
        assert line.startswith("up ")
        assert "▁" in line and "█" in line

    def test_constant_series(self):
        line = render_sparkline(Series("flat", (SeriesPoint(0, 3.0), SeriesPoint(1, 3.0))))
        assert "▄" in line

    def test_range_annotation(self):
        line = render_sparkline(Series("s", (SeriesPoint(0, 1.0), SeriesPoint(1, 9.0))))
        assert "[1..9]" in line

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            render_sparkline(Series("e", ()))

    def test_width_validated(self):
        with pytest.raises(ValueError, match="width"):
            render_sparkline(Series("s", (SeriesPoint(0, 1.0),)), width=0)


class TestCliIntegration:
    def test_chart_flag(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_REPS", "1")
        main(["run", "fig6b", "--chart"])
        out = capsys.readouterr().out
        assert "on-demand" in out
        assert "overlap" in out  # the chart legend rendered
