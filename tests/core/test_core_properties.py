"""Property-based tests for the demand/levels/rewards core (hypothesis)."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.ahp import PairwiseComparisonMatrix
from repro.core.demand import (
    DemandCalculator,
    DemandWeights,
    TaskDemandInputs,
    deadline_factor,
    progress_factor,
    scarcity_factor,
)
from repro.core.levels import DemandLevels
from repro.core.rewards import RewardSchedule

LN2 = math.log(2.0)

weights_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
).filter(lambda w: sum(w) > 1e-6).map(
    lambda w: DemandWeights(w[0] / sum(w), w[1] / sum(w), w[2] / sum(w))
)


@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=50),
)
def test_deadline_factor_bounded(round_no, slack):
    deadline = round_no + slack - 1  # always >= round_no
    value = deadline_factor(round_no, deadline)
    assert 0.0 < value <= LN2 + 1e-12


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=100))
def test_progress_factor_bounded(received, required):
    value = progress_factor(received, required)
    assert 0.0 <= value <= LN2 + 1e-12


@given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
def test_scarcity_factor_bounded(neighbours, extra):
    value = scarcity_factor(neighbours, neighbours + extra)
    assert 0.0 <= value <= LN2 + 1e-12


@given(
    weights_strategy,
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=15),
)
def test_normalized_demand_always_in_unit_interval(weights, slack, received, neighbours):
    calculator = DemandCalculator(weights=weights)
    inputs = TaskDemandInputs(
        round_no=1, deadline=slack, received=received, required=30,
        neighbours=neighbours,
    )
    demand = calculator.normalized_demand(inputs, max_neighbours=max(neighbours, 15))
    assert 0.0 <= demand <= 1.0


@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_level_always_in_range(count, demand):
    level = DemandLevels(count).level_of(demand)
    assert 1 <= level <= count


@given(
    st.integers(min_value=2, max_value=20),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_level_is_monotone_in_demand(count, a, b):
    levels = DemandLevels(count)
    low, high = min(a, b), max(a, b)
    assert levels.level_of(low) <= levels.level_of(high)


@given(
    st.integers(min_value=1, max_value=20),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_level_consistent_with_bounds(count, demand):
    levels = DemandLevels(count)
    level = levels.level_of(demand)
    low, high = levels.bounds(level)
    assert low - 1e-9 <= demand <= high + 1e-9


@given(
    st.floats(min_value=10.0, max_value=10_000.0),
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=2.0),
    st.integers(min_value=1, max_value=10),
)
def test_eq8_holds_whenever_eq9_is_feasible(budget, total, step, level_count):
    """Eq. 9's r0 always satisfies Eq. 8 when it is positive at all."""
    levels = DemandLevels(level_count)
    base = budget / total - step * (level_count - 1)
    if base <= 0:
        return  # infeasible budget; constructor rejects it (tested elsewhere)
    schedule = RewardSchedule.from_budget(budget, total, step, levels)
    assert schedule.respects_budget(budget, total)
    assert schedule.worst_case_payout(total) <= budget + 1e-6


saaty_values = st.sampled_from(
    [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0,
     1 / 2, 1 / 3, 1 / 4, 1 / 5, 1 / 6, 1 / 7, 1 / 8, 1 / 9]
)
reciprocal_matrices = st.tuples(saaty_values, saaty_values, saaty_values).map(
    lambda upper: PairwiseComparisonMatrix.from_upper_triangle(list(upper))
)


@given(reciprocal_matrices)
def test_ahp_weights_valid_for_any_reciprocal_matrix(matrix):
    """Both weight methods: non-negative, sum to 1, order preserved."""
    for method in ("column-normalization", "eigenvector"):
        weights = matrix.weights(method)
        assert (weights >= -1e-12).all()
        assert abs(float(weights.sum()) - 1.0) < 1e-9


@given(reciprocal_matrices)
def test_ahp_consistency_metrics_defined(matrix):
    """lambda_max >= n and CI/CR are finite and non-negative."""
    assert matrix.principal_eigenvalue() >= matrix.order - 1e-9
    assert matrix.consistency_index() >= -1e-9
    assert matrix.consistency_ratio() >= -1e-9


@given(
    weights_strategy,
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=12),   # deadline slack
            st.integers(min_value=0, max_value=20),   # received
            st.integers(min_value=0, max_value=25),   # neighbours
        ),
        min_size=1,
        max_size=10,
    ),
)
def test_population_demands_all_bounded(weights, raw_tasks):
    calculator = DemandCalculator(weights=weights)
    inputs = [
        TaskDemandInputs(
            round_no=1, deadline=slack, received=received, required=20,
            neighbours=neighbours,
        )
        for slack, received, neighbours in raw_tasks
    ]
    demands = calculator.demands(inputs)
    assert len(demands) == len(inputs)
    assert all(0.0 <= d <= 1.0 for d in demands)
