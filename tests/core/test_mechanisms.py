"""Unit tests for the four incentive mechanisms and their shared contract."""

import numpy as np
import pytest

from repro.core.demand import DemandWeights
from repro.core.mechanisms import (
    FixedMechanism,
    OnDemandMechanism,
    ProportionalDemandMechanism,
    RoundView,
    SteeredMechanism,
    make_mechanism,
)
from repro.core.mechanisms.factory import MECHANISM_NAMES
from repro.world.generator import World
from tests.conftest import make_task, make_user


@pytest.fixture
def world(region):
    tasks = [
        make_task(0, 100.0, 100.0, deadline=4, required=5),
        make_task(1, 900.0, 900.0, deadline=12, required=5),
        make_task(2, 500.0, 500.0, deadline=8, required=5),
    ]
    users = [make_user(i, 120.0 + 10 * i, 120.0) for i in range(4)]
    return World(region=region, tasks=tasks, users=users)


def view_of(world, round_no=1):
    return RoundView(
        round_no=round_no,
        active_tasks=[t for t in world.tasks if t.is_active],
        user_locations=[u.location for u in world.users],
    )


def init(mechanism, world, seed=0):
    mechanism.initialize(world, np.random.Generator(np.random.PCG64(seed)))
    return mechanism


class TestRoundView:
    def test_round_validated(self, world):
        with pytest.raises(ValueError, match="round_no"):
            RoundView(round_no=0, active_tasks=[], user_locations=[])


class TestOnDemand:
    def test_prices_every_active_task(self, world):
        mechanism = init(OnDemandMechanism(budget=100.0), world)
        prices = mechanism.rewards(view_of(world))
        assert set(prices) == {0, 1, 2}

    def test_prices_on_the_eq7_ladder(self, world):
        mechanism = init(OnDemandMechanism(budget=100.0, step=0.5), world)
        schedule = mechanism.schedule
        ladder = {schedule.reward_for_level(level) for level in range(1, 6)}
        prices = mechanism.rewards(view_of(world))
        assert all(any(abs(p - r) < 1e-9 for r in ladder) for p in prices.values())

    def test_remote_task_priced_above_crowded_task(self, world):
        """All users sit next to task 0; task 1 is far: scarcity + nothing
        else differing much should put task 1's price >= task 0's."""
        mechanism = init(OnDemandMechanism(budget=100.0, neighbour_radius=200.0), world)
        prices = mechanism.rewards(view_of(world, round_no=1))
        assert prices[1] >= prices[0]

    def test_approaching_deadline_raises_price(self, world):
        mechanism = init(OnDemandMechanism(budget=100.0), world)
        early = mechanism.rewards(view_of(world, round_no=1))
        late = mechanism.rewards(view_of(world, round_no=4))
        # Task 0's deadline is round 4: demand can only have grown.
        assert late[0] >= early[0]

    def test_progress_lowers_demand(self, world):
        mechanism = init(OnDemandMechanism(budget=100.0), world)
        before = mechanism.rewards(view_of(world))
        demand_before = mechanism.last_demands[2]
        for user_id in range(4):
            world.tasks[2].record_measurement(user_id, round_no=1)
        mechanism.rewards(view_of(world, round_no=2))
        demand_after = mechanism.last_demands[2]
        assert demand_after < demand_before

    def test_requires_initialize(self, world):
        mechanism = OnDemandMechanism(budget=100.0)
        with pytest.raises(RuntimeError, match="initialize"):
            mechanism.rewards(view_of(world))

    def test_empty_round_gives_empty_prices(self, world):
        mechanism = init(OnDemandMechanism(budget=100.0), world)
        empty = RoundView(round_no=1, active_tasks=[], user_locations=[])
        assert mechanism.rewards(empty) == {}

    def test_weights_and_matrix_mutually_exclusive(self):
        from repro.core.ahp import example_comparison_matrix

        with pytest.raises(ValueError, match="not both"):
            OnDemandMechanism(
                weights=DemandWeights(0.5, 0.3, 0.2),
                comparison_matrix=example_comparison_matrix(),
            )

    def test_bad_radius(self):
        with pytest.raises(ValueError, match="neighbour_radius"):
            OnDemandMechanism(neighbour_radius=0.0)

    def test_budget_too_small_fails_at_initialize(self, world):
        mechanism = OnDemandMechanism(budget=1.0)
        with pytest.raises(ValueError, match="r0 must be positive"):
            init(mechanism, world)


class TestFixed:
    def test_prices_frozen_across_rounds(self, world):
        mechanism = init(FixedMechanism(budget=100.0), world)
        first = mechanism.rewards(view_of(world, round_no=1))
        world.tasks[0].record_measurement(0, round_no=1)
        second = mechanism.rewards(view_of(world, round_no=5))
        assert first == second

    def test_prices_on_ladder(self, world):
        mechanism = init(FixedMechanism(budget=100.0, step=0.5), world)
        schedule = mechanism.schedule
        ladder = {schedule.reward_for_level(level) for level in range(1, 6)}
        prices = mechanism.rewards(view_of(world))
        assert all(any(abs(p - r) < 1e-9 for r in ladder) for p in prices.values())

    def test_levels_depend_on_seed(self, region):
        tasks = [make_task(i, 100.0 * (i + 1), 100.0, required=5) for i in range(8)]
        users = [make_user(0, 50.0, 50.0)]
        world = World(region=region, tasks=tasks, users=users)
        a = init(FixedMechanism(budget=200.0), world, seed=1).rewards(view_of(world))
        b = init(FixedMechanism(budget=200.0), world, seed=2).rewards(view_of(world))
        assert a != b

    def test_requires_initialize(self, world):
        with pytest.raises(RuntimeError, match="initialize"):
            FixedMechanism().rewards(view_of(world))


class TestSteered:
    def test_eq13_decreasing_in_measurements(self):
        mechanism = SteeredMechanism()
        rewards = [mechanism.reward_for(x) for x in range(20)]
        assert all(a > b for a, b in zip(rewards, rewards[1:]))

    def test_floor_is_base_reward(self):
        mechanism = SteeredMechanism(base_reward=0.5)
        assert mechanism.reward_for(500) == pytest.approx(0.5, abs=1e-6)

    def test_scaled_defaults_range(self):
        """DESIGN.md §3: scaled variant prices in (0.5, 2.31]."""
        mechanism = SteeredMechanism()
        top = mechanism.reward_for(0)
        assert 2.2 < top < 2.4
        assert mechanism.reward_for(100) > 0.5

    def test_paper_scale_constants(self):
        mechanism = SteeredMechanism.paper_scale()
        assert mechanism.base_reward == 5.0
        assert mechanism.quality_weight == 100.0
        top = mechanism.reward_for(0)
        assert 5.0 < top <= 25.0

    def test_quality_model_saturates(self):
        mechanism = SteeredMechanism()
        assert mechanism.quality(0) == 0.0
        assert mechanism.quality(1000) == pytest.approx(1.0)
        assert mechanism.quality_improvement(0) > mechanism.quality_improvement(5)

    def test_prices_follow_task_progress(self, world):
        mechanism = init(SteeredMechanism(), world)
        before = mechanism.rewards(view_of(world))
        world.tasks[0].record_measurement(0, round_no=1)
        world.tasks[0].record_measurement(1, round_no=1)
        after = mechanism.rewards(view_of(world, round_no=2))
        assert after[0] < before[0]
        assert after[1] == pytest.approx(before[1])

    def test_validation(self):
        with pytest.raises(ValueError, match="base_reward"):
            SteeredMechanism(base_reward=0.0)
        with pytest.raises(ValueError, match="decay"):
            SteeredMechanism(decay=0.0)
        with pytest.raises(ValueError, match="measurements"):
            SteeredMechanism().quality(-1)


class TestProportional:
    def test_prices_in_schedule_range(self, world):
        mechanism = init(ProportionalDemandMechanism(budget=100.0), world)
        prices = mechanism.rewards(view_of(world))
        schedule = mechanism.schedule
        for price in prices.values():
            assert schedule.base_reward - 1e-9 <= price <= schedule.max_reward + 1e-9

    def test_prices_continuous_not_on_ladder(self, world):
        """Unlike on-demand, proportional prices need not hit ladder rungs."""
        mechanism = init(ProportionalDemandMechanism(budget=100.0), world)
        prices = mechanism.rewards(view_of(world))
        schedule = mechanism.schedule
        ladder = [schedule.reward_for_level(level) for level in range(1, 6)]
        off_ladder = [
            p for p in prices.values()
            if all(abs(p - r) > 1e-6 for r in ladder)
        ]
        assert off_ladder  # at least one strictly between rungs

    def test_requires_initialize(self, world):
        with pytest.raises(RuntimeError, match="initialize"):
            ProportionalDemandMechanism().rewards(view_of(world))


class TestFactory:
    def test_all_registered_names_build(self):
        for name in MECHANISM_NAMES:
            assert make_mechanism(name).name == name

    def test_kwargs_forwarded(self):
        mechanism = make_mechanism("steered", decay=0.4)
        assert mechanism.decay == 0.4

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="on-demand"):
            make_mechanism("generous")


class TestContractValidation:
    def test_price_map_must_cover_exactly_active_tasks(self, world):
        """The base-class validator rejects missing/extra task ids."""
        mechanism = init(FixedMechanism(budget=100.0), world)
        view = view_of(world)
        # Sabotage the cached prices to drop a task.
        del mechanism._prices[0]
        with pytest.raises(KeyError):
            mechanism.rewards(view)
