"""Unit tests for repro.core.rewards — Eq. 7–9 with the paper's constants."""

import pytest

from repro.core.levels import DemandLevels
from repro.core.rewards import RewardSchedule


class TestPaperConstants:
    """B = 1000, 20 tasks x 20 measurements, lambda = 0.5, N = 5 -> r0 = 0.5."""

    @pytest.fixture
    def schedule(self):
        return RewardSchedule.from_budget(
            budget=1000.0, total_required_measurements=400, step=0.5
        )

    def test_eq9_base_reward(self, schedule):
        assert schedule.base_reward == pytest.approx(0.5)

    def test_eq7_reward_ladder(self, schedule):
        assert [schedule.reward_for_level(level) for level in range(1, 6)] == pytest.approx(
            [0.5, 1.0, 1.5, 2.0, 2.5]
        )

    def test_max_reward(self, schedule):
        assert schedule.max_reward == pytest.approx(2.5)

    def test_eq8_budget_tightness(self, schedule):
        """With Eq. 9's r0 the worst case exactly exhausts the budget."""
        assert schedule.worst_case_payout(400) == pytest.approx(1000.0)
        assert schedule.respects_budget(1000.0, 400)
        assert not schedule.respects_budget(999.0, 400)

    def test_reward_for_demand_goes_through_levels(self, schedule):
        assert schedule.reward_for_demand(0.0) == pytest.approx(0.5)
        assert schedule.reward_for_demand(0.3) == pytest.approx(1.0)
        assert schedule.reward_for_demand(1.0) == pytest.approx(2.5)

    def test_vector_form(self, schedule):
        assert schedule.rewards_for_demands([0.0, 1.0]) == pytest.approx([0.5, 2.5])


class TestValidation:
    def test_budget_too_small_raises(self):
        # r0 = 100/400 - 2 < 0: the budget cannot pay top-level rewards.
        with pytest.raises(ValueError, match="r0 must be positive"):
            RewardSchedule.from_budget(
                budget=100.0, total_required_measurements=400, step=0.5
            )

    def test_non_positive_budget(self):
        with pytest.raises(ValueError, match="budget"):
            RewardSchedule.from_budget(budget=0.0, total_required_measurements=10)

    def test_bad_measurement_total(self):
        with pytest.raises(ValueError, match="total_required_measurements"):
            RewardSchedule.from_budget(budget=10.0, total_required_measurements=0)

    def test_negative_step(self):
        with pytest.raises(ValueError, match="lambda"):
            RewardSchedule(base_reward=1.0, step=-0.5, levels=DemandLevels(5))

    def test_level_out_of_range(self):
        schedule = RewardSchedule(base_reward=1.0, step=0.5, levels=DemandLevels(3))
        with pytest.raises(ValueError, match="level"):
            schedule.reward_for_level(0)
        with pytest.raises(ValueError, match="level"):
            schedule.reward_for_level(4)

    def test_negative_worst_case_input(self):
        schedule = RewardSchedule(base_reward=1.0, step=0.5, levels=DemandLevels(3))
        with pytest.raises(ValueError, match="non-negative"):
            schedule.worst_case_payout(-1)


class TestGeneralSchedules:
    def test_zero_step_flattens_rewards(self):
        schedule = RewardSchedule(base_reward=2.0, step=0.0, levels=DemandLevels(5))
        assert schedule.reward_for_level(1) == schedule.reward_for_level(5) == 2.0

    def test_reward_monotone_in_level(self):
        schedule = RewardSchedule(base_reward=1.0, step=0.25, levels=DemandLevels(8))
        rewards = [schedule.reward_for_level(level) for level in range(1, 9)]
        assert all(a < b for a, b in zip(rewards, rewards[1:]))

    def test_single_level_schedule(self):
        schedule = RewardSchedule.from_budget(
            budget=100.0, total_required_measurements=50, step=0.5,
            levels=DemandLevels(1),
        )
        assert schedule.base_reward == pytest.approx(2.0)
        assert schedule.max_reward == pytest.approx(2.0)
