"""Property-based tests on the mechanism contract (hypothesis).

Random task states and user clouds; for every mechanism the returned
price map must cover exactly the active tasks, stay positive/finite, and
(for ladder-based mechanisms) land on the Eq. 7 ladder within range.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mechanisms import (
    FixedMechanism,
    OnDemandMechanism,
    ProportionalDemandMechanism,
    RoundView,
    SteeredMechanism,
)
from repro.geometry.point import Point
from repro.geometry.region import RectRegion
from repro.world.generator import World
from repro.world.task import SensingTask
from repro.world.user import MobileUser

REGION = RectRegion.square(1000.0)

coordinates = st.floats(min_value=0.0, max_value=1000.0)

task_states = st.lists(
    st.tuples(
        coordinates, coordinates,
        st.integers(min_value=1, max_value=12),   # deadline
        st.integers(min_value=1, max_value=10),   # required
        st.integers(min_value=0, max_value=10),   # received (capped below)
    ),
    min_size=1,
    max_size=8,
)

user_clouds = st.lists(
    st.tuples(coordinates, coordinates), min_size=0, max_size=15
)

rounds = st.integers(min_value=1, max_value=12)


def build_world(raw_tasks, raw_users):
    tasks = []
    for i, (x, y, deadline, required, received) in enumerate(raw_tasks):
        task = SensingTask(
            task_id=i, location=Point(x, y), deadline=deadline,
            required_measurements=required,
        )
        # Mark partial progress without completing the task.
        for user_id in range(min(received, required - 1)):
            task.record_measurement(1000 + user_id, round_no=1)
        tasks.append(task)
    users = [
        MobileUser(user_id=i, location=Point(x, y), speed=2.0,
                   cost_per_meter=0.002, time_budget=900.0)
        for i, (x, y) in enumerate(raw_users)
    ]
    if not users:
        users = [MobileUser(user_id=0, location=Point(0.0, 0.0), speed=2.0,
                            cost_per_meter=0.002, time_budget=900.0)]
    return World(region=REGION, tasks=tasks, users=users)


def view_for(world, round_no):
    active = [t for t in world.tasks if t.is_active and round_no <= t.deadline]
    return RoundView(
        round_no=round_no,
        active_tasks=active,
        user_locations=[u.location for u in world.users],
    ), active


def mechanisms_for(world):
    budget = 10.0 * sum(t.required_measurements for t in world.tasks)
    return [
        OnDemandMechanism(budget=budget),
        FixedMechanism(budget=budget),
        SteeredMechanism(),
        ProportionalDemandMechanism(budget=budget),
    ]


@settings(max_examples=40, deadline=None)
@given(task_states, user_clouds, rounds)
def test_price_maps_cover_exactly_active_tasks(raw_tasks, raw_users, round_no):
    world = build_world(raw_tasks, raw_users)
    view, active = view_for(world, round_no)
    for mechanism in mechanisms_for(world):
        mechanism.initialize(world, np.random.Generator(np.random.PCG64(0)))
        prices = mechanism.rewards(view)
        assert set(prices) == {t.task_id for t in active}
        for price in prices.values():
            assert np.isfinite(price)
            assert price > 0.0


@settings(max_examples=40, deadline=None)
@given(task_states, user_clouds, rounds)
def test_ladder_mechanisms_price_on_the_ladder(raw_tasks, raw_users, round_no):
    world = build_world(raw_tasks, raw_users)
    view, active = view_for(world, round_no)
    if not active:
        return
    budget = 10.0 * sum(t.required_measurements for t in world.tasks)
    for mechanism in (OnDemandMechanism(budget=budget), FixedMechanism(budget=budget)):
        mechanism.initialize(world, np.random.Generator(np.random.PCG64(1)))
        prices = mechanism.rewards(view)
        schedule = mechanism.schedule
        ladder = [schedule.reward_for_level(level) for level in range(1, 6)]
        for price in prices.values():
            assert any(abs(price - rung) < 1e-9 for rung in ladder)


@settings(max_examples=40, deadline=None)
@given(task_states, user_clouds, rounds)
def test_proportional_prices_within_ladder_range(raw_tasks, raw_users, round_no):
    world = build_world(raw_tasks, raw_users)
    view, active = view_for(world, round_no)
    if not active:
        return
    budget = 10.0 * sum(t.required_measurements for t in world.tasks)
    mechanism = ProportionalDemandMechanism(budget=budget)
    mechanism.initialize(world, np.random.Generator(np.random.PCG64(2)))
    prices = mechanism.rewards(view)
    schedule = mechanism.schedule
    for price in prices.values():
        assert schedule.base_reward - 1e-9 <= price <= schedule.max_reward + 1e-9
