"""Unit tests for repro.core.levels — the Table III bucketing."""

import pytest

from repro.core.levels import DemandLevels


class TestTable3:
    """The paper's worked N = 5 example."""

    @pytest.fixture
    def levels(self):
        return DemandLevels(5)

    @pytest.mark.parametrize(
        "demand,expected",
        [
            (0.0, 1), (0.1, 1), (0.2, 1),   # [0, 0.2]
            (0.21, 2), (0.3, 2), (0.4, 2),  # (0.2, 0.4] — paper's example: 0.3 -> 2
            (0.5, 3), (0.6, 3),
            (0.7, 4), (0.8, 4),
            (0.81, 5), (1.0, 5),
        ],
    )
    def test_bucket_assignment(self, levels, demand, expected):
        assert levels.level_of(demand) == expected

    def test_boundaries_belong_to_lower_bucket(self, levels):
        """Table III buckets are (low, high]: 0.4 is level 2, not 3."""
        assert levels.level_of(0.4) == 2
        assert levels.level_of(0.4 + 1e-9) == 3

    def test_table_rendering(self, levels):
        table = levels.table()
        assert len(table) == 5
        assert table[0] == ((0.0, 0.2), 1)
        assert table[-1] == ((0.8, 1.0), 5)


class TestGeneral:
    def test_single_level(self):
        levels = DemandLevels(1)
        assert levels.level_of(0.0) == 1
        assert levels.level_of(1.0) == 1

    def test_many_levels(self):
        levels = DemandLevels(10)
        assert levels.level_of(0.05) == 1
        assert levels.level_of(0.95) == 10
        assert levels.width == pytest.approx(0.1)

    def test_levels_partition_unit_interval(self):
        levels = DemandLevels(7)
        grid = [i / 1000 for i in range(1001)]
        assigned = [levels.level_of(d) for d in grid]
        assert min(assigned) == 1
        assert max(assigned) == 7
        # Levels never decrease along the grid.
        assert all(a <= b for a, b in zip(assigned, assigned[1:]))

    def test_float_noise_on_boundaries(self):
        levels = DemandLevels(5)
        # 0.6000000000000001-style noise must not jump a bucket.
        assert levels.level_of(0.1 + 0.2 + 0.3) == 3

    def test_out_of_range_rejected(self):
        levels = DemandLevels(5)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            levels.level_of(-0.1)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            levels.level_of(1.1)

    def test_bounds_lookup(self):
        levels = DemandLevels(4)
        assert levels.bounds(2) == (0.25, 0.5)
        with pytest.raises(ValueError, match="level"):
            levels.bounds(5)
        with pytest.raises(ValueError, match="level"):
            levels.bounds(0)

    def test_vector_form(self):
        levels = DemandLevels(5)
        assert levels.levels_of([0.0, 0.3, 0.9]) == [1, 2, 5]

    def test_invalid_count(self):
        with pytest.raises(ValueError, match="count"):
            DemandLevels(0)
