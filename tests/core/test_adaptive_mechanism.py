"""Tests for the budget-recycling adaptive mechanism (extension)."""

import numpy as np
import pytest

from repro.core.mechanisms import AdaptiveBudgetMechanism, OnDemandMechanism, RoundView
from repro.geometry.region import RectRegion
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate
from repro.world.generator import World
from repro.world.task import TaskStatus
from tests.conftest import make_task, make_user


@pytest.fixture
def world():
    region = RectRegion.square(1000.0)
    tasks = [
        make_task(0, 200.0, 200.0, deadline=6, required=4),
        make_task(1, 800.0, 800.0, deadline=10, required=4),
    ]
    users = [make_user(i, 250.0 + 20 * i, 250.0) for i in range(3)]
    return World(region=region, tasks=tasks, users=users)


def init(mechanism, world, seed=0):
    mechanism.initialize(world, np.random.Generator(np.random.PCG64(seed)))
    return mechanism


def view_of(world, round_no):
    return RoundView(
        round_no=round_no,
        active_tasks=[t for t in world.tasks if t.is_active],
        user_locations=[u.location for u in world.users],
    )


class TestPricing:
    def test_round_one_matches_static_on_demand(self, world):
        """With nothing spent, adaptive re-derivation reproduces Eq. 9."""
        adaptive = init(AdaptiveBudgetMechanism(budget=20.0), world)
        static = init(OnDemandMechanism(budget=20.0), world)
        assert adaptive.rewards(view_of(world, 1)) == static.rewards(view_of(world, 1))

    def test_prices_never_below_static(self, world):
        adaptive = init(AdaptiveBudgetMechanism(budget=20.0), world)
        static_base = adaptive.schedule.base_reward
        adaptive.rewards(view_of(world, 1))
        # Burn some task progress, then reprice repeatedly.
        world.tasks[0].record_measurement(0, round_no=1)
        for round_no in range(2, 6):
            prices = adaptive.rewards(view_of(world, round_no))
            assert all(p >= static_base - 1e-9 for p in prices.values())

    def test_expired_work_recycles_into_higher_prices(self, world):
        """Expiring a task frees its worst-case reserve for the survivor."""
        adaptive = init(AdaptiveBudgetMechanism(budget=20.0), world)
        before = adaptive.rewards(view_of(world, 1))[1]
        world.tasks[0].status = TaskStatus.EXPIRED
        adaptive.rewards(view_of(world, 2))
        # Base reward rose: half the work vanished, no money spent.
        assert adaptive.schedule.base_reward > 20.0 / 8.0 - 2.0  # sanity
        after = adaptive.rewards(view_of(world, 3))[1]
        assert after >= before

    def test_settlement_counts_completed_tasks(self, world):
        """Measurements on a task that completes must still be charged."""
        adaptive = init(AdaptiveBudgetMechanism(budget=20.0), world)
        prices = adaptive.rewards(view_of(world, 1))
        for user_id in range(4):
            world.tasks[0].record_measurement(user_id, round_no=1)
        assert not world.tasks[0].is_active  # completed -> leaves the view
        adaptive.rewards(view_of(world, 2))
        assert adaptive.committed_spend == pytest.approx(4 * prices[0])


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def config(self):
        return SimulationConfig(
            n_users=25, n_tasks=8, rounds=10, required_measurements=4,
            area_side=2000.0, budget=200.0, mechanism="adaptive", seed=3,
        )

    def test_budget_never_exceeded(self, config):
        """The recycling must preserve the Eq. 8 guarantee."""
        for seed in range(8):
            result = simulate(config.with_overrides(seed=seed))
            assert result.total_paid <= config.budget + 1e-9

    def test_runs_and_collects(self, config):
        result = simulate(config)
        assert result.total_measurements > 0

    def test_spends_at_least_as_much_as_static(self, config):
        """Recycling exists to spend the slack: payouts should not shrink."""
        paid_adaptive = []
        paid_static = []
        for seed in range(5):
            paid_adaptive.append(
                simulate(config.with_overrides(seed=seed)).total_paid
            )
            paid_static.append(
                simulate(config.with_overrides(seed=seed, mechanism="on-demand")).total_paid
            )
        assert np.mean(paid_adaptive) >= np.mean(paid_static) - 1e-9

    def test_registered_in_factory(self):
        from repro.core.mechanisms import make_mechanism

        assert make_mechanism("adaptive").name == "adaptive"
