"""Incentive actions and MECHANISMS["policy"]: the learned-pricing seam.

``apply_incentive_action`` must validate and clamp against the Eq. 9
budget-feasibility invariant; ``PolicyMechanism`` must be a first-class
registry citizen (JSON kwargs, engine parity, static == on-demand).
"""

import numpy as np
import pytest

from repro.core.mechanisms import (
    MECHANISMS,
    OnDemandMechanism,
    PolicyMechanism,
    apply_incentive_action,
)
from repro.core.mechanisms.policy import (
    ACTION_KEYS,
    MIN_BASE_FRACTION,
    POLICIES,
    PolicyContext,
    resolve_policy,
)
from repro.simulation import SimulationConfig, result_fingerprint, simulate

SMALL = dict(n_users=25, n_tasks=6, rounds=4, seed=0)


def small_world(config):
    return config.world_generator().uniform(np.random.default_rng(0))


def live_mechanism(**kwargs):
    """An initialized OnDemandMechanism with a real schedule/calculator."""
    config = SimulationConfig(**SMALL)
    mechanism = OnDemandMechanism(budget=config.budget, **kwargs)
    mechanism.initialize(small_world(config), np.random.default_rng(0))
    return mechanism


def ladder_unit(schedule):
    """Eq. 9's per-measurement budget share for a schedule."""
    return schedule.base_reward + schedule.step * (schedule.levels.count - 1)


class TestApplyIncentiveAction:
    def test_none_and_empty_are_noops(self):
        mechanism = live_mechanism()
        before = mechanism.schedule
        assert apply_incentive_action(mechanism, None) == {}
        assert apply_incentive_action(mechanism, {}) == {}
        assert mechanism.schedule is before

    def test_weights_normalise_to_simplex(self):
        mechanism = live_mechanism()
        applied = apply_incentive_action(mechanism, {"weights": [2, 1, 1]})
        assert applied["weights"] == pytest.approx((0.5, 0.25, 0.25))
        assert mechanism.weights.deadline == pytest.approx(0.5)
        assert mechanism.calculator.weights is mechanism.weights

    def test_weights_negative_components_clamp_to_zero(self):
        mechanism = live_mechanism()
        applied = apply_incentive_action(mechanism, {"weights": [-1, 1, 1]})
        assert applied["weights"] == pytest.approx((0.0, 0.5, 0.5))

    def test_weights_wrong_arity_rejected(self):
        mechanism = live_mechanism()
        with pytest.raises(ValueError, match="3 values"):
            apply_incentive_action(mechanism, {"weights": [1.0, 2.0]})

    def test_weights_all_zero_rejected(self):
        mechanism = live_mechanism()
        with pytest.raises(ValueError, match="positive sum"):
            apply_incentive_action(mechanism, {"weights": [0, 0, -3]})

    def test_unknown_key_rejected(self):
        mechanism = live_mechanism()
        with pytest.raises(ValueError, match="lambda"):
            apply_incentive_action(mechanism, {"lambda": 1.0})

    def test_non_mapping_rejected(self):
        mechanism = live_mechanism()
        with pytest.raises(TypeError, match="mapping"):
            apply_incentive_action(mechanism, [0.5, 0.5, 0.0])

    def test_uninitialized_mechanism_rejected(self):
        mechanism = OnDemandMechanism()
        with pytest.raises(ValueError, match="not initialized"):
            apply_incentive_action(mechanism, {"reward_step": 1.0})

    def test_mechanism_without_knobs_rejected(self):
        from repro.core.mechanisms import FixedMechanism

        with pytest.raises(ValueError, match="demand"):
            apply_incentive_action(FixedMechanism(), {"reward_step": 1.0})

    def test_reward_step_rebuild_preserves_eq9_unit(self):
        mechanism = live_mechanism()
        unit_before = ladder_unit(mechanism.schedule)
        apply_incentive_action(mechanism, {"reward_step": 0.8})
        assert mechanism.schedule.step == pytest.approx(0.8)
        assert ladder_unit(mechanism.schedule) == pytest.approx(unit_before)
        assert mechanism.schedule.base_reward > 0

    def test_huge_reward_step_collapses_ladder_not_budget(self):
        """A step larger than the whole Eq. 9 unit cannot fit even two
        levels: the clamp flattens the ladder to one level rather than
        overdraw the budget or reject the action."""
        mechanism = live_mechanism()
        unit = ladder_unit(mechanism.schedule)
        apply_incentive_action(mechanism, {"reward_step": 10 * unit})
        assert mechanism.schedule.levels.count == 1
        assert mechanism.schedule.base_reward >= unit * MIN_BASE_FRACTION * 0.99
        assert ladder_unit(mechanism.schedule) == pytest.approx(unit)

    def test_nonpositive_reward_step_rejected(self):
        mechanism = live_mechanism()
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError, match="positive finite"):
                apply_incentive_action(mechanism, {"reward_step": bad})

    def test_level_count_clamped_to_budget_feasible(self):
        mechanism = live_mechanism()
        unit = ladder_unit(mechanism.schedule)
        applied = apply_incentive_action(mechanism, {"level_count": 10_000})
        count = applied["level_count"]
        assert 1 <= count < 10_000
        assert mechanism.schedule.levels.count == count
        assert ladder_unit(mechanism.schedule) == pytest.approx(unit)

    def test_level_count_one_flattens_the_ladder(self):
        mechanism = live_mechanism()
        unit = ladder_unit(mechanism.schedule)
        apply_incentive_action(mechanism, {"level_count": 1})
        assert mechanism.schedule.levels.count == 1
        assert mechanism.schedule.base_reward == pytest.approx(unit)

    def test_partially_invalid_action_mutates_nothing(self):
        """Validation is atomic: {"weights": ok, "reward_step": bad}
        must raise with the mechanism untouched — session.step documents
        ValueError as 'nothing is stepped', so a half-applied action
        would desync the engine's price cache."""
        mechanism = live_mechanism()
        weights_before = mechanism.weights
        calculator_before = mechanism.calculator
        schedule_before = mechanism.schedule
        with pytest.raises(ValueError, match="positive finite"):
            apply_incentive_action(
                mechanism, {"weights": [2, 1, 1], "reward_step": -1.0}
            )
        assert mechanism.weights is weights_before
        assert mechanism.calculator is calculator_before
        assert mechanism.schedule is schedule_before

    def test_action_target_indirection(self):
        """Actions on a PolicyMechanism land on the wrapped inner."""
        config = SimulationConfig(**SMALL)
        mechanism = PolicyMechanism(budget=config.budget)
        mechanism.initialize(small_world(config), np.random.default_rng(0))
        apply_incentive_action(mechanism, {"reward_step": 0.8})
        assert mechanism.inner.schedule.step == pytest.approx(0.8)


class TestPolicyRegistry:
    def test_policy_registered_as_mechanism(self):
        assert "policy" in MECHANISMS.available()
        assert MECHANISMS.get("policy") is PolicyMechanism

    def test_named_policies_available(self):
        for name in ("static", "fixed-weights", "step-decay"):
            assert name in POLICIES.available()

    def test_resolve_policy_str(self):
        policy = resolve_policy("static")
        assert policy(None) is None

    def test_resolve_policy_mapping_with_kwargs(self):
        policy = resolve_policy({"name": "step-decay", "decay": 0.5,
                                 "floor": 0.2})
        assert (policy.decay, policy.floor) == (0.5, 0.2)

    def test_resolve_policy_mapping_without_name_rejected(self):
        with pytest.raises(ValueError, match="'name' key"):
            resolve_policy({"decay": 0.5})

    def test_resolve_policy_callable_passthrough(self):
        fn = lambda context: None  # noqa: E731
        assert resolve_policy(fn) is fn

    def test_resolve_policy_garbage_rejected(self):
        with pytest.raises(TypeError, match="callable"):
            resolve_policy(42)

    def test_fixed_weights_normalised_at_construction(self):
        """Raw kwargs like (2, 1, 1) are normalised up front so the
        no-op short-circuit against the mechanism's (normalised)
        context.weights can actually fire."""
        policy = resolve_policy(
            {"name": "fixed-weights", "deadline": 2, "progress": 1,
             "scarcity": 1}
        )
        assert policy.weights == pytest.approx((0.5, 0.25, 0.25))
        context = PolicyContext(
            round_no=2, active_tasks=3, budget=100.0, base_reward=1.0,
            step=0.5, level_count=5, weights=policy.weights,
            last_demands={},
        )
        assert policy(context) is None

    def test_step_decay_validates_kwargs(self):
        with pytest.raises(ValueError, match="decay"):
            resolve_policy({"name": "step-decay", "decay": 1.5})
        with pytest.raises(ValueError, match="floor"):
            resolve_policy({"name": "step-decay", "floor": 0.0})


class TestPolicyMechanismRuns:
    def test_static_policy_is_bit_identical_to_on_demand(self):
        baseline = simulate(SimulationConfig(**SMALL))
        policy = simulate(SimulationConfig(mechanism="policy", **SMALL))
        assert result_fingerprint(policy) == result_fingerprint(baseline)

    def test_static_identity_holds_on_batched_engine(self):
        config = dict(SMALL, engine="batched")
        baseline = simulate(SimulationConfig(**config))
        policy = simulate(SimulationConfig(mechanism="policy", **config))
        assert result_fingerprint(policy) == result_fingerprint(baseline)

    def test_json_kwargs_policy_via_config(self):
        """The job-submission path: policy spec as plain JSON kwargs."""
        result = simulate(SimulationConfig(
            mechanism="policy",
            mechanism_kwargs={
                "policy": {"name": "step-decay", "decay": 0.8, "floor": 0.1},
            },
            **SMALL,
        ))
        assert result.rounds_played >= 1
        assert result.total_paid > 0

    def test_step_decay_scalar_equals_batched(self):
        """Engine parity must survive a round-varying policy."""
        kwargs = dict(
            mechanism="policy",
            mechanism_kwargs={"policy": {"name": "step-decay"}},
            **SMALL,
        )
        scalar = simulate(SimulationConfig(engine="scalar", **kwargs))
        batched = simulate(SimulationConfig(engine="batched", **kwargs))
        assert result_fingerprint(scalar) == result_fingerprint(batched)

    def test_fixed_weights_policy_changes_pricing(self):
        baseline = simulate(SimulationConfig(**SMALL))
        steered = simulate(SimulationConfig(
            mechanism="policy",
            mechanism_kwargs={
                "policy": {"name": "fixed-weights", "deadline": 0.1,
                           "progress": 0.1, "scarcity": 0.8},
            },
            **SMALL,
        ))
        assert result_fingerprint(steered) != result_fingerprint(baseline)

    def test_callable_policy_sees_context(self):
        seen = []

        def spy(context):
            assert isinstance(context, PolicyContext)
            seen.append(context.round_no)
            return None

        result = simulate(SimulationConfig(
            mechanism="policy", mechanism_kwargs={"policy": spy}, **SMALL,
        ))
        assert seen[0] == 1
        assert len(seen) == result.rounds_played

    def test_policy_consulted_at_most_once_per_round(self):
        """Repricing the same round (session.observe() caches a price
        map, session.step(action) invalidates and reprices) must not
        re-run the policy — a stateful policy acting twice would make
        the trajectory depend on whether observe() was called."""
        from repro.core.mechanisms.base import RoundView

        seen = []

        def spy(context):
            seen.append(context.round_no)
            return None

        config = SimulationConfig(**SMALL)
        mechanism = PolicyMechanism(policy=spy, budget=config.budget)
        world = small_world(config)
        mechanism.initialize(world, np.random.default_rng(0))
        view = RoundView(
            round_no=1,
            active_tasks=world.tasks,
            user_locations=[u.location for u in world.users],
        )
        first = mechanism.rewards(view)
        second = mechanism.rewards(view)  # same round: repricing only
        assert seen == [1]
        assert first == second
        view2 = RoundView(
            round_no=2,
            active_tasks=world.tasks,
            user_locations=[u.location for u in world.users],
        )
        mechanism.rewards(view2)
        assert seen == [1, 2]

    def test_action_keys_are_stable(self):
        """The env adapters and docs enumerate these exact knobs."""
        assert ACTION_KEYS == ("weights", "reward_step", "level_count")
