"""Unit tests for repro.core.ahp — pinned to the paper's Tables I/II."""

import numpy as np
import pytest

from repro.core.ahp import (
    PairwiseComparisonMatrix,
    RANDOM_CONSISTENCY_INDEX,
    example_comparison_matrix,
)


class TestValidation:
    def test_table1_matrix_is_valid(self):
        matrix = example_comparison_matrix()
        assert matrix.order == 3

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            PairwiseComparisonMatrix.from_rows([[1.0, 2.0, 3.0]])

    def test_non_reciprocal_rejected(self):
        with pytest.raises(ValueError, match="reciprocal"):
            PairwiseComparisonMatrix.from_rows([[1.0, 2.0], [2.0, 1.0]])

    def test_bad_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            PairwiseComparisonMatrix.from_rows([[2.0, 1.0], [1.0, 0.5]])

    def test_non_positive_entry_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            PairwiseComparisonMatrix.from_rows([[1.0, -3.0], [-1.0 / 3.0, 1.0]])

    def test_saaty_scale_enforced(self):
        with pytest.raises(ValueError, match="Saaty"):
            PairwiseComparisonMatrix.from_rows([[1.0, 10.0], [0.1, 1.0]])

    def test_all_equal_matrix_is_valid_for_any_order(self):
        matrix = PairwiseComparisonMatrix(np.ones((4, 4)))
        assert matrix.order == 4

    def test_identity_rejected_off_diagonal_zeros(self):
        with pytest.raises(ValueError, match="positive"):
            PairwiseComparisonMatrix(np.eye(3))


class TestUpperTriangleConstructor:
    def test_three_criteria(self):
        matrix = PairwiseComparisonMatrix.from_upper_triangle([3.0, 5.0, 2.0])
        assert np.allclose(matrix.values, example_comparison_matrix().values)

    def test_two_criteria(self):
        matrix = PairwiseComparisonMatrix.from_upper_triangle([4.0])
        assert matrix.values[1, 0] == pytest.approx(0.25)

    def test_wrong_count_rejected(self):
        with pytest.raises(ValueError, match="upper triangle"):
            PairwiseComparisonMatrix.from_upper_triangle([1.0, 2.0])


class TestNormalization:
    def test_columns_sum_to_one(self):
        normalized = example_comparison_matrix().normalized()
        assert np.allclose(normalized.sum(axis=0), 1.0)

    def test_table2_values(self):
        """The paper's Table II, to its printed 3 decimals."""
        normalized = example_comparison_matrix().normalized()
        expected = np.array(
            [
                [0.652, 0.667, 0.625],
                [0.217, 0.222, 0.250],
                [0.130, 0.111, 0.125],  # paper prints 0.131; 0.2/1.533 = 0.1304
            ]
        )
        assert np.allclose(normalized, expected, atol=1.5e-3)


class TestWeights:
    def test_paper_weight_vector(self):
        """Section IV-B: W = (0.648, 0.230, 0.122)."""
        weights = example_comparison_matrix().weights()
        assert np.allclose(weights, [0.648, 0.230, 0.122], atol=1e-3)

    def test_weights_sum_to_one_both_methods(self):
        matrix = example_comparison_matrix()
        for method in ("column-normalization", "eigenvector"):
            assert matrix.weights(method).sum() == pytest.approx(1.0)

    def test_methods_agree_for_consistent_matrix(self):
        # A perfectly consistent matrix built from weights (2, 1, 0.5).
        w = np.array([2.0, 1.0, 0.5])
        matrix = PairwiseComparisonMatrix(w[:, None] / w[None, :])
        a = matrix.weights("column-normalization")
        b = matrix.weights("eigenvector")
        assert np.allclose(a, b, atol=1e-9)
        assert np.allclose(a, w / w.sum())

    def test_methods_close_for_table1(self):
        matrix = example_comparison_matrix()
        a = matrix.weights("column-normalization")
        b = matrix.weights("eigenvector")
        assert np.allclose(a, b, atol=0.01)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown weight method"):
            example_comparison_matrix().weights("averaging")

    def test_all_equal_matrix_gives_equal_weights(self):
        matrix = PairwiseComparisonMatrix(np.ones((3, 3)))
        assert np.allclose(matrix.weights(), [1 / 3] * 3)


class TestConsistency:
    def test_principal_eigenvalue_at_least_order(self):
        assert example_comparison_matrix().principal_eigenvalue() >= 3.0

    def test_consistent_matrix_has_zero_ci(self):
        w = np.array([3.0, 1.0, 0.5])
        matrix = PairwiseComparisonMatrix(w[:, None] / w[None, :])
        assert matrix.consistency_index() == pytest.approx(0.0, abs=1e-9)
        assert matrix.consistency_ratio() == pytest.approx(0.0, abs=1e-9)

    def test_table1_is_acceptably_consistent(self):
        matrix = example_comparison_matrix()
        assert matrix.consistency_ratio() < 0.01
        assert matrix.is_acceptably_consistent()

    def test_wild_matrix_is_inconsistent(self):
        # a12 = 9, a23 = 9, but a13 = 1/9: maximally incoherent.
        matrix = PairwiseComparisonMatrix.from_upper_triangle([9.0, 1.0 / 9.0, 9.0])
        assert matrix.consistency_ratio() > 0.1
        assert not matrix.is_acceptably_consistent()

    def test_order_two_always_consistent(self):
        matrix = PairwiseComparisonMatrix.from_upper_triangle([7.0])
        assert matrix.consistency_ratio() == 0.0

    def test_random_index_table_covers_usual_orders(self):
        assert set(range(1, 11)) <= set(RANDOM_CONSISTENCY_INDEX)

    def test_untabulated_order_raises(self):
        matrix = PairwiseComparisonMatrix(np.ones((11, 11)))
        with pytest.raises(ValueError, match="no random consistency index"):
            matrix.consistency_ratio()
