"""Unit tests for repro.core.demand — Eq. 2–5 behaviour."""

import math

import pytest

from repro.core.demand import (
    DemandCalculator,
    DemandWeights,
    TaskDemandInputs,
    deadline_factor,
    progress_factor,
    scarcity_factor,
    scarcity_factors,
)

LN2 = math.log(2.0)


class TestDeadlineFactor:
    def test_far_deadline_is_small(self):
        assert deadline_factor(round_no=1, deadline=100) == pytest.approx(
            math.log(1 + 1 / 100)
        )

    def test_at_deadline_reaches_ln2(self):
        assert deadline_factor(round_no=5, deadline=5) == pytest.approx(LN2)

    def test_monotone_in_round(self):
        values = [deadline_factor(k, deadline=10) for k in range(1, 11)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_growth_rate_accelerates(self):
        """Eq. 3 commentary: growth rate increases approaching the deadline."""
        values = [deadline_factor(k, deadline=10) for k in range(1, 11)]
        increments = [b - a for a, b in zip(values, values[1:])]
        assert all(a < b for a, b in zip(increments, increments[1:]))

    def test_scale_applies(self):
        assert deadline_factor(3, 3, scale=2.0) == pytest.approx(2.0 * LN2)

    def test_past_deadline_raises(self):
        with pytest.raises(ValueError, match="past deadline"):
            deadline_factor(round_no=6, deadline=5)

    def test_bad_round_raises(self):
        with pytest.raises(ValueError, match="round_no"):
            deadline_factor(round_no=0, deadline=5)


class TestProgressFactor:
    def test_untouched_task_maximal(self):
        assert progress_factor(0, 20) == pytest.approx(LN2)

    def test_complete_task_zero(self):
        assert progress_factor(20, 20) == pytest.approx(0.0)

    def test_monotone_decreasing(self):
        values = [progress_factor(r, 20) for r in range(21)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_reduction_rate_accelerates(self):
        """Eq. 4 commentary: reduction rate grows as progress nears 1."""
        values = [progress_factor(r, 10) for r in range(11)]
        drops = [a - b for a, b in zip(values, values[1:])]
        assert all(a < b for a, b in zip(drops, drops[1:]))

    def test_over_received_clamps(self):
        # Engine never over-fills, but the factor must stay defined.
        assert progress_factor(25, 20) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="required"):
            progress_factor(0, 0)
        with pytest.raises(ValueError, match="received"):
            progress_factor(-1, 5)


class TestScarcityFactor:
    def test_no_neighbours_maximal(self):
        assert scarcity_factor(0, 10) == pytest.approx(LN2)

    def test_best_served_task_zero(self):
        assert scarcity_factor(10, 10) == pytest.approx(0.0)

    def test_monotone_decreasing_in_neighbours(self):
        values = [scarcity_factor(n, 10) for n in range(11)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_everyone_starved_is_maximal(self):
        """N_max = 0: all tasks equally starved, factor maximal."""
        assert scarcity_factor(0, 0) == pytest.approx(LN2)

    def test_validation(self):
        with pytest.raises(ValueError, match="neighbours"):
            scarcity_factor(-1, 10)
        with pytest.raises(ValueError, match="max_neighbours"):
            scarcity_factor(5, 3)


class TestScarcityFactors:
    def test_matches_scalar_elementwise(self):
        counts = list(range(11))
        vectorized = scarcity_factors(counts, 10)
        for n, value in zip(counts, vectorized):
            # Bit-identical, not approx: both paths share _log_unique.
            assert float(value) == scarcity_factor(n, 10)

    def test_scale_matches_scalar(self):
        vectorized = scarcity_factors([0, 3, 7], 7, scale=2.5)
        for n, value in zip([0, 3, 7], vectorized):
            assert float(value) == scarcity_factor(n, 7, scale=2.5)

    def test_empty_input(self):
        assert scarcity_factors([], 10).shape == (0,)

    def test_everyone_starved_is_maximal(self):
        values = scarcity_factors([0, 0, 0], 0)
        assert values == pytest.approx([LN2, LN2, LN2])

    def test_validation(self):
        with pytest.raises(ValueError, match="neighbours"):
            scarcity_factors([2, -1], 10)
        with pytest.raises(ValueError, match="max_neighbours"):
            scarcity_factors([5], 3)


class TestDemandWeights:
    def test_from_ahp_matches_paper(self):
        weights = DemandWeights.from_ahp()
        assert weights.deadline == pytest.approx(0.648, abs=1e-3)
        assert weights.progress == pytest.approx(0.230, abs=1e-3)
        assert weights.scarcity == pytest.approx(0.122, abs=1e-3)

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DemandWeights(0.5, 0.5, 0.5)

    def test_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            DemandWeights(1.5, -0.25, -0.25)

    def test_wrong_matrix_order_rejected(self):
        from repro.core.ahp import PairwiseComparisonMatrix

        matrix = PairwiseComparisonMatrix.from_upper_triangle([2.0])
        with pytest.raises(ValueError, match="3 criteria"):
            DemandWeights.from_ahp(matrix)


class TestDemandCalculator:
    @pytest.fixture
    def calculator(self):
        return DemandCalculator(weights=DemandWeights.from_ahp())

    def test_normalized_demand_in_unit_interval(self, calculator):
        inputs = TaskDemandInputs(
            round_no=3, deadline=10, received=5, required=20, neighbours=2
        )
        demand = calculator.normalized_demand(inputs, max_neighbours=8)
        assert 0.0 <= demand <= 1.0

    def test_extreme_task_has_demand_one(self, calculator):
        """At its deadline, untouched, zero neighbours: maximal demand."""
        inputs = TaskDemandInputs(
            round_no=5, deadline=5, received=0, required=20, neighbours=0
        )
        assert calculator.normalized_demand(inputs, max_neighbours=10) == pytest.approx(1.0)

    def test_satisfied_task_has_low_demand(self, calculator):
        inputs = TaskDemandInputs(
            round_no=1, deadline=15, received=19, required=20, neighbours=10
        )
        assert calculator.normalized_demand(inputs, max_neighbours=10) < 0.15

    def test_demands_uses_population_max_neighbours(self, calculator):
        crowded = TaskDemandInputs(1, 15, 0, 20, neighbours=6)
        lonely = TaskDemandInputs(1, 15, 0, 20, neighbours=0)
        demands = calculator.demands([crowded, lonely])
        assert demands[1] > demands[0]

    def test_empty_population(self, calculator):
        assert calculator.demands([]) == []

    def test_max_demand_uses_largest_scale(self):
        calculator = DemandCalculator(
            weights=DemandWeights.from_ahp(),
            deadline_scale=1.0,
            progress_scale=3.0,
            scarcity_scale=2.0,
        )
        assert calculator.max_demand == pytest.approx(3.0 * LN2)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            DemandCalculator(weights=DemandWeights.from_ahp(), deadline_scale=0.0)

    def test_unequal_scales_keep_normalization_bounded(self):
        calculator = DemandCalculator(
            weights=DemandWeights(1 / 3, 1 / 3, 1 / 3),
            deadline_scale=0.5,
            progress_scale=2.0,
            scarcity_scale=1.0,
        )
        inputs = TaskDemandInputs(5, 5, 0, 20, neighbours=0)
        assert calculator.normalized_demand(inputs, 0) <= 1.0
