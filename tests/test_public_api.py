"""Public-API stability: what `import repro` promises.

Downstream code imports from the top-level package; this test pins that
surface so an accidental rename shows up as a failing test, not a user's
broken script.
"""

import repro


EXPECTED_EXPORTS = {
    # simulation
    "SimulationConfig", "SimulationEngine", "simulate",
    # metrics
    "MetricsSummary",
    # core
    "OnDemandMechanism", "FixedMechanism", "SteeredMechanism",
    "ProportionalDemandMechanism", "make_mechanism",
    "PairwiseComparisonMatrix", "DemandWeights", "DemandCalculator",
    "DemandLevels", "RewardSchedule",
    # selection
    "DynamicProgrammingSelector", "GreedySelector", "GreedyTwoOptSelector",
    "BruteForceSelector", "make_selector",
    # world / geometry
    "World", "WorldGenerator", "SensingTask", "MobileUser",
    "Point", "RectRegion",
    # sessions / envs / server
    "open_session", "SimulationSession", "SessionObservation",
    "round_fingerprint", "result_fingerprint",
    "make_env", "IncentiveEnv", "PolicyMechanism",
    "connect", "ServerClient",
}


def test_session_quickstart_from_readme():
    """The README's session/env quickstart must actually run."""
    from repro import SimulationConfig, open_session, result_fingerprint, simulate

    config = SimulationConfig(n_users=10, n_tasks=4, rounds=3,
                              required_measurements=2, area_side=1200.0,
                              budget=100.0, seed=7)
    with open_session(config) as session:
        while not session.finished:
            session.step()
        stepped = session.result()
    assert result_fingerprint(stepped) == result_fingerprint(simulate(config))


def test_all_expected_exports_present():
    missing = EXPECTED_EXPORTS - set(repro.__all__)
    assert not missing, f"missing from repro.__all__: {sorted(missing)}"


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_version_is_pep440ish():
    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(part.isdigit() for part in parts[:2])


def test_quickstart_snippet_from_readme():
    """The README's quickstart must actually run."""
    from repro import MetricsSummary, SimulationConfig, simulate

    result = simulate(SimulationConfig(
        n_users=10, n_tasks=4, rounds=4, required_measurements=2,
        area_side=1200.0, budget=100.0, seed=42,
    ))
    summary = MetricsSummary.from_result(result)
    assert 0.0 <= summary.coverage <= 1.0
