"""Unit tests for the SAT-mode greedy server coordinator."""

import pytest

from repro.allocation.greedy_server import GreedyServerCoordinator
from tests.conftest import make_task, make_user


def assign(tasks, users, prices, round_no=1, **kwargs):
    coordinator = GreedyServerCoordinator(**kwargs)
    return coordinator.assign(round_no, tasks, users, prices)


class TestAssignment:
    def test_nearest_user_gets_the_task(self):
        task = make_task(0, 100.0, 0.0, required=1)
        near = make_user(0, 90.0, 0.0)
        far = make_user(1, 500.0, 0.0)
        selections = assign([task], [near, far], {0: 1.0})
        assert 0 in selections
        assert selections[0].task_ids == (0,)
        assert 1 not in selections

    def test_never_over_assigns_a_task(self):
        """The SAT advantage: at most `remaining` users per task."""
        task = make_task(0, 100.0, 100.0, required=2)
        users = [make_user(i, 90.0 + i, 100.0) for i in range(6)]
        selections = assign([task], users, {0: 1.0})
        assigned = sum(1 for s in selections.values() if 0 in s.task_ids)
        assert assigned == 2

    def test_respects_prior_contributors(self):
        task = make_task(0, 100.0, 0.0, required=3)
        task.record_measurement(user_id=0, round_no=1)
        users = [make_user(0, 90.0, 0.0), make_user(1, 200.0, 0.0)]
        selections = assign([task], users, {0: 1.0}, round_no=2)
        assert 0 not in selections  # user 0 already contributed
        assert selections[1].task_ids == (0,)

    def test_respects_travel_budget(self):
        # 2 m/s * 10 s = 20 m of travel; the task is 100 m away.
        user = make_user(0, 0.0, 0.0, time_budget=10.0)
        task = make_task(0, 100.0, 0.0, required=1)
        assert assign([task], [user], {0: 5.0}) == {}

    def test_respects_rationality(self):
        # Price 0.1 < leg cost 0.2 (100 m at 0.002): user would refuse.
        user = make_user(0, 0.0, 0.0)
        task = make_task(0, 100.0, 0.0, required=1)
        assert assign([task], [user], {0: 0.1}) == {}
        assert assign([task], [user], {0: 0.5}) != {}

    def test_urgent_tasks_claim_users_first(self):
        urgent = make_task(0, 100.0, 0.0, deadline=1, required=1)
        relaxed = make_task(1, 110.0, 0.0, deadline=15, required=1)
        # One user, capped to one assignment: it must go to the urgent task.
        user = make_user(0, 0.0, 0.0)
        selections = assign(
            [relaxed, urgent], [user], {0: 1.0, 1: 1.0}, max_tasks_per_user=1
        )
        assert selections[0].task_ids == (0,)

    def test_chains_multiple_tasks_per_user(self):
        tasks = [
            make_task(0, 100.0, 0.0, deadline=2, required=1),
            make_task(1, 200.0, 0.0, deadline=2, required=1),
        ]
        user = make_user(0, 0.0, 0.0)
        selections = assign(tasks, [user], {0: 1.0, 1: 1.0})
        assert set(selections[0].task_ids) == {0, 1}
        assert selections[0].distance == pytest.approx(200.0)

    def test_per_user_cap(self):
        tasks = [make_task(i, 100.0 + i, 0.0, required=1) for i in range(5)]
        prices = {i: 1.0 for i in range(5)}
        user = make_user(0, 100.0, 0.0)
        selections = assign(tasks, [user], prices, max_tasks_per_user=2)
        assert len(selections[0].task_ids) == 2

    def test_cap_validated(self):
        with pytest.raises(ValueError, match="max_tasks_per_user"):
            GreedyServerCoordinator(max_tasks_per_user=0)

    def test_selection_accounting(self):
        task = make_task(0, 100.0, 0.0, required=1)
        user = make_user(0, 0.0, 0.0)
        selection = assign([task], [user], {0: 1.5})[0]
        assert selection.distance == pytest.approx(100.0)
        assert selection.reward == pytest.approx(1.5)
        assert selection.cost == pytest.approx(0.2)
        assert selection.profit == pytest.approx(1.3)


class TestEngineIntegration:
    def test_sat_run_has_no_rejections(self):
        """Central assignment eliminates the WST redundancy drawback."""
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine(
            SimulationConfig(
                n_users=25, n_tasks=8, rounds=8, required_measurements=4,
                area_side=2000.0, budget=300.0, seed=7,
            ),
            coordinator=GreedyServerCoordinator(),
        )
        result = engine.run()
        assert result.total_measurements > 0
        assert all(not record.rejections for record in result.rounds)

    def test_sat_respects_budget_and_caps(self):
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine(
            SimulationConfig(
                n_users=25, n_tasks=8, rounds=8, required_measurements=4,
                area_side=2000.0, budget=300.0, seed=8,
            ),
            coordinator=GreedyServerCoordinator(),
        )
        result = engine.run()
        assert result.total_paid <= 300.0 + 1e-9
        for task in result.world.tasks:
            assert task.received <= task.required_measurements
