"""The incentive-policy environment: protocol, determinism, components.

The env must import and run on the baked toolchain with NO gymnasium
installed (the shim spaces carry the protocol); with gymnasium present
it must subclass ``gymnasium.Env`` and pass ``check_env``.  Episodes are
seed-deterministic: the same seed and action script replay the same
rewards and the same result fingerprint.
"""

import numpy as np
import pytest

from repro.envs import (
    ACTION_ADAPTERS,
    HAVE_GYMNASIUM,
    OBS_BUILDERS,
    REWARD_FUNCTIONS,
    Box,
    IncentiveEnv,
    box,
)
from repro.simulation import SimulationConfig

SMALL = dict(n_users=20, n_tasks=5, rounds=4, seed=0)


def small_env(**kwargs):
    return IncentiveEnv(SimulationConfig(**SMALL), **kwargs)


def constant_rollout(env, seed, action):
    """Run one full episode; return (rewards, fingerprint)."""
    rewards = []
    env.reset(seed=seed)
    terminated = False
    while not terminated:
        _, reward, terminated, truncated, _ = env.step(action)
        assert truncated is False
        rewards.append(reward)
    return rewards, env.fingerprint()


class TestProtocol:
    def test_imports_and_runs_without_gymnasium(self):
        """The headline gate: the env needs no third-party RL package."""
        env = small_env()
        try:
            observation, info = env.reset(seed=3)
            assert observation.dtype == np.float32
            assert env.observation_space.contains(observation)
            assert info["rounds_total"] == SMALL["rounds"]
            action = env.action_space.sample()
            observation, reward, terminated, truncated, info = env.step(action)
            assert env.observation_space.contains(observation)
            assert isinstance(reward, float)
            assert truncated is False
            assert {"paid", "measurements", "applied_action"} <= set(info)
        finally:
            env.close()

    def test_step_before_reset_raises(self):
        env = small_env()
        with pytest.raises(RuntimeError, match="reset"):
            env.step(np.zeros(env.action_adapter.size))

    def test_step_after_termination_raises(self):
        env = small_env()
        try:
            env.reset(seed=0)
            terminated = False
            while not terminated:
                _, _, terminated, _, _ = env.step(env.action_space.sample())
            with pytest.raises(RuntimeError, match="finished"):
                env.step(env.action_space.sample())
        finally:
            env.close()

    def test_close_is_idempotent(self):
        env = small_env()
        env.reset(seed=0)
        env.close()
        env.close()

    def test_seed_persists_across_resets(self):
        """Gymnasium semantics: an explicit seed sticks until replaced."""
        env = small_env()
        try:
            env.reset(seed=11)
            first = env.config.seed
            env.reset()
            assert env.config.seed == first == 11
        finally:
            env.close()

    @pytest.mark.skipif(not HAVE_GYMNASIUM, reason="gymnasium not installed")
    def test_passes_gymnasium_check_env(self):  # pragma: no cover
        from gymnasium.utils.env_checker import check_env

        env = small_env()
        try:
            check_env(env, skip_render_check=True)
        finally:
            env.close()


class TestDeterminism:
    def test_same_seed_same_actions_same_episode(self):
        env = small_env()
        try:
            action = np.full(env.action_adapter.size, 0.7)
            rewards_a, fingerprint_a = constant_rollout(env, 5, action)
            rewards_b, fingerprint_b = constant_rollout(env, 5, action)
        finally:
            env.close()
        assert rewards_a == rewards_b
        assert fingerprint_a == fingerprint_b

    def test_different_seeds_diverge(self):
        env = small_env()
        try:
            action = np.full(env.action_adapter.size, 0.7)
            _, fingerprint_a = constant_rollout(env, 5, action)
            _, fingerprint_b = constant_rollout(env, 6, action)
        finally:
            env.close()
        assert fingerprint_a != fingerprint_b

    def test_completeness_delta_telescopes(self):
        """Summed per-round rewards == final completeness (starts at 0)."""
        env = small_env(reward="completeness-delta")
        try:
            action = np.full(env.action_adapter.size, 0.5)
            rewards, _ = constant_rollout(env, 2, action)
            final = env._last_snapshot.completeness
        finally:
            env.close()
        assert sum(rewards) == pytest.approx(final)


class TestActionAdapters:
    def test_registry_names(self):
        for name in ("weights", "reward-step", "level-count", "incentive"):
            assert name in ACTION_ADAPTERS.available()

    def test_wrong_shape_rejected(self):
        adapter = ACTION_ADAPTERS.create("incentive")
        config = SimulationConfig(**SMALL)
        with pytest.raises(ValueError, match="shape"):
            adapter.to_action(np.zeros(3), config)

    def test_non_finite_rejected(self):
        adapter = ACTION_ADAPTERS.create("weights")
        config = SimulationConfig(**SMALL)
        with pytest.raises(ValueError, match="finite"):
            adapter.to_action([0.5, np.nan, 0.5], config)

    def test_out_of_range_components_clip(self):
        adapter = ACTION_ADAPTERS.create("reward-step")
        config = SimulationConfig(**SMALL)
        low = adapter.to_action([-5.0], config)["reward_step"]
        high = adapter.to_action([99.0], config)["reward_step"]
        assert low == pytest.approx(adapter.LOW * config.reward_step)
        assert high == pytest.approx(adapter.HIGH * config.reward_step)

    def test_zero_weights_become_uniform(self):
        adapter = ACTION_ADAPTERS.create("weights")
        config = SimulationConfig(**SMALL)
        weights = adapter.to_action([0.0, 0.0, 0.0], config)["weights"]
        assert weights == pytest.approx([1 / 3] * 3)

    def test_level_count_spans_one_to_double(self):
        adapter = ACTION_ADAPTERS.create("level-count")
        config = SimulationConfig(**SMALL)
        assert adapter.to_action([0.0], config)["level_count"] == 1
        assert (adapter.to_action([1.0], config)["level_count"]
                == 2 * config.level_count)

    def test_incentive_adapter_composes_all_knobs(self):
        adapter = ACTION_ADAPTERS.create("incentive")
        config = SimulationConfig(**SMALL)
        action = adapter.to_action(np.full(5, 0.5), config)
        assert set(action) == {"weights", "reward_step", "level_count"}

    def test_extreme_action_respects_eq9_feasibility(self):
        """A max-λ, max-levels action must not bankrupt the base reward:
        apply_incentive_action's Eq. 9 clamp keeps r0 positive, so the
        episode still prices and completes."""
        env = small_env()
        try:
            env.reset(seed=1)
            terminated = False
            while not terminated:
                observation, _, terminated, _, info = env.step(
                    np.ones(env.action_adapter.size)
                )
            assert env.result().rounds_played >= 1
        finally:
            env.close()


class TestObsBuilders:
    def test_registry_names(self):
        for name in ("compact", "demand-levels"):
            assert name in OBS_BUILDERS.available()

    @pytest.mark.parametrize("name", ("compact", "demand-levels"))
    def test_observations_live_in_declared_space(self, name):
        env = small_env(obs=name)
        try:
            observation, _ = env.reset(seed=0)
            space = env.observation_space
            assert observation.shape == space.shape
            assert space.contains(observation)
            terminated = False
            while not terminated:
                observation, _, terminated, _, _ = env.step(
                    env.action_space.sample()
                )
                assert space.contains(observation)
        finally:
            env.close()

    def test_demand_levels_histogram_tracks_demand_values(self):
        """The histogram is the Table III value bucketing, not an
        equal-mass split: concentrating every demand in one level puts
        all the mass in that level's bin, and a mixed set lands exactly
        where DemandLevels.level_of says."""
        from repro.core.levels import DemandLevels
        from repro.envs.obs import DemandLevelObsBuilder
        from repro.simulation.session import SessionObservation

        config = SimulationConfig(**SMALL)
        builder = DemandLevelObsBuilder()

        def observation_with(demands):
            return SessionObservation(
                round_no=1, rounds_total=4, finished=False, n_users=20,
                n_active_tasks=len(demands), n_published_tasks=len(demands),
                budget=100.0, total_paid=0.0, completeness=0.0,
                published_rewards={}, demands=demands, tasks=(),
            )

        count = config.level_count
        low = builder.build(
            observation_with({1: 0.05, 2: 0.1, 3: 0.15}), config
        )
        high = builder.build(
            observation_with({1: 0.85, 2: 0.9, 3: 0.95}), config
        )
        assert low[5:].tolist() == pytest.approx(
            [1.0] + [0.0] * (count - 1)
        )
        assert high[5:].tolist() == pytest.approx(
            [0.0] * (count - 1) + [1.0]
        )
        levels = DemandLevels(count)
        demands = {1: 0.05, 2: 0.45, 3: 0.45, 4: 0.95}
        histogram = builder.build(observation_with(demands), config)[5:]
        for level in range(1, count + 1):
            expected = sum(
                1 for d in demands.values() if levels.level_of(d) == level
            ) / len(demands)
            assert histogram[level - 1] == pytest.approx(expected)

    def test_demand_levels_histogram_sums_to_one_while_demands_exist(self):
        config = SimulationConfig(**SMALL)
        env = IncentiveEnv(config, obs="demand-levels")
        try:
            observation, _ = env.reset(seed=0)
            histogram = observation[5:]
            assert histogram.shape == (config.level_count,)
            assert histogram.sum() == pytest.approx(1.0, abs=1e-5)
        finally:
            env.close()


class TestRewardFunctions:
    def test_registry_names(self):
        for name in ("completeness-delta", "platform-utility"):
            assert name in REWARD_FUNCTIONS.available()

    def test_platform_utility_charges_spending(self):
        env_free = small_env(reward="completeness-delta")
        env_paid = small_env(reward="platform-utility")
        try:
            action = np.full(env_free.action_adapter.size, 0.5)
            free, fingerprint_free = constant_rollout(env_free, 4, action)
            paid, fingerprint_paid = constant_rollout(env_paid, 4, action)
        finally:
            env_free.close()
            env_paid.close()
        assert fingerprint_free == fingerprint_paid  # reward never leaks in
        assert sum(paid) < sum(free)  # money was spent, so utility < gain

    def test_reward_spec_as_mapping_with_kwargs(self):
        env = small_env(reward={"name": "platform-utility",
                                "spend_weight": 0.5})
        try:
            assert env.reward_function.spend_weight == 0.5
        finally:
            env.close()


class TestSpacesShim:
    def test_box_helper_matches_gymnasium_presence(self):
        space = box(4)
        if HAVE_GYMNASIUM:  # pragma: no cover - not in the baked image
            import gymnasium

            assert isinstance(space, gymnasium.spaces.Box)
        else:
            assert isinstance(space, Box)

    def test_shim_sample_and_contains(self):
        space = Box(0.0, 1.0, (3,))
        space.seed(0)
        sample = space.sample()
        assert sample.shape == (3,)
        assert space.contains(sample)
        assert sample in space
        assert not space.contains(np.full(3, 2.0, dtype=np.float32))
        assert not space.contains(np.zeros(2, dtype=np.float32))

    def test_shim_seeded_sampling_is_deterministic(self):
        first = Box(0.0, 1.0, (2,))
        second = Box(0.0, 1.0, (2,))
        first.seed(7)
        second.seed(7)
        assert np.array_equal(first.sample(), second.sample())
