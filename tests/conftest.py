"""Shared fixtures: small deterministic worlds and fast configurations.

The full paper configuration (20 tasks x 20 measurements, 100 users,
15 rounds) takes a few hundred milliseconds per run; unit and
integration tests use these scaled-down variants so the whole suite
stays fast while exercising the same code paths.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.region import RectRegion
from repro.simulation.config import SimulationConfig
from repro.world.generator import World
from repro.world.task import SensingTask
from repro.world.user import MobileUser


@pytest.fixture(autouse=True)
def _restore_repro_logger():
    """Undo logger reconfiguration after every test.

    ``repro.obs.log.configure_logging`` (called by the CLI's ``main``)
    installs a handler and disables propagation on the ``"repro"``
    logger tree — process-global state that would otherwise leak between
    tests and break ``caplog``-based assertions in whichever file runs
    later.
    """
    root = logging.getLogger("repro")
    saved_handlers = list(root.handlers)
    saved_level = root.level
    saved_propagate = root.propagate
    yield
    root.handlers[:] = saved_handlers
    root.setLevel(saved_level)
    root.propagate = saved_propagate


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.Generator(np.random.PCG64(12345))


@pytest.fixture
def region() -> RectRegion:
    """A 1 km square region."""
    return RectRegion.square(1000.0)


def make_task(
    task_id: int = 0,
    x: float = 0.0,
    y: float = 0.0,
    deadline: int = 10,
    required: int = 3,
) -> SensingTask:
    """A hand-built task (test helper, not a fixture, so ids can vary)."""
    return SensingTask(
        task_id=task_id,
        location=Point(x, y),
        deadline=deadline,
        required_measurements=required,
    )


def make_user(
    user_id: int = 0,
    x: float = 0.0,
    y: float = 0.0,
    speed: float = 2.0,
    cost_per_meter: float = 0.002,
    time_budget: float = 900.0,
) -> MobileUser:
    """A hand-built user with the paper's movement constants."""
    return MobileUser(
        user_id=user_id,
        location=Point(x, y),
        speed=speed,
        cost_per_meter=cost_per_meter,
        time_budget=time_budget,
    )


@pytest.fixture
def tiny_world(region: RectRegion) -> World:
    """Four tasks in the corners-ish, three users near the center.

    Geometry chosen so every task is reachable by someone and the
    south-west task (id 0) is closest to everyone.
    """
    tasks = [
        make_task(0, 300.0, 300.0, deadline=5, required=2),
        make_task(1, 700.0, 300.0, deadline=6, required=2),
        make_task(2, 300.0, 700.0, deadline=7, required=2),
        make_task(3, 700.0, 700.0, deadline=8, required=2),
    ]
    users = [
        make_user(0, 450.0, 450.0),
        make_user(1, 500.0, 500.0),
        make_user(2, 550.0, 550.0),
    ]
    return World(region=region, tasks=tasks, users=users)


@pytest.fixture
def fast_config() -> SimulationConfig:
    """A small but non-trivial configuration (runs in ~10 ms)."""
    return SimulationConfig(
        n_users=15,
        n_tasks=6,
        area_side=1500.0,
        required_measurements=4,
        deadline_range=(3, 8),
        rounds=8,
        budget=200.0,
        seed=7,
    )
