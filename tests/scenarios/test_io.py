"""Scenario file IO: lossless TOML/JSON round-trips, name-or-path loading.

Round-trips are asserted through the *resolved config*, which is the
equality that matters: a spec that loads back to a different world is a
lossy spec, whatever its surface syntax.
"""

import dataclasses

import pytest

from repro.scenarios import (
    PRESETS,
    ScenarioSpec,
    dumps_toml,
    load_scenario,
    load_spec,
    save_spec,
)
from repro.scenarios.io import _parse_toml_minimal, tomllib


def assert_same_world(left: ScenarioSpec, right: ScenarioSpec):
    assert left.name == right.name
    assert left.description == right.description
    assert dataclasses.asdict(left.to_config()) == dataclasses.asdict(
        right.to_config()
    )


@pytest.mark.parametrize("name", sorted(PRESETS))
@pytest.mark.parametrize("extension", ["toml", "json"])
def test_every_preset_round_trips(tmp_path, name, extension):
    spec = PRESETS[name]
    path = save_spec(spec, tmp_path / f"{name}.{extension}")
    assert_same_world(load_spec(path), spec)


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_minimal_parser_agrees_with_tomllib(name):
    # The fallback reader (python < 3.11) must parse everything the
    # writer emits to the same document tomllib produces.
    text = dumps_toml(PRESETS[name].to_mapping())
    parsed = _parse_toml_minimal(text)
    if tomllib is not None:
        assert parsed == tomllib.loads(text)
    assert_same_world(ScenarioSpec.from_mapping(parsed), PRESETS[name])


class TestMinimalParser:
    def test_comments_and_blanks_skipped(self):
        parsed = _parse_toml_minimal('# comment\n\nname = "x"\n')
        assert parsed == {"name": "x"}

    def test_named_errors(self):
        with pytest.raises(ValueError, match="spec.toml:1"):
            _parse_toml_minimal("not toml at all", source="spec.toml")
        with pytest.raises(ValueError, match="value"):
            _parse_toml_minimal("when = 1979-05-27", source="spec.toml")


class TestLoadSpec:
    def test_unknown_extension(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: x\n")
        with pytest.raises(ValueError, match=".yaml"):
            load_spec(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_spec(tmp_path / "absent.toml")

    def test_invalid_spec_in_file_is_named(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('name = "bad"\n\n[config]\nwarp_factor = 9\n')
        with pytest.raises(ValueError, match="warp_factor"):
            load_spec(path)

    def test_save_rejects_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError, match=".csv"):
            save_spec(PRESETS["paper-2018"], tmp_path / "spec.csv")


class TestLoadScenario:
    def test_preset_by_name(self):
        assert load_scenario("paper-2018").name == "paper-2018"

    def test_file_by_path(self, tmp_path):
        path = save_spec(PRESETS["rush-hour"], tmp_path / "custom.toml")
        assert_same_world(load_scenario(path), PRESETS["rush-hour"])

    def test_unknown_name_lists_presets(self):
        with pytest.raises(ValueError, match="city-50k"):
            load_scenario("atlantis")
