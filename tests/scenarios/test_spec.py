"""Unit tests for repro.scenarios.spec."""

import pytest

from repro.scenarios import ScenarioSpec


class TestConstruction:
    def test_minimal(self):
        spec = ScenarioSpec("tiny")
        assert spec.name == "tiny"
        assert spec.description == ""
        assert spec.config == {}

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec("")
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec("   ")

    def test_bad_config_fails_at_construction(self):
        # Validation is eager: a bad spec never becomes an object.
        with pytest.raises(ValueError, match="n_users"):
            ScenarioSpec("broken", config={"n_users": 0})

    def test_unknown_config_field_named(self):
        with pytest.raises(ValueError, match="warp_factor"):
            ScenarioSpec("typo", config={"warp_factor": 9})


class TestToConfig:
    def test_spec_overrides_defaults(self):
        config = ScenarioSpec("s", config={"n_users": 7, "rounds": 3}).to_config()
        assert config.n_users == 7
        assert config.rounds == 3
        assert config.n_tasks == 20  # untouched default

    def test_caller_overrides_win(self):
        spec = ScenarioSpec("s", config={"n_users": 7})
        assert spec.to_config(n_users=9, seed=4).n_users == 9

    def test_lists_coerced_to_tuples(self):
        spec = ScenarioSpec("s", config={"deadline_range": [3, 8]})
        assert spec.to_config().deadline_range == (3, 8)

    def test_population_groups_coerced(self):
        spec = ScenarioSpec(
            "s",
            config={
                "population": [
                    {"name": "walkers", "fraction": 1.0,
                     "mobility": "stationary"},
                ]
            },
        )
        config = spec.to_config()
        assert isinstance(config.population, tuple)
        assert config.population[0]["name"] == "walkers"


class TestMappingRoundTrip:
    def test_to_mapping_is_data_shaped(self):
        spec = ScenarioSpec(
            "s", description="d", config={"deadline_range": (3, 8)}
        )
        mapping = spec.to_mapping()
        assert mapping["config"]["deadline_range"] == [3, 8]  # tuple -> list

    def test_from_mapping_inverts_to_mapping(self):
        spec = ScenarioSpec("s", description="d", config={"n_users": 5})
        assert ScenarioSpec.from_mapping(spec.to_mapping()) == spec

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="flavour"):
            ScenarioSpec.from_mapping({"name": "s", "flavour": "salty"})

    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            ScenarioSpec.from_mapping({"config": {}})
