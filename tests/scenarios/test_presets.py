"""Property tests: every bundled preset describes a buildable, valid world.

The big presets (city-50k) are validated through their *config* and a
downsized world build — constructing 50k users in a unit test is the
batched engine's job, not this suite's.
"""

import pytest

from repro.scenarios import PRESETS, get_preset, preset_names
from repro.simulation import make_engine

#: Downsize caps so world-building stays unit-test fast.
MAX_USERS = 500
MAX_TASKS = 100


def downsized(spec):
    overrides = {}
    if spec.to_config().n_users > MAX_USERS:
        overrides["n_users"] = MAX_USERS
    if spec.to_config().n_tasks > MAX_TASKS:
        overrides["n_tasks"] = MAX_TASKS
    return spec.to_config(seed=0, **overrides)


class TestRegistry:
    def test_names_match_keys(self):
        assert set(preset_names()) == set(PRESETS)
        for name, spec in PRESETS.items():
            assert spec.name == name

    def test_expected_presets_present(self):
        for name in ("paper-2018", "city-50k", "city-2k"):
            assert name in PRESETS

    def test_get_preset_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="paper-2018"):
            get_preset("atlantis")

    def test_every_preset_has_description(self):
        for spec in PRESETS.values():
            assert spec.description.strip()


@pytest.mark.parametrize("name", sorted(PRESETS))
class TestEveryPresetBuildsAValidWorld:
    def test_config_is_valid(self, name):
        # ScenarioSpec validates eagerly, but make the property explicit.
        config = PRESETS[name].to_config()
        assert config.n_users >= 1
        assert config.rounds >= 1

    def test_world_generates(self, name):
        config = downsized(PRESETS[name])
        world = make_engine(config).world
        assert len(list(world.users)) == config.n_users
        assert len(list(world.tasks)) == config.n_tasks

    def test_tasks_inside_region(self, name):
        config = downsized(PRESETS[name])
        world = make_engine(config).world
        region = config.region
        for task in world.tasks:
            assert region.contains(task.location)
            assert task.deadline >= 1
            assert task.required_measurements >= 1

    def test_reward_levels_feasible(self, name):
        # Eq. 9: the per-measurement base reward r0 must be positive.
        config = downsized(PRESETS[name])
        config.mechanism_arguments()  # raises if the budget is infeasible


class TestPaper2018:
    def test_matches_section_vi(self):
        config = PRESETS["paper-2018"].to_config()
        assert config.n_users == 100
        assert config.n_tasks == 20
        assert config.rounds == 15
        assert config.budget == 1000.0
        assert config.area_side == 3000.0

    def test_scales_in_sweeps(self):
        assert PRESETS["paper-2018"].to_config(n_users=40).n_users == 40


class TestCityPresets:
    def test_city_50k_is_large_scale(self):
        config = PRESETS["city-50k"].to_config()
        assert config.n_users == 50_000
        assert config.n_tasks == 2_000
        assert config.engine == "batched"
        assert config.stream_rounds is True

    def test_city_2k_is_the_ci_downsize(self):
        config = PRESETS["city-2k"].to_config()
        assert config.n_users == 2_000
        assert config.engine == "batched"

    def test_city_presets_use_float32_distances(self):
        for name in ("city-2k", "city-50k", "city-1m"):
            assert PRESETS[name].to_config().distance_dtype == "float32"
        # The paper-fidelity presets stay in float64.
        assert PRESETS["paper-2018"].to_config().distance_dtype == "float64"

    def test_city_1m_is_million_scale(self):
        config = PRESETS["city-1m"].to_config()
        assert config.n_users == 1_000_000
        assert config.n_tasks == 5_000
        assert config.engine == "batched"
        assert config.stream_rounds is True
        assert config.distance_dtype == "float32"
        # Eq. 9 feasibility at full scale: r0 > 0.
        per_measurement = config.budget / config.total_required_measurements
        assert per_measurement > config.reward_step * (config.level_count - 1)
