"""Statistical backing for the headline comparisons.

EXPERIMENTS.md states "on-demand beats fixed" style claims from mean
curves; these tests back the central ones with paired tests at a modest
repetition count (the pairing — identical worlds per repetition across
mechanisms — is what makes 12 repetitions enough).
"""

import pytest

from repro.analysis.significance import compare_paired
from repro.experiments.runner import repeat_metric
from repro.metrics import (
    average_reward_per_measurement,
    overall_completeness,
    variance_of_measurements,
)
from repro.simulation.config import SimulationConfig

REPS = 12


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(n_users=100)


def paired(config, metric, mechanism_a, mechanism_b):
    a = repeat_metric(config.with_overrides(mechanism=mechanism_a), metric, REPS)
    b = repeat_metric(config.with_overrides(mechanism=mechanism_b), metric, REPS)
    return compare_paired(a, b)


class TestCompletenessClaims:
    def test_on_demand_beats_fixed_significantly(self, config):
        comparison = paired(config, overall_completeness, "on-demand", "fixed")
        assert comparison.mean_difference > 0
        assert comparison.significant(alpha=0.05)

    def test_on_demand_beats_steered_significantly(self, config):
        comparison = paired(config, overall_completeness, "on-demand", "steered")
        assert comparison.mean_difference > 0
        assert comparison.significant(alpha=0.05)


class TestBalanceClaims:
    def test_on_demand_lower_variance_than_fixed(self, config):
        comparison = paired(
            config, variance_of_measurements, "fixed", "on-demand"
        )
        assert comparison.mean_difference > 0
        assert comparison.significant(alpha=0.05)


class TestWelfareClaims:
    def test_on_demand_cheaper_than_steered(self, config):
        comparison = paired(
            config, average_reward_per_measurement, "steered", "on-demand"
        )
        assert comparison.mean_difference > 0
        assert comparison.significant(alpha=0.05)

    def test_ci_excludes_zero_for_fixed_comparison(self, config):
        comparison = paired(
            config, average_reward_per_measurement, "fixed", "on-demand"
        )
        assert comparison.ci_low > 0.0
