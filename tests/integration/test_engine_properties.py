"""Property-based engine tests: invariants over random configurations.

One hypothesis strategy draws a whole simulation configuration (size,
geometry, mechanism, selector, mobility); every sample must satisfy the
structural rules of Section III regardless of the draw:

- Eq. 8: total platform payout within budget,
- per-task cap: no task exceeds its required measurements,
- per-user rule: one contribution per (user, task),
- time budget: no user record exceeds its travel allowance,
- deadlines: no measurement lands after its task's deadline.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate

configs = st.builds(
    SimulationConfig,
    n_users=st.integers(min_value=2, max_value=20),
    n_tasks=st.integers(min_value=1, max_value=8),
    area_side=st.sampled_from([800.0, 1500.0, 2500.0]),
    required_measurements=st.integers(min_value=1, max_value=5),
    deadline_range=st.tuples(
        st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=5)
    ).map(lambda pair: (pair[0], pair[0] + pair[1])),
    rounds=st.integers(min_value=1, max_value=8),
    budget=st.sampled_from([150.0, 400.0, 1000.0]),
    mechanism=st.sampled_from(["on-demand", "fixed", "steered", "adaptive"]),
    selector=st.sampled_from(["dp", "greedy", "greedy-2opt"]),
    mobility=st.sampled_from(["stationary", "follow-path", "random-waypoint"]),
    layout=st.sampled_from(["uniform", "clustered"]),
    heterogeneity=st.sampled_from([0.0, 0.3]),
    seed=st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=25, deadline=None)
@given(configs)
def test_budget_and_caps_hold_for_any_configuration(config):
    result = simulate(config)

    # Eq. 8: the platform can never overspend.
    assert result.total_paid <= config.budget + 1e-9

    # Per-task cap and contributor uniqueness.
    seen = set()
    for record in result.rounds:
        for event in record.measurements:
            key = (event.task_id, event.user_id)
            assert key not in seen
            seen.add(key)
    for task in result.world.tasks:
        assert task.received <= task.required_measurements
        for round_no in task.measurements_by_round:
            assert round_no <= task.deadline

    # Travel allowances (per-user, heterogeneity-aware).
    budgets = {u.user_id: u.max_travel_distance for u in result.world.users}
    for record in result.rounds:
        for user_record in record.user_records:
            assert user_record.distance <= budgets[user_record.user_id] + 1e-6


@settings(max_examples=10, deadline=None)
@given(configs)
def test_every_configuration_is_replayable(config):
    a = simulate(config)
    b = simulate(config)
    assert a.total_measurements == b.total_measurements
    assert abs(a.total_paid - b.total_paid) < 1e-9
