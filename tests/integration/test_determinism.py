"""Replayability: the reproducibility contract of the whole stack."""

from repro.experiments.fig5 import paired_round2_profits
from repro.experiments.fig6 import fig6a
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate

FAST = SimulationConfig(
    n_users=12, n_tasks=5, rounds=6, required_measurements=3,
    area_side=1500.0, budget=150.0, seed=21,
)


def fingerprint(result):
    return (
        result.rounds_played,
        result.total_measurements,
        round(result.total_paid, 9),
        tuple(
            (e.round_no, e.task_id, e.user_id, round(e.reward, 9))
            for record in result.rounds
            for e in record.measurements
        ),
    )


class TestReplay:
    def test_full_simulation_replays_bit_exact(self):
        assert fingerprint(simulate(FAST)) == fingerprint(simulate(FAST))

    def test_mechanism_change_does_not_change_world(self):
        """Worlds are drawn from the 'world' stream only, so two mechanisms
        at the same seed see identical task/user placement — the paired-
        comparison property the whole evaluation depends on."""
        a = simulate(FAST.with_overrides(mechanism="on-demand"))
        b = simulate(FAST.with_overrides(mechanism="steered"))
        assert [t.location for t in a.world.tasks] == [
            t.location for t in b.world.tasks
        ]
        assert [t.deadline for t in a.world.tasks] == [
            t.deadline for t in b.world.tasks
        ]
        assert [u.home for u in a.world.users] == [u.home for u in b.world.users]

    def test_selector_change_does_not_change_world(self):
        a = simulate(FAST.with_overrides(selector="dp"))
        b = simulate(FAST.with_overrides(selector="greedy"))
        assert [t.location for t in a.world.tasks] == [
            t.location for t in b.world.tasks
        ]

    def test_experiment_results_replay(self):
        config = FAST
        run1 = fig6a(user_counts=(8, 12), repetitions=2, base_config=config)
        run2 = fig6a(user_counts=(8, 12), repetitions=2, base_config=config)
        assert run1.rows() == run2.rows()

    def test_paired_profit_experiment_replays(self):
        a = paired_round2_profits(FAST, repetitions=2, base_seed=3)
        b = paired_round2_profits(FAST, repetitions=2, base_seed=3)
        assert a == b
