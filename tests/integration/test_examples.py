"""Smoke tests: every shipped example must run clean, end to end.

Examples are documentation that executes; a broken example is a broken
README.  Each test imports the script as a module and calls its
``main()``, capturing stdout to assert it told its story.
"""

import importlib.util
import sys
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, capsys):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Final metrics" in out
    assert "Budget check" in out


def test_ahp_walkthrough(capsys):
    out = run_example("ahp_walkthrough", capsys)
    assert "Consistency ratio" in out
    assert "0.648" in out


def test_task_selection_demo(capsys):
    out = run_example("task_selection_demo", capsys)
    assert "brute-force" in out
    assert "DP matches brute force" in out


def test_noise_mapping(capsys):
    out = run_example("noise_mapping", capsys)
    assert "starved tasks" in out
    assert "on-demand" in out


def test_mechanism_comparison(capsys):
    out = run_example("mechanism_comparison", capsys)
    assert "fig6a" in out
    assert "steered" in out


def test_budget_recycling(capsys):
    out = run_example("budget_recycling", capsys)
    assert "adaptive" in out
    assert "peak price" in out


def test_event_sensing(capsys):
    out = run_example("event_sensing", capsys)
    assert "Event day" in out
    assert "adaptive" in out


def test_city_scale(capsys):
    out = run_example("city_scale", capsys)
    assert "engine=batched" in out
    assert "replay agrees: True" in out


def test_policy_rollout(capsys):
    out = run_example("policy_rollout", capsys)
    assert "session == simulate" in out
    assert "best constant action" in out
    assert "tuned policy" in out


def test_every_example_has_a_smoke_test():
    """Adding an example without a smoke test should fail loudly here."""
    examples = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    tested = {
        name[len("test_"):]
        for name, obj in globals().items()
        if name.startswith("test_") and callable(obj)
    }
    assert examples <= tested, f"untested examples: {sorted(examples - tested)}"
