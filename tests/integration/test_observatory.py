"""Observatory acceptance: regression gating end to end, observer effects.

Pins the PR's contract:

- a synthetic 2x selector-latency regression against a 5-run baseline
  window is flagged by ``repro obs regress`` (exit 1), and a no-change
  re-run comes back ``ok`` (exit 0);
- ``--warn-only`` reports without gating;
- profiling a run never perturbs the simulation: profiler-on output is
  bit-identical to profiler-off.
"""

import json

from repro.cli import main
from repro.obs.profiler import ResourceProfiler
from repro.obs.regress import regress_store
from repro.obs.store import RunStore
from repro.simulation import SimulationConfig, simulate


def bench_entry(vectorized_ms, index):
    """One synthetic BENCH_selectors.json entry (~5x baseline speedup)."""
    return {
        "timestamp": f"2026-01-{index + 1:02d}T00:00:00Z",
        "python": "3.12.0",
        "numpy": "1.26.0",
        "n_tasks": 20,
        "instances": 30,
        "timing_repeats": 3,
        "seed": 0,
        "scale": "full",
        "reference_ms_per_call": 10.0 + 0.01 * index,
        "vectorized_ms_per_call": vectorized_ms,
        "speedup": (10.0 + 0.01 * index) / vectorized_ms,
        "mean_profit": 12.5,
        }


#: Five baseline runs hovering around 2 ms/call, with realistic jitter.
BASELINE_MS = (2.00, 2.04, 1.97, 2.02, 1.99)


class TestRegressionGate:
    def _trajectory(self, tmp_path, latencies):
        tmp_path.mkdir(parents=True, exist_ok=True)
        path = tmp_path / "BENCH_selectors.json"
        path.write_text(json.dumps(
            [bench_entry(ms, i) for i, ms in enumerate(latencies)]
        ))
        return path

    def test_doubled_latency_flags_and_no_change_rerun_passes(
        self, tmp_path, capsys
    ):
        store_dir = str(tmp_path / "store")

        # Five healthy runs, then a 2x selector-latency regression.
        regressed = self._trajectory(
            tmp_path, list(BASELINE_MS) + [2 * BASELINE_MS[0]]
        )
        assert main(["obs", "ingest", str(regressed),
                     "--store", store_dir]) == 0
        assert main(["obs", "regress", "--window", "5",
                     "--store", store_dir]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "vectorized_ms_per_call" in out
        # The derived speedup collapses too, and is caught independently.
        assert "speedup" in out

        # --warn-only reports the same verdicts but exits 0 for CI.
        assert main(["obs", "regress", "--window", "5", "--warn-only",
                     "--store", store_dir]) == 0

        # No-change re-run: back at baseline latency -> ok verdict, exit 0.
        ok_store = str(tmp_path / "store-ok")
        healthy = self._trajectory(
            tmp_path / "ok", list(BASELINE_MS) + [2.01]
        )
        assert main(["obs", "ingest", str(healthy), "--store", ok_store]) == 0
        assert main(["obs", "regress", "--window", "5",
                     "--store", ok_store]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out

    def test_api_level_verdict_evidence(self, tmp_path):
        store = RunStore(tmp_path / "store")
        for index, ms in enumerate(list(BASELINE_MS) + [4.0]):
            store.ingest("bench", {"vectorized_ms_per_call": ms},
                         created_at=f"2026-02-{index + 1:02d}T00:00:00Z")
        report = regress_store(store, window=5)
        (verdict,) = [v for v in report.verdicts
                      if v.metric == "vectorized_ms_per_call"]
        assert verdict.status == "regressed"
        assert verdict.baseline == BASELINE_MS
        assert verdict.candidate == 4.0
        assert verdict.direction == "higher-is-worse"
        assert report.exit_code() == 1

    def test_regress_json_report_artifact(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        trajectory = self._trajectory(
            tmp_path, list(BASELINE_MS) + [2 * BASELINE_MS[0]]
        )
        main(["obs", "ingest", str(trajectory), "--store", store_dir])
        report_path = tmp_path / "report.json"
        assert main(["obs", "regress", "--warn-only", "--json",
                     str(report_path), "--store", store_dir]) == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["status"] == "regressed"
        assert any(v["metric"] == "vectorized_ms_per_call"
                   for v in payload["verdicts"])


class TestObserverEffect:
    CONFIG = dict(n_users=20, n_tasks=6, rounds=4, seed=7)

    @staticmethod
    def _simulated_numbers(result):
        # Everything the simulation *decided* — wall-clock series
        # (selector_seconds*) vary between any two runs, profiled or not.
        return {
            name: state
            for name, state in result.metrics_totals().as_dict().items()
            if "seconds" not in name
        }

    def test_profiled_run_is_bit_identical(self):
        plain = simulate(SimulationConfig(**self.CONFIG))
        profiler = ResourceProfiler(interval=0.001)
        with profiler:
            profiled = simulate(SimulationConfig(**self.CONFIG))
        assert profiler.samples  # the profiler did observe the process
        assert self._simulated_numbers(profiled) == self._simulated_numbers(plain)
        assert [round_.total_paid for round_ in profiled.rounds] == \
            [round_.total_paid for round_ in plain.rounds]

    def test_cli_profile_flag_leaves_the_metrics_unchanged(self, capsys):
        argv = ["simulate", "--users", "12", "--tasks", "5", "--rounds", "3",
                "--seed", "3"]

        def metric_table(text):
            return text.split("\nperf:")[0]

        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--profile", "--profile-interval", "0.001"]) == 0
        profiled = capsys.readouterr().out
        assert "profile:" in profiled
        assert metric_table(profiled) == metric_table(plain)


class TestStoreRoundTrip:
    def test_simulate_ingests_a_reloadable_record(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        argv = ["simulate", "--users", "12", "--tasks", "5", "--rounds", "3",
                "--seed", "3", "--obs-store", str(store_dir)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "recorded in store: simulate-000001" in out
        store = RunStore(store_dir)
        record = store.load("simulate-000001")
        assert record.labels["selector"] == "dp"
        assert record.manifest["base_seed"] == 3
        assert record.values["summary/rounds_played"] == 3.0
        assert "selector_seconds/p95" in record.values
        # A second identical invocation appends (runs, not dedupe keys).
        assert main(argv) == 0
        capsys.readouterr()
        assert len(store.entries(kind="simulate")) == 2
        same = store.load("simulate-000002")
        simulated = lambda values: {  # noqa: E731 - wall-clock series vary
            k: v for k, v in values.items() if "seconds" not in k
        }
        assert simulated(same.values) == simulated(record.values)


class TestProfilerOverhead:
    def test_sampling_overhead_is_small(self):
        """The profiler's observer cost stays well under the 5% budget.

        Measured on a paper-scale workload; the bound here is loose (25%)
        so CI noise cannot flake it — the documented <5% figure comes
        from the perf-smoke workload on an idle machine (see
        docs/architecture.md).
        """
        import time

        config = SimulationConfig(n_users=60, n_tasks=12, rounds=8, seed=1)
        simulate(config)  # warm caches/imports out of the measurement

        started = time.perf_counter()
        simulate(config)
        plain_s = time.perf_counter() - started

        profiler = ResourceProfiler(interval=0.05)
        started = time.perf_counter()
        with profiler:
            simulate(config)
        profiled_s = time.perf_counter() - started

        assert profiled_s <= plain_s * 1.25 + 0.05
