"""End-to-end integration: the full paper configuration, one run each way."""

import pytest

from repro.metrics import MetricsSummary
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


class TestPaperScaleRun:
    """One run at the paper's exact Section VI constants."""

    @pytest.fixture(scope="class")
    def result(self):
        return simulate(SimulationConfig(n_users=100, seed=42))

    def test_completes_within_horizon(self, result):
        assert 1 <= result.rounds_played <= 15

    def test_budget_never_exceeded(self, result):
        assert result.total_paid <= 1000.0 + 1e-9

    def test_rewards_on_paper_ladder(self, result):
        """Every published reward is one of r0 + k*lambda, k in 0..4."""
        ladder = {0.5, 1.0, 1.5, 2.0, 2.5}
        for record in result.rounds:
            for price in record.published_rewards.values():
                assert any(abs(price - rung) < 1e-9 for rung in ladder)

    def test_healthy_participation(self, result):
        summary = MetricsSummary.from_result(result)
        assert summary.coverage >= 0.9
        assert summary.overall_completeness >= 0.7
        assert summary.total_measurements >= 200

    def test_world_state_consistent_with_history(self, result):
        counts = result.measurements_by_task()
        for task in result.world.tasks:
            assert task.received == counts[task.task_id]
            assert task.received <= task.required_measurements


class TestCrossComponentConsistency:
    def test_user_reward_totals_match_platform_payout(self):
        result = simulate(SimulationConfig(n_users=40, seed=9))
        paid_to_users = sum(u.total_reward for u in result.world.users)
        # Every dollar the platform paid landed with some user.
        assert paid_to_users == pytest.approx(result.total_paid)

    def test_round_records_sum_to_user_accounting(self):
        result = simulate(SimulationConfig(n_users=40, seed=10))
        for user in result.world.users:
            from_records = sum(
                r.profit
                for record in result.rounds
                for r in record.user_records
                if r.user_id == user.user_id
            )
            assert from_records == pytest.approx(user.total_profit)

    def test_all_mechanism_selector_combinations(self):
        config = SimulationConfig(
            n_users=15, n_tasks=6, rounds=5, required_measurements=3,
            area_side=1500.0, budget=150.0, seed=4,
        )
        for mechanism in ("on-demand", "fixed", "steered", "proportional"):
            for selector in ("dp", "greedy", "greedy-2opt"):
                result = simulate(config.with_overrides(
                    mechanism=mechanism, selector=selector
                ))
                assert result.rounds_played >= 1
                assert result.total_paid >= 0.0
