"""The paper's evaluation claims, as executable shape assertions.

Each test regenerates (a scaled-down version of) one figure and asserts
the qualitative claim Section VI makes about it — who wins, monotone
directions, late-round behaviour.  Repetition counts are modest (the
suite must stay fast) but every assertion below also holds at the bench
scale recorded in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.shape import dominates, final_value, is_monotonic
from repro.experiments.fig5 import fig5a
from repro.experiments.fig6 import fig6a, fig6b
from repro.experiments.fig7 import fig7a
from repro.experiments.fig8 import fig8a, fig8b
from repro.experiments.fig9 import fig9a, fig9b

USER_COUNTS = (40, 100, 140)
REPS = 4
SEED = 1


@pytest.fixture(scope="module")
def panel6a():
    return fig6a(user_counts=USER_COUNTS, repetitions=REPS, base_seed=SEED)


@pytest.fixture(scope="module")
def panel7a():
    return fig7a(user_counts=USER_COUNTS, repetitions=REPS, base_seed=SEED)


@pytest.fixture(scope="module")
def panel8b():
    return fig8b(repetitions=REPS, base_seed=SEED)


@pytest.fixture(scope="module")
def panel9():
    return (
        fig9a(user_counts=USER_COUNTS, repetitions=REPS, base_seed=SEED),
        fig9b(user_counts=USER_COUNTS, repetitions=REPS, base_seed=SEED),
    )


class TestFig5Claims:
    def test_dp_profit_dominates_greedy(self):
        panel = fig5a(user_counts=(40, 100), repetitions=REPS, base_seed=SEED)
        assert dominates(panel.series_by_label("dp"),
                         panel.series_by_label("greedy"), tolerance=1e-9)


class TestFig6Claims:
    def test_on_demand_reaches_full_coverage(self, panel6a):
        """Paper: exactly 100% everywhere.  Here: >= 95% at 40 users (a
        rare world leaves one task beyond every user's profitable reach —
        see EXPERIMENTS.md), exactly 100% from 100 users up."""
        on_demand = panel6a.series_by_label("on-demand")
        assert all(point.mean >= 95.0 for point in on_demand.points)
        assert all(point.mean >= 99.5 for point in on_demand.points if point.x >= 100)

    def test_steered_reaches_full_coverage(self, panel6a):
        steered = panel6a.series_by_label("steered")
        assert all(point.mean >= 95.0 for point in steered.points)
        assert all(point.mean >= 99.5 for point in steered.points if point.x >= 100)

    def test_fixed_below_full_coverage(self, panel6a):
        fixed = panel6a.series_by_label("fixed")
        assert all(point.mean < 100.0 for point in fixed.points)

    def test_fixed_coverage_increases_with_users(self, panel6a):
        fixed = panel6a.series_by_label("fixed")
        assert fixed.points[-1].mean >= fixed.points[0].mean

    def test_dynamic_mechanisms_dominate_fixed(self, panel6a):
        fixed = panel6a.series_by_label("fixed")
        assert dominates(panel6a.series_by_label("on-demand"), fixed)
        assert dominates(panel6a.series_by_label("steered"), fixed)

    def test_coverage_grows_with_rounds_and_fixed_plateaus(self):
        panel = fig6b(n_users=100, repetitions=REPS, base_seed=SEED)
        for label in ("on-demand", "fixed", "steered"):
            series = panel.series_by_label(label)
            assert is_monotonic(series.means, increasing=True, tolerance=1e-9)
        assert final_value(panel.series_by_label("on-demand")) >= 99.0
        assert final_value(panel.series_by_label("fixed")) < 100.0


class TestFig7Claims:
    def test_on_demand_highest_completeness(self, panel7a):
        on_demand = panel7a.series_by_label("on-demand")
        assert dominates(on_demand, panel7a.series_by_label("fixed"))
        assert dominates(on_demand, panel7a.series_by_label("steered"))

    def test_on_demand_approaches_full_completeness(self, panel7a):
        assert final_value(panel7a.series_by_label("on-demand")) >= 95.0

    def test_completeness_increases_with_users(self, panel7a):
        for label in ("on-demand", "fixed", "steered"):
            series = panel7a.series_by_label(label)
            assert series.points[-1].mean >= series.points[0].mean - 2.0


class TestFig8Claims:
    def test_on_demand_most_measurements(self):
        panel = fig8a(user_counts=USER_COUNTS, repetitions=REPS, base_seed=SEED)
        on_demand = panel.series_by_label("on-demand")
        assert dominates(on_demand, panel.series_by_label("fixed"))
        assert dominates(on_demand, panel.series_by_label("steered"))
        # Approaches the required 20 measurements per task.
        assert final_value(on_demand) >= 19.0

    def test_steered_spikes_in_round_one(self, panel8b):
        """Section VI-D: 'the steered incentive mechanism has the largest
        total number of measurements at the first round'."""
        first = {label: panel8b.series_by_label(label).point_at(1).mean
                 for label in panel8b.labels}
        assert first["steered"] >= first["on-demand"]
        assert first["steered"] >= first["fixed"]

    def test_only_on_demand_collects_late(self, panel8b):
        """'Starting from the 4th round, there is no more new measurement
        for the fixed and the steered incentive mechanisms' while the
        on-demand mechanism keeps going."""
        def late_total(label):
            series = panel8b.series_by_label(label)
            return sum(p.mean for p in series.points if p.x >= 4)

        assert late_total("on-demand") > late_total("fixed") + 1.0
        assert late_total("on-demand") > late_total("steered") + 1.0
        assert late_total("fixed") <= 2.0
        assert late_total("steered") <= 2.0


class TestFig9Claims:
    def test_on_demand_lowest_variance(self, panel9):
        panel, _ = panel9
        on_demand = panel.series_by_label("on-demand")
        assert dominates(panel.series_by_label("fixed"), on_demand)
        assert dominates(panel.series_by_label("steered"), on_demand)

    def test_on_demand_cheapest_per_measurement(self, panel9):
        _, panel = panel9
        on_demand = panel.series_by_label("on-demand")
        assert dominates(panel.series_by_label("fixed"), on_demand)
        assert dominates(panel.series_by_label("steered"), on_demand)

    def test_on_demand_price_decreases_with_users(self, panel9):
        """'The average reward per measurement of the on-demand incentive
        mechanism decreases as the increasing of the mobile users.'"""
        _, panel = panel9
        means = panel.series_by_label("on-demand").means
        assert means[-1] < means[0]
