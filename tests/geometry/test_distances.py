"""Unit tests for repro.geometry.distances."""

import math

import numpy as np
import pytest

from repro.geometry.distances import (
    cross_distances,
    distances_from,
    nearest_index,
    pairwise_distances,
    path_length,
)
from repro.geometry.point import Point

SQUARE = [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)]


class TestPairwise:
    def test_shape_and_diagonal(self):
        matrix = pairwise_distances(SQUARE)
        assert matrix.shape == (4, 4)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_symmetry(self):
        matrix = pairwise_distances(SQUARE)
        assert np.allclose(matrix, matrix.T)

    def test_known_values(self):
        matrix = pairwise_distances(SQUARE)
        assert math.isclose(matrix[0, 1], 1.0)
        assert math.isclose(matrix[0, 2], math.sqrt(2.0))

    def test_empty(self):
        assert pairwise_distances([]).shape == (0, 0)

    def test_matches_point_method(self):
        pts = [Point(3.3, -1.2), Point(0.5, 9.9), Point(-7.0, 2.0)]
        matrix = pairwise_distances(pts)
        for i, a in enumerate(pts):
            for j, b in enumerate(pts):
                assert math.isclose(matrix[i, j], a.distance_to(b), abs_tol=1e-9)

    def test_triangle_inequality(self):
        matrix = pairwise_distances(SQUARE)
        n = len(SQUARE)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert matrix[i, j] <= matrix[i, k] + matrix[k, j] + 1e-9


class TestCrossAndFrom:
    def test_cross_shape(self):
        matrix = cross_distances(SQUARE[:2], SQUARE)
        assert matrix.shape == (2, 4)

    def test_cross_values(self):
        matrix = cross_distances([Point(0, 0)], [Point(3, 4), Point(6, 8)])
        assert np.allclose(matrix, [[5.0, 10.0]])

    def test_cross_empty_either_side(self):
        assert cross_distances([], SQUARE).shape == (0, 4)
        assert cross_distances(SQUARE, []).shape == (4, 0)

    def test_distances_from(self):
        out = distances_from(Point(0, 0), [Point(3, 4), Point(0, 2)])
        assert np.allclose(out, [5.0, 2.0])

    def test_distances_from_empty(self):
        assert distances_from(Point(0, 0), []).shape == (0,)


class TestPathLength:
    def test_empty_and_single(self):
        assert path_length([]) == 0.0
        assert path_length([Point(5, 5)]) == 0.0

    def test_two_points(self):
        assert math.isclose(path_length([Point(0, 0), Point(3, 4)]), 5.0)

    def test_square_loop(self):
        loop = SQUARE + [SQUARE[0]]
        assert math.isclose(path_length(loop), 4.0)

    def test_order_matters(self):
        direct = path_length([Point(0, 0), Point(1, 0), Point(2, 0)])
        zigzag = path_length([Point(0, 0), Point(2, 0), Point(1, 0)])
        assert direct < zigzag


class TestNearest:
    def test_picks_nearest(self):
        assert nearest_index(Point(0, 0), [Point(10, 0), Point(1, 1), Point(5, 5)]) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one target"):
            nearest_index(Point(0, 0), [])
