"""Property-based tests for the geometry substrate (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distances import pairwise_distances, path_length
from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point
from repro.geometry.region import RectRegion

coordinates = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
points = st.builds(Point, coordinates, coordinates)


@given(points, points)
def test_distance_symmetry(a, b):
    assert math.isclose(a.distance_to(b), b.distance_to(a), rel_tol=1e-12)


@given(points, points)
def test_distance_non_negative_and_identity(a, b):
    assert a.distance_to(b) >= 0.0
    assert a.distance_to(a) == 0.0


@given(points, points, points)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@given(points, points, st.floats(min_value=0.0, max_value=1e6))
def test_towards_travels_at_most_distance(a, b, step):
    moved = a.towards(b, step)
    assert a.distance_to(moved) <= step + max(1e-9, 1e-9 * abs(step)) or moved == b
    # Never farther from the target than the start was.
    assert moved.distance_to(b) <= a.distance_to(b) + 1e-6


@given(st.lists(points, min_size=2, max_size=8))
def test_path_length_at_least_endpoint_distance(path):
    assert path_length(path) >= path[0].distance_to(path[-1]) - 1e-6


@given(st.lists(points, min_size=1, max_size=10))
def test_pairwise_matches_point_distance(pts):
    matrix = pairwise_distances(pts)
    for i, a in enumerate(pts):
        for j, b in enumerate(pts):
            assert math.isclose(matrix[i, j], a.distance_to(b), abs_tol=1e-6)


bounded_coordinates = st.floats(min_value=0.0, max_value=1000.0)
bounded_points = st.builds(Point, bounded_coordinates, bounded_coordinates)


@settings(max_examples=50)
@given(
    st.lists(bounded_points, min_size=0, max_size=40),
    bounded_points,
    st.floats(min_value=1.0, max_value=500.0),
)
def test_grid_index_matches_brute_force(cloud, center, radius):
    index = GridIndex(cloud, cell_size=radius)
    expected = sum(1 for p in cloud if p.distance_to(center) <= radius)
    assert index.count_within(center, radius) == expected


@given(bounded_points)
def test_clamp_is_idempotent_and_contained(p):
    region = RectRegion(100.0, 100.0, 900.0, 900.0)
    clamped = region.clamp(p)
    assert region.contains(clamped)
    assert region.clamp(clamped) == clamped
