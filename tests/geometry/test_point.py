"""Unit tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import Point, centroid, euclidean, manhattan


class TestDistance:
    def test_pythagorean_triple(self):
        assert Point(3.0, 4.0).distance_to(Point(0.0, 0.0)) == 5.0

    def test_zero_distance_to_self(self):
        p = Point(1.5, -2.5)
        assert p.distance_to(p) == 0.0

    def test_symmetry(self):
        a, b = Point(1.0, 2.0), Point(-3.0, 7.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_function_form_matches_method(self):
        a, b = Point(0.0, 0.0), Point(1.0, 1.0)
        assert euclidean(a, b) == a.distance_to(b)

    def test_manhattan(self):
        assert Point(1.0, 2.0).manhattan_to(Point(4.0, -2.0)) == 7.0
        assert manhattan(Point(0, 0), Point(2, 3)) == 5.0

    def test_manhattan_dominates_euclidean(self):
        a, b = Point(0.0, 0.0), Point(5.0, 12.0)
        assert a.manhattan_to(b) >= a.distance_to(b)


class TestConstruction:
    def test_immutability(self):
        p = Point(1.0, 2.0)
        with pytest.raises(AttributeError):
            p.x = 3.0

    def test_hashable_and_equal(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert len({Point(1.0, 2.0), Point(1.0, 2.0)}) == 1

    def test_ordering_is_lexicographic(self):
        assert Point(1.0, 9.0) < Point(2.0, 0.0)
        assert Point(1.0, 1.0) < Point(1.0, 2.0)

    def test_iteration_and_tuple(self):
        assert tuple(Point(3.0, 4.0)) == (3.0, 4.0)
        assert Point(3.0, 4.0).as_tuple() == (3.0, 4.0)


class TestMovement:
    def test_translate(self):
        assert Point(1.0, 1.0).translate(2.0, -1.0) == Point(3.0, 0.0)

    def test_midpoint(self):
        assert Point(0.0, 0.0).midpoint(Point(4.0, 6.0)) == Point(2.0, 3.0)

    def test_towards_partial(self):
        moved = Point(0.0, 0.0).towards(Point(10.0, 0.0), 4.0)
        assert moved == Point(4.0, 0.0)

    def test_towards_never_overshoots(self):
        target = Point(3.0, 4.0)
        assert Point(0.0, 0.0).towards(target, 100.0) == target

    def test_towards_zero_separation(self):
        p = Point(1.0, 1.0)
        assert p.towards(p, 5.0) == p

    def test_towards_diagonal_preserves_distance(self):
        start, target = Point(0.0, 0.0), Point(30.0, 40.0)
        moved = start.towards(target, 10.0)
        assert math.isclose(start.distance_to(moved), 10.0)


class TestCentroid:
    def test_single_point(self):
        assert centroid([Point(2.0, 3.0)]) == Point(2.0, 3.0)

    def test_square_centroid(self):
        pts = [Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)]
        assert centroid(pts) == Point(1.0, 1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one point"):
            centroid([])
