"""Unit tests for repro.geometry.grid_index."""

import pytest

from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point


def brute_count(points, center, radius):
    return sum(1 for p in points if p.distance_to(center) <= radius)


class TestConstruction:
    def test_len(self):
        index = GridIndex([Point(0, 0), Point(1, 1)], cell_size=10.0)
        assert len(index) == 2

    def test_empty_index(self):
        index = GridIndex([], cell_size=10.0)
        assert index.count_within(Point(0, 0), 100.0) == 0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            GridIndex([Point(0, 0)], cell_size=0.0)


class TestQueries:
    def test_inclusive_boundary(self):
        index = GridIndex([Point(10.0, 0.0)], cell_size=10.0)
        assert index.count_within(Point(0.0, 0.0), 10.0) == 1
        assert index.count_within(Point(0.0, 0.0), 9.999) == 0

    def test_negative_radius_raises(self):
        index = GridIndex([Point(0, 0)], cell_size=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            index.count_within(Point(0, 0), -1.0)

    def test_zero_radius_exact_hit(self):
        index = GridIndex([Point(5.0, 5.0)], cell_size=1.0)
        assert index.count_within(Point(5.0, 5.0), 0.0) == 1
        assert index.count_within(Point(5.1, 5.0), 0.0) == 0

    def test_query_returns_indices(self):
        points = [Point(0, 0), Point(100, 100), Point(1, 1)]
        index = GridIndex(points, cell_size=10.0)
        assert sorted(index.query(Point(0, 0), 5.0)) == [0, 2]

    def test_negative_coordinates(self):
        points = [Point(-15.0, -15.0), Point(-14.0, -14.0), Point(20.0, 20.0)]
        index = GridIndex(points, cell_size=10.0)
        assert index.count_within(Point(-15.0, -15.0), 5.0) == 2

    def test_radius_larger_than_cell(self):
        # Radius may exceed cell_size; the index must widen its scan.
        points = [Point(float(x), 0.0) for x in range(0, 100, 10)]
        index = GridIndex(points, cell_size=10.0)
        assert index.count_within(Point(0.0, 0.0), 45.0) == 5

    def test_matches_brute_force_on_random_cloud(self, rng):
        points = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 1000, size=(300, 2))
        ]
        index = GridIndex(points, cell_size=100.0)
        for _ in range(25):
            cx, cy = rng.uniform(0, 1000, size=2)
            center = Point(float(cx), float(cy))
            assert index.count_within(center, 100.0) == brute_count(
                points, center, 100.0
            )

    def test_counts_for_vector(self):
        points = [Point(0, 0), Point(50, 0), Point(100, 0)]
        index = GridIndex(points, cell_size=60.0)
        counts = index.counts_for([Point(0, 0), Point(100, 0)], 60.0)
        assert counts == [2, 2]

    def test_duplicate_points_counted_individually(self):
        index = GridIndex([Point(1, 1)] * 4, cell_size=10.0)
        assert index.count_within(Point(1, 1), 1.0) == 4
