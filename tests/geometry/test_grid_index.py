"""Unit tests for repro.geometry.grid_index."""

import pytest

from repro.geometry.grid_index import (
    GridIndex,
    IncrementalNeighbourCounter,
    bulk_counts,
)
from repro.geometry.point import Point


def brute_count(points, center, radius):
    return sum(1 for p in points if p.distance_to(center) <= radius)


class TestConstruction:
    def test_len(self):
        index = GridIndex([Point(0, 0), Point(1, 1)], cell_size=10.0)
        assert len(index) == 2

    def test_empty_index(self):
        index = GridIndex([], cell_size=10.0)
        assert index.count_within(Point(0, 0), 100.0) == 0

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            GridIndex([Point(0, 0)], cell_size=0.0)


class TestQueries:
    def test_inclusive_boundary(self):
        index = GridIndex([Point(10.0, 0.0)], cell_size=10.0)
        assert index.count_within(Point(0.0, 0.0), 10.0) == 1
        assert index.count_within(Point(0.0, 0.0), 9.999) == 0

    def test_negative_radius_raises(self):
        index = GridIndex([Point(0, 0)], cell_size=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            index.count_within(Point(0, 0), -1.0)

    def test_zero_radius_exact_hit(self):
        index = GridIndex([Point(5.0, 5.0)], cell_size=1.0)
        assert index.count_within(Point(5.0, 5.0), 0.0) == 1
        assert index.count_within(Point(5.1, 5.0), 0.0) == 0

    def test_query_returns_indices(self):
        points = [Point(0, 0), Point(100, 100), Point(1, 1)]
        index = GridIndex(points, cell_size=10.0)
        assert sorted(index.query(Point(0, 0), 5.0)) == [0, 2]

    def test_negative_coordinates(self):
        points = [Point(-15.0, -15.0), Point(-14.0, -14.0), Point(20.0, 20.0)]
        index = GridIndex(points, cell_size=10.0)
        assert index.count_within(Point(-15.0, -15.0), 5.0) == 2

    def test_radius_larger_than_cell(self):
        # Radius may exceed cell_size; the index must widen its scan.
        points = [Point(float(x), 0.0) for x in range(0, 100, 10)]
        index = GridIndex(points, cell_size=10.0)
        assert index.count_within(Point(0.0, 0.0), 45.0) == 5

    def test_matches_brute_force_on_random_cloud(self, rng):
        points = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 1000, size=(300, 2))
        ]
        index = GridIndex(points, cell_size=100.0)
        for _ in range(25):
            cx, cy = rng.uniform(0, 1000, size=2)
            center = Point(float(cx), float(cy))
            assert index.count_within(center, 100.0) == brute_count(
                points, center, 100.0
            )

    def test_counts_for_vector(self):
        points = [Point(0, 0), Point(50, 0), Point(100, 0)]
        index = GridIndex(points, cell_size=60.0)
        counts = index.counts_for([Point(0, 0), Point(100, 0)], 60.0)
        assert counts == [2, 2]

    def test_duplicate_points_counted_individually(self):
        index = GridIndex([Point(1, 1)] * 4, cell_size=10.0)
        assert index.count_within(Point(1, 1), 1.0) == 4


class TestBulkCounts:
    def test_matches_grid_index_on_random_cloud(self, rng):
        points = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 1000, size=(300, 2))
        ]
        centers = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 1000, size=(40, 2))
        ]
        index = GridIndex(points, cell_size=100.0)
        assert bulk_counts(points, centers, 100.0).tolist() == index.counts_for(
            centers, 100.0
        )

    def test_inclusive_boundary(self):
        counts = bulk_counts([Point(10.0, 0.0)], [Point(0.0, 0.0)], 10.0)
        assert counts.tolist() == [1]

    def test_negative_coordinates(self):
        points = [Point(-15.0, -15.0), Point(-14.0, -14.0), Point(20.0, 20.0)]
        assert bulk_counts(points, [Point(-15.0, -15.0)], 5.0).tolist() == [2]

    def test_empty_points_or_centers(self):
        assert bulk_counts([], [Point(0, 0)], 10.0).tolist() == [0]
        assert bulk_counts([Point(0, 0)], [], 10.0).tolist() == []

    def test_non_positive_radius_raises(self):
        with pytest.raises(ValueError, match="positive"):
            bulk_counts([Point(0, 0)], [Point(0, 0)], 0.0)


class TestIncrementalNeighbourCounter:
    def rebuild(self, counter, centers):
        """The from-scratch answer the counter must stay bitwise equal to."""
        return bulk_counts(counter._points, centers, counter.radius).tolist()

    def test_counts_match_rebuild_across_partial_moves(self, rng):
        points = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 1000, size=(200, 2))
        ]
        centers = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 1000, size=(30, 2))
        ]
        counter = IncrementalNeighbourCounter(points, radius=100.0)
        counter.prime(centers)
        for _ in range(5):
            # Move ~10 % of the population: exercises the delta path.
            rows = sorted(rng.choice(len(points), size=20, replace=False))
            old = [counter._points[r] for r in rows]
            new = [
                Point(float(x), float(y))
                for x, y in rng.uniform(0, 1000, size=(len(rows), 2))
            ]
            counter.apply_moves(rows, old, new)
            assert counter.counts_for(centers) == self.rebuild(counter, centers)

    def test_full_rebuild_path_matches(self, rng):
        points = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 500, size=(60, 2))
        ]
        centers = [Point(100.0, 100.0), Point(400.0, 400.0)]
        counter = IncrementalNeighbourCounter(points, radius=80.0)
        counter.prime(centers)
        # Move everyone: at >= FULL_REBUILD_FRACTION the counter rebuilds.
        rows = list(range(len(points)))
        old = list(counter._points)
        new = [
            Point(float(x), float(y))
            for x, y in rng.uniform(0, 500, size=(len(points), 2))
        ]
        counter.apply_moves(rows, old, new)
        assert counter.counts_for(centers) == self.rebuild(counter, centers)

    def test_prime_is_idempotent(self):
        points = [Point(0, 0), Point(5, 0)]
        counter = IncrementalNeighbourCounter(points, radius=10.0)
        center = Point(1.0, 0.0)
        counter.prime([center])
        counter.prime([center, center])
        assert counter.counts_for([center]) == [2]

    def test_unseen_center_primed_on_query(self):
        counter = IncrementalNeighbourCounter([Point(0, 0)], radius=10.0)
        assert counter.counts_for([Point(3.0, 4.0)]) == [1]

    def test_counts_array_shape(self):
        counter = IncrementalNeighbourCounter([Point(0, 0)], radius=10.0)
        counts = counter.counts_array([Point(0, 0), Point(100, 100)])
        assert counts.tolist() == [1, 0]

    def test_non_positive_radius_raises(self):
        with pytest.raises(ValueError, match="positive"):
            IncrementalNeighbourCounter([Point(0, 0)], radius=0.0)
