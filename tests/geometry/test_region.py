"""Unit tests for repro.geometry.region."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.region import RectRegion


class TestConstruction:
    def test_square(self):
        region = RectRegion.square(3000.0)
        assert region.width == 3000.0
        assert region.height == 3000.0
        assert region.area == 9_000_000.0

    def test_square_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RectRegion.square(0.0)
        with pytest.raises(ValueError, match="positive"):
            RectRegion.square(-5.0)

    def test_degenerate_rect_rejected(self):
        with pytest.raises(ValueError, match="degenerate"):
            RectRegion(10.0, 0.0, 0.0, 10.0)

    def test_zero_area_rect_allowed(self):
        # A degenerate-but-ordered rectangle (a point) is permitted.
        region = RectRegion(1.0, 1.0, 1.0, 1.0)
        assert region.area == 0.0

    def test_center_and_diagonal(self):
        region = RectRegion.square(100.0)
        assert region.center == Point(50.0, 50.0)
        assert region.diagonal == pytest.approx(100.0 * np.sqrt(2.0))


class TestContainsAndClamp:
    def test_contains_interior_and_boundary(self):
        region = RectRegion.square(10.0)
        assert region.contains(Point(5.0, 5.0))
        assert region.contains(Point(0.0, 0.0))
        assert region.contains(Point(10.0, 10.0))

    def test_excludes_exterior(self):
        region = RectRegion.square(10.0)
        assert not region.contains(Point(-0.1, 5.0))
        assert not region.contains(Point(5.0, 10.1))

    def test_clamp_interior_is_identity(self):
        region = RectRegion.square(10.0)
        assert region.clamp(Point(3.0, 4.0)) == Point(3.0, 4.0)

    def test_clamp_projects_outside_points(self):
        region = RectRegion.square(10.0)
        assert region.clamp(Point(-5.0, 20.0)) == Point(0.0, 10.0)
        assert region.contains(region.clamp(Point(999.0, -999.0)))


class TestSampling:
    def test_sample_count_and_containment(self, rng):
        region = RectRegion.square(500.0)
        points = region.sample(rng, 200)
        assert len(points) == 200
        assert all(region.contains(p) for p in points)

    def test_sample_zero(self, rng):
        assert RectRegion.square(10.0).sample(rng, 0) == []

    def test_sample_negative_raises(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            RectRegion.square(10.0).sample(rng, -1)

    def test_sample_deterministic_per_seed(self):
        region = RectRegion.square(100.0)
        a = region.sample(np.random.Generator(np.random.PCG64(5)), 10)
        b = region.sample(np.random.Generator(np.random.PCG64(5)), 10)
        assert a == b

    def test_sample_roughly_uniform(self, rng):
        region = RectRegion.square(100.0)
        points = region.sample(rng, 4000)
        left = sum(1 for p in points if p.x < 50.0)
        # Binomial(4000, 0.5): 5 sigma is about 158.
        assert abs(left - 2000) < 200


class TestClusterSampling:
    def test_cluster_containment(self, rng):
        region = RectRegion.square(100.0)
        points = region.sample_cluster(rng, Point(95.0, 95.0), 30.0, 100)
        assert len(points) == 100
        assert all(region.contains(p) for p in points)

    def test_cluster_concentrates(self, rng):
        region = RectRegion.square(1000.0)
        center = Point(500.0, 500.0)
        points = region.sample_cluster(rng, center, 50.0, 200)
        mean_distance = np.mean([p.distance_to(center) for p in points])
        # Rayleigh mean = spread * sqrt(pi/2) ~ 62.7; allow generous slack.
        assert mean_distance < 150.0

    def test_negative_spread_raises(self, rng):
        with pytest.raises(ValueError, match="non-negative"):
            RectRegion.square(10.0).sample_cluster(rng, Point(5, 5), -1.0, 3)

    def test_zero_spread_pins_to_center(self, rng):
        region = RectRegion.square(10.0)
        points = region.sample_cluster(rng, Point(5.0, 5.0), 0.0, 5)
        assert all(p == Point(5.0, 5.0) for p in points)
