"""Unit tests for repro.world.user."""

import pytest

from repro.geometry.point import Point
from tests.conftest import make_user


class TestValidation:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="user_id"):
            make_user(user_id=-1)

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError, match="speed"):
            make_user(speed=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="cost_per_meter"):
            make_user(cost_per_meter=-0.001)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="time_budget"):
            make_user(time_budget=-1.0)


class TestBudgetGeometry:
    def test_max_travel_distance(self):
        user = make_user(speed=2.0, time_budget=900.0)
        assert user.max_travel_distance == 1800.0

    def test_travel_time_and_cost(self):
        user = make_user(speed=2.0, cost_per_meter=0.002)
        assert user.travel_time(500.0) == 250.0
        assert user.travel_cost(500.0) == 1.0

    def test_home_defaults_to_initial_location(self):
        user = make_user(x=7.0, y=9.0)
        assert user.home == Point(7.0, 9.0)
        user.location = Point(0.0, 0.0)
        assert user.home == Point(7.0, 9.0)


class TestAccounting:
    def test_fresh_user_has_zero_profit(self):
        user = make_user()
        assert user.total_profit == 0.0
        assert user.profit_in_round(3) == 0.0

    def test_record_round_accumulates(self):
        user = make_user()
        user.record_round(1, reward=5.0, cost=2.0)
        user.record_round(2, reward=1.0, cost=3.0)
        assert user.total_reward == 6.0
        assert user.total_cost == 5.0
        assert user.total_profit == 1.0
        assert user.profit_in_round(1) == 3.0
        assert user.profit_in_round(2) == -2.0

    def test_same_round_recorded_twice_merges(self):
        user = make_user()
        user.record_round(1, reward=1.0, cost=0.5)
        user.record_round(1, reward=2.0, cost=0.0)
        assert user.profit_in_round(1) == 2.5

    def test_invalid_round_rejected(self):
        user = make_user()
        with pytest.raises(ValueError, match="round_no"):
            user.record_round(0, reward=1.0, cost=0.0)

    def test_negative_amounts_rejected(self):
        user = make_user()
        with pytest.raises(ValueError, match="non-negative"):
            user.record_round(1, reward=-1.0, cost=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            user.record_round(1, reward=0.0, cost=-1.0)
