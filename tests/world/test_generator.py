"""Unit tests for repro.world.generator."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.region import RectRegion
from repro.world.generator import World, WorldGenerator, default_generator
from tests.conftest import make_task, make_user


def generator(n_tasks=10, n_users=20, side=1000.0):
    return WorldGenerator(
        region=RectRegion.square(side),
        n_tasks=n_tasks,
        n_users=n_users,
        required_measurements=5,
        deadline_range=(3, 9),
        user_speed=2.0,
        user_cost_per_meter=0.002,
        user_time_budget=600.0,
    )


class TestValidation:
    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError, match="n_tasks"):
            generator(n_tasks=0)
        with pytest.raises(ValueError, match="n_users"):
            generator(n_users=0)

    def test_bad_deadline_range(self):
        with pytest.raises(ValueError, match="deadline_range"):
            WorldGenerator(
                region=RectRegion.square(100.0),
                n_tasks=1, n_users=1, required_measurements=1,
                deadline_range=(5, 3),
                user_speed=2.0, user_cost_per_meter=0.002, user_time_budget=60.0,
            )

    def test_world_rejects_out_of_region_entities(self):
        region = RectRegion.square(100.0)
        with pytest.raises(ValueError, match="outside"):
            World(region, [make_task(x=500.0, y=500.0)], [make_user()])
        with pytest.raises(ValueError, match="outside"):
            World(region, [make_task(x=50.0, y=50.0)], [make_user(x=-1.0)])


class TestUniform:
    def test_counts_and_containment(self, rng):
        world = generator().uniform(rng)
        assert len(world.tasks) == 10
        assert len(world.users) == 20
        assert all(world.region.contains(t.location) for t in world.tasks)
        assert all(world.region.contains(u.location) for u in world.users)

    def test_ids_are_sequential(self, rng):
        world = generator().uniform(rng)
        assert [t.task_id for t in world.tasks] == list(range(10))
        assert [u.user_id for u in world.users] == list(range(20))

    def test_deadlines_within_range(self, rng):
        world = generator().uniform(rng)
        assert all(3 <= t.deadline <= 9 for t in world.tasks)

    def test_deadline_range_inclusive_both_ends(self):
        # Across many draws both endpoints must appear.
        deadlines = set()
        gen = generator(n_tasks=50)
        for seed in range(20):
            world = gen.uniform(np.random.Generator(np.random.PCG64(seed)))
            deadlines.update(t.deadline for t in world.tasks)
        assert 3 in deadlines and 9 in deadlines

    def test_user_parameters_propagate(self, rng):
        world = generator().uniform(rng)
        user = world.users[0]
        assert user.speed == 2.0
        assert user.cost_per_meter == 0.002
        assert user.time_budget == 600.0

    def test_total_required_measurements(self, rng):
        world = generator().uniform(rng)
        assert world.total_required_measurements == 50

    def test_deterministic_per_seed(self):
        gen = generator()
        a = gen.uniform(np.random.Generator(np.random.PCG64(3)))
        b = gen.uniform(np.random.Generator(np.random.PCG64(3)))
        assert [t.location for t in a.tasks] == [t.location for t in b.tasks]
        assert [u.location for u in a.users] == [u.location for u in b.users]


class TestClustered:
    def test_counts_and_containment(self, rng):
        world = generator(n_tasks=10, n_users=30).clustered(rng)
        assert len(world.tasks) == 10
        assert len(world.users) == 30
        assert all(world.region.contains(t.location) for t in world.tasks)

    def test_remote_fraction_bounds(self, rng):
        with pytest.raises(ValueError, match="remote_task_fraction"):
            generator().clustered(rng, remote_task_fraction=1.5)
        with pytest.raises(ValueError, match="n_clusters"):
            generator().clustered(rng, n_clusters=0)

    def test_remote_tasks_are_far_from_users(self, rng):
        world = generator(n_tasks=10, n_users=60, side=3000.0).clustered(
            rng, n_clusters=2, cluster_spread=150.0, remote_task_fraction=0.3
        )
        # The 3 remote tasks are the first three; their nearest user should
        # be far compared to clustered tasks' nearest users.
        def nearest_user(task):
            return min(task.location.distance_to(u.location) for u in world.users)

        remote = [nearest_user(t) for t in world.tasks[:3]]
        near = [nearest_user(t) for t in world.tasks[3:]]
        assert min(remote) > np.median(near)

    def test_zero_remote_fraction(self, rng):
        world = generator(n_tasks=8).clustered(rng, remote_task_fraction=0.0)
        assert len(world.tasks) == 8


class TestDefaultGenerator:
    def test_paper_constants(self):
        gen = default_generator(n_users=100)
        assert gen.n_tasks == 20
        assert gen.required_measurements == 20
        assert gen.deadline_range == (5, 15)
        assert gen.user_speed == 2.0
        assert gen.user_cost_per_meter == 0.002
        assert gen.region.width == 3000.0

    def test_helpers(self, rng):
        world = default_generator(n_users=10).uniform(rng)
        assert len(world.task_locations()) == 20
        assert len(world.user_locations()) == 10
        assert isinstance(world.task_locations()[0], Point)
