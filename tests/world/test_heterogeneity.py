"""Tests for heterogeneous user populations (WorldGenerator.heterogeneity)."""

import numpy as np
import pytest

from repro.geometry.region import RectRegion
from repro.world.generator import WorldGenerator


def generator(heterogeneity):
    return WorldGenerator(
        region=RectRegion.square(1000.0),
        n_tasks=5,
        n_users=50,
        required_measurements=3,
        deadline_range=(3, 8),
        user_speed=2.0,
        user_cost_per_meter=0.002,
        user_time_budget=600.0,
        heterogeneity=heterogeneity,
    )


class TestValidation:
    def test_range_enforced(self):
        with pytest.raises(ValueError, match="heterogeneity"):
            generator(-0.1)
        with pytest.raises(ValueError, match="heterogeneity"):
            generator(1.0)

    def test_zero_is_valid(self):
        assert generator(0.0).heterogeneity == 0.0


class TestDraws:
    def test_zero_spread_gives_identical_users(self, rng):
        world = generator(0.0).uniform(rng)
        assert {u.speed for u in world.users} == {2.0}
        assert {u.cost_per_meter for u in world.users} == {0.002}
        assert {u.time_budget for u in world.users} == {600.0}

    def test_positive_spread_varies_users(self, rng):
        world = generator(0.5).uniform(rng)
        assert len({u.speed for u in world.users}) > 1
        assert len({u.cost_per_meter for u in world.users}) > 1
        assert len({u.time_budget for u in world.users}) > 1

    def test_draws_within_bounds(self, rng):
        world = generator(0.25).uniform(rng)
        for user in world.users:
            assert 1.5 <= user.speed <= 2.5
            assert 0.0015 <= user.cost_per_meter <= 0.0025
            assert 450.0 <= user.time_budget <= 750.0

    def test_zero_spread_reproduces_legacy_worlds(self):
        """h = 0 must consume no extra randomness (seed compatibility)."""
        seed_a = np.random.Generator(np.random.PCG64(5))
        seed_b = np.random.Generator(np.random.PCG64(5))
        legacy = generator(0.0).uniform(seed_a)
        again = generator(0.0).uniform(seed_b)
        assert [u.location for u in legacy.users] == [u.location for u in again.users]

    def test_clustered_layout_supports_heterogeneity(self, rng):
        world = generator(0.3).clustered(rng)
        assert len({u.speed for u in world.users}) > 1


class TestSimulationIntegration:
    def test_config_threads_heterogeneity(self):
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import simulate

        config = SimulationConfig(
            n_users=15, n_tasks=5, rounds=5, required_measurements=3,
            area_side=1500.0, budget=150.0, heterogeneity=0.4, seed=6,
        )
        result = simulate(config)
        assert len({u.speed for u in result.world.users}) > 1
        assert result.rounds_played >= 1

    def test_users_respect_their_own_budgets(self):
        from repro.simulation.config import SimulationConfig
        from repro.simulation.engine import simulate

        config = SimulationConfig(
            n_users=15, n_tasks=5, rounds=5, required_measurements=3,
            area_side=1500.0, budget=150.0, heterogeneity=0.4, seed=6,
        )
        result = simulate(config)
        budgets = {u.user_id: u.max_travel_distance for u in result.world.users}
        for record in result.rounds:
            for user_record in record.user_records:
                assert user_record.distance <= budgets[user_record.user_id] + 1e-6

    def test_heterogeneity_ablation_runs(self):
        from repro.experiments.ablations import heterogeneity_ablation

        result = heterogeneity_ablation(spreads=(0.0, 0.5), repetitions=1, n_users=10)
        assert result.metadata["variants"] == ["h=0", "h=0.5"]
