"""Unit tests for repro.world.task."""

import pytest

from repro.world.task import TaskStatus
from tests.conftest import make_task


class TestValidation:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="task_id"):
            make_task(task_id=-1)

    def test_zero_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            make_task(deadline=0)

    def test_zero_required_rejected(self):
        with pytest.raises(ValueError, match="required_measurements"):
            make_task(required=0)


class TestProgress:
    def test_fresh_task_state(self):
        task = make_task(required=3)
        assert task.received == 0
        assert task.progress == 0.0
        assert task.remaining == 3
        assert task.is_active
        assert not task.was_selected

    def test_progress_after_measurements(self):
        task = make_task(required=4)
        task.record_measurement(user_id=1, round_no=1)
        task.record_measurement(user_id=2, round_no=1)
        assert task.received == 2
        assert task.progress == 0.5
        assert task.remaining == 2
        assert task.was_selected

    def test_measurements_tracked_per_round(self):
        task = make_task(required=5)
        task.record_measurement(1, round_no=1)
        task.record_measurement(2, round_no=3)
        task.record_measurement(3, round_no=3)
        assert task.measurements_by_round == {1: 1, 3: 2}


class TestAcceptance:
    def test_duplicate_contributor_rejected(self):
        task = make_task(required=3)
        task.record_measurement(7, round_no=1)
        assert not task.can_accept(7)
        with pytest.raises(ValueError, match="cannot accept"):
            task.record_measurement(7, round_no=2)

    def test_other_user_still_accepted(self):
        task = make_task(required=3)
        task.record_measurement(7, round_no=1)
        assert task.can_accept(8)

    def test_completion_at_required_count(self):
        task = make_task(required=2)
        task.record_measurement(1, round_no=1)
        assert task.status is TaskStatus.ACTIVE
        task.record_measurement(2, round_no=2)
        assert task.status is TaskStatus.COMPLETED
        assert task.completed_round == 2
        assert not task.can_accept(3)

    def test_full_task_rejects_even_new_users(self):
        task = make_task(required=1)
        task.record_measurement(1, round_no=1)
        with pytest.raises(ValueError, match="cannot accept"):
            task.record_measurement(2, round_no=1)


class TestDeadline:
    def test_expires_after_deadline(self):
        task = make_task(deadline=3)
        assert not task.expire_if_due(next_round=3)
        assert task.is_active
        assert task.expire_if_due(next_round=4)
        assert task.status is TaskStatus.EXPIRED

    def test_expire_is_idempotent(self):
        task = make_task(deadline=1)
        assert task.expire_if_due(next_round=2)
        assert not task.expire_if_due(next_round=3)
        assert task.status is TaskStatus.EXPIRED

    def test_completed_task_does_not_expire(self):
        task = make_task(deadline=1, required=1)
        task.record_measurement(1, round_no=1)
        assert not task.expire_if_due(next_round=5)
        assert task.status is TaskStatus.COMPLETED

    def test_received_by_deadline_ignores_late_measurements(self):
        task = make_task(deadline=2, required=10)
        task.record_measurement(1, round_no=1)
        task.record_measurement(2, round_no=2)
        task.record_measurement(3, round_no=3)  # late (engine would not, but the metric must filter)
        assert task.received_by_deadline() == 2
        assert task.received == 3
