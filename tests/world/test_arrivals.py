"""Tests for staggered task arrivals (release rounds)."""

import numpy as np
import pytest

from repro.geometry.region import RectRegion
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate
from repro.world.generator import WorldGenerator
from tests.conftest import make_task


def generator(release_range=(1, 1), deadline_range=(3, 8)):
    return WorldGenerator(
        region=RectRegion.square(1000.0),
        n_tasks=30,
        n_users=10,
        required_measurements=3,
        deadline_range=deadline_range,
        user_speed=2.0,
        user_cost_per_meter=0.002,
        user_time_budget=600.0,
        release_range=release_range,
    )


class TestTaskReleaseField:
    def test_default_release_is_round_one(self):
        assert make_task().release_round == 1

    def test_release_after_deadline_rejected(self):
        with pytest.raises(ValueError, match="release_round"):
            make_task(deadline=3).__class__(
                task_id=0, location=make_task().location, deadline=3,
                required_measurements=1, release_round=4,
            )

    def test_is_published_gates_on_release(self):
        task = make_task(deadline=10)
        task.release_round = 3
        assert not task.is_published(2)
        assert task.is_published(3)
        assert task.is_published(10)

    def test_completed_task_not_published(self):
        task = make_task(required=1)
        task.record_measurement(0, round_no=1)
        assert not task.is_published(2)


class TestGeneratorReleases:
    def test_default_draws_no_releases(self):
        a = generator((1, 1)).uniform(np.random.Generator(np.random.PCG64(4)))
        assert all(t.release_round == 1 for t in a.tasks)

    def test_legacy_seed_compatibility(self):
        """release_range=(1,1) must reproduce pre-arrival worlds."""
        a = generator((1, 1)).uniform(np.random.Generator(np.random.PCG64(4)))
        b = generator((1, 1)).uniform(np.random.Generator(np.random.PCG64(4)))
        assert [t.deadline for t in a.tasks] == [t.deadline for t in b.tasks]
        assert [u.location for u in a.users] == [u.location for u in b.users]

    def test_staggered_releases_drawn_in_range(self, rng):
        world = generator((2, 6)).uniform(rng)
        releases = [t.release_round for t in world.tasks]
        assert min(releases) >= 2
        assert max(releases) <= 6
        assert len(set(releases)) > 1

    def test_deadline_is_release_plus_duration(self, rng):
        world = generator((2, 6), deadline_range=(3, 5)).uniform(rng)
        for task in world.tasks:
            duration = task.deadline - task.release_round + 1
            assert 3 <= duration <= 5

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError, match="release_range"):
            generator((0, 3))
        with pytest.raises(ValueError, match="release_range"):
            generator((4, 2))


class TestEngineArrivals:
    @pytest.fixture
    def config(self):
        return SimulationConfig(
            n_users=15, n_tasks=8, rounds=12, required_measurements=3,
            deadline_range=(3, 5), release_range=(1, 6),
            area_side=1500.0, budget=200.0, seed=9,
        )

    def test_unreleased_tasks_not_priced(self, config):
        engine = SimulationEngine(config)
        late = [t.task_id for t in engine.world.tasks if t.release_round > 1]
        if not late:
            pytest.skip("seed produced no late releases")
        prices = engine.published_rewards()
        assert not (set(late) & set(prices))

    def test_no_measurement_before_release(self, config):
        result = simulate(config)
        releases = {t.task_id: t.release_round for t in result.world.tasks}
        for record in result.rounds:
            for event in record.measurements:
                assert event.round_no >= releases[event.task_id]

    def test_late_tasks_eventually_published_and_served(self, config):
        result = simulate(config)
        late_served = [
            t for t in result.world.tasks if t.release_round > 1 and t.received > 0
        ]
        assert late_served  # the crowd picks up newly arriving work

    def test_invariants_still_hold(self, config):
        result = simulate(config)
        assert result.total_paid <= config.budget + 1e-9
        for task in result.world.tasks:
            assert task.received <= task.required_measurements
            for round_no in task.measurements_by_round:
                assert task.release_round <= round_no <= task.deadline
