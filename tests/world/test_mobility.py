"""Unit tests for repro.world.mobility."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.region import RectRegion
from repro.world.mobility import (
    FollowPathMobility,
    RandomWaypointMobility,
    StationaryMobility,
    make_mobility,
)
from tests.conftest import make_user


@pytest.fixture
def square():
    return RectRegion.square(1000.0)


class TestStationary:
    def test_returns_home_after_travel(self, square, rng):
        user = make_user(x=100.0, y=100.0)
        path = [Point(500.0, 500.0), Point(700.0, 700.0)]
        assert StationaryMobility().next_position(user, path, square, rng) == user.home

    def test_returns_home_even_when_idle(self, square, rng):
        user = make_user(x=100.0, y=100.0)
        user.location = Point(300.0, 300.0)
        assert StationaryMobility().next_position(user, [], square, rng) == user.home


class TestFollowPath:
    def test_ends_at_last_task(self, square, rng):
        user = make_user()
        path = [Point(10.0, 10.0), Point(20.0, 5.0)]
        assert FollowPathMobility().next_position(user, path, square, rng) == path[-1]

    def test_stays_put_when_idle(self, square, rng):
        user = make_user(x=42.0, y=24.0)
        assert FollowPathMobility().next_position(user, [], square, rng) == user.location


class TestRandomWaypoint:
    def test_result_stays_in_region(self, square, rng):
        policy = RandomWaypointMobility()
        user = make_user(x=900.0, y=900.0)
        for _ in range(20):
            position = policy.next_position(user, [], square, rng)
            assert square.contains(position)

    def test_moves_at_most_wander_fraction(self, square, rng):
        policy = RandomWaypointMobility(wander_fraction=0.25)
        user = make_user(x=500.0, y=500.0, speed=2.0, time_budget=900.0)
        limit = 0.25 * user.max_travel_distance
        for _ in range(20):
            position = policy.next_position(user, [], square, rng)
            assert user.location.distance_to(position) <= limit + 1e-9

    def test_starts_from_path_end(self, square, rng):
        policy = RandomWaypointMobility(wander_fraction=0.0)
        user = make_user()
        path_end = Point(321.0, 123.0)
        assert policy.next_position(user, [path_end], square, rng) == path_end

    def test_wander_fraction_validated(self):
        with pytest.raises(ValueError, match="wander_fraction"):
            RandomWaypointMobility(wander_fraction=1.5)

    def test_deterministic_per_seed(self, square):
        user = make_user(x=500.0, y=500.0)
        a = RandomWaypointMobility().next_position(
            user, [], square, np.random.Generator(np.random.PCG64(9))
        )
        b = RandomWaypointMobility().next_position(
            user, [], square, np.random.Generator(np.random.PCG64(9))
        )
        assert a == b


class TestFactory:
    def test_all_names_resolve(self):
        for name in ("stationary", "follow-path", "random-waypoint"):
            assert make_mobility(name).name == name

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="follow-path"):
            make_mobility("teleport")
