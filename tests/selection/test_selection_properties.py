"""Property-based tests for the selectors (hypothesis).

The central claims of Section V, stated as properties over random
instances:

- the DP selector is exactly optimal (matches the brute-force oracle),
- greedy and greedy+2-opt never beat the optimum,
- every selector respects the travel budget and the rational-user rule.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.brute_force import BruteForceSelector
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.greedy import GreedySelector
from repro.selection.problem import TaskSelectionProblem
from repro.selection.two_opt import GreedyTwoOptSelector

coordinate = st.floats(min_value=-800.0, max_value=800.0)
reward = st.floats(min_value=0.1, max_value=3.0)

candidate_lists = st.lists(
    st.tuples(coordinate, coordinate, reward), min_size=0, max_size=6
).map(
    lambda raw: [
        CandidateTask(task_id=i, location=Point(x, y), reward=r)
        for i, (x, y, r) in enumerate(raw)
    ]
)

budgets = st.floats(min_value=100.0, max_value=3000.0)


def build(candidates, budget):
    return TaskSelectionProblem.build(
        origin=Point(0.0, 0.0),
        candidates=candidates,
        max_distance=budget,
        cost_per_meter=0.002,
    )


@settings(max_examples=60, deadline=None)
@given(candidate_lists, budgets)
def test_dp_matches_brute_force_exactly(candidates, budget):
    problem = build(candidates, budget)
    dp = DynamicProgrammingSelector().select(problem)
    oracle = BruteForceSelector(max_tasks=6).select(problem)
    assert math.isclose(dp.profit, oracle.profit, abs_tol=1e-7)


@settings(max_examples=60, deadline=None)
@given(candidate_lists, budgets)
def test_greedy_never_beats_dp(candidates, budget):
    problem = build(candidates, budget)
    dp = DynamicProgrammingSelector().select(problem)
    greedy = GreedySelector().select(problem)
    assert greedy.profit <= dp.profit + 1e-7


@settings(max_examples=60, deadline=None)
@given(candidate_lists, budgets)
def test_two_opt_between_greedy_and_dp(candidates, budget):
    problem = build(candidates, budget)
    dp = DynamicProgrammingSelector().select(problem)
    greedy = GreedySelector().select(problem)
    two_opt = GreedyTwoOptSelector().select(problem)
    assert greedy.profit - 1e-7 <= two_opt.profit <= dp.profit + 1e-7


@settings(max_examples=60, deadline=None)
@given(candidate_lists, budgets)
def test_all_selectors_respect_contract(candidates, budget):
    """Budget feasibility, accounting consistency, rational-user rule."""
    problem = build(candidates, budget)
    selectors = [
        DynamicProgrammingSelector(),
        GreedySelector(),
        GreedyTwoOptSelector(),
        BruteForceSelector(max_tasks=6),
    ]
    for selector in selectors:
        selection = selector.select(problem)
        assert selection.distance <= budget + 1e-6
        assert selection.is_empty or selection.profit > 0.0
        # Reported task ids must be actual candidates, without repeats.
        valid_ids = {c.task_id for c in problem.candidates}
        assert set(selection.task_ids) <= valid_ids
        # Re-evaluating the order reproduces the accounting.
        id_to_index = {c.task_id: i for i, c in enumerate(problem.candidates)}
        again = problem.evaluate([id_to_index[t] for t in selection.task_ids])
        assert math.isclose(again.distance, selection.distance, abs_tol=1e-6)
        assert math.isclose(again.reward, selection.reward, abs_tol=1e-9)


@settings(max_examples=30, deadline=None)
@given(candidate_lists)
def test_infinite_budget_dp_superset_profit(candidates):
    """Raising the budget can only improve the optimum."""
    tight = build(candidates, 500.0)
    loose = build(candidates, 5000.0)
    dp = DynamicProgrammingSelector()
    assert dp.select(loose).profit >= dp.select(tight).profit - 1e-7
