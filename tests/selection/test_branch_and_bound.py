"""Unit + property tests for the branch-and-bound selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.branch_and_bound import BranchAndBoundSelector
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.problem import TaskSelectionProblem


def build(candidates, max_distance=10_000.0, cost=0.002):
    return TaskSelectionProblem.build(Point(0, 0), candidates, max_distance, cost)


def c(task_id, x, y, reward):
    return CandidateTask(task_id=task_id, location=Point(x, y), reward=reward)


class TestBasics:
    def test_empty(self):
        assert BranchAndBoundSelector().select(build([])).is_empty

    def test_single_profitable_task(self):
        selection = BranchAndBoundSelector().select(build([c(1, 100.0, 0.0, 1.0)]))
        assert selection.task_ids == (1,)

    def test_unprofitable_task_skipped(self):
        assert BranchAndBoundSelector().select(build([c(1, 1000.0, 0.0, 1.0)])).is_empty

    def test_respects_budget(self):
        problem = build(
            [c(1, 400.0, 0.0, 5.0), c(2, -400.0, 0.0, 5.0)], max_distance=500.0
        )
        selection = BranchAndBoundSelector().select(problem)
        assert len(selection) == 1
        assert selection.distance <= 500.0

    def test_optimal_order(self):
        problem = build([c(1, 300.0, 0.0, 2.0), c(2, 100.0, 0.0, 2.0)])
        selection = BranchAndBoundSelector().select(problem)
        assert selection.task_ids == (2, 1)

    def test_min_profit_threshold(self):
        problem = build([c(1, 100.0, 0.0, 0.25)])
        assert BranchAndBoundSelector(min_profit=0.1).select(problem).is_empty

    def test_node_cap_returns_incumbent(self):
        rng = np.random.default_rng(11)
        candidates = [
            c(i, float(x), float(y), 2.0)
            for i, (x, y) in enumerate(rng.uniform(-500, 500, size=(12, 2)))
        ]
        problem = build(candidates, max_distance=3000.0)
        capped = BranchAndBoundSelector(max_nodes=50).select(problem)
        # Feasible, contract-respecting, possibly sub-optimal.
        assert capped.distance <= 3000.0 + 1e-6
        assert capped.is_empty or capped.profit > 0.0

    def test_node_cap_validated(self):
        with pytest.raises(ValueError, match="max_nodes"):
            BranchAndBoundSelector(max_nodes=0)

    def test_matches_dp_on_paper_sized_instance(self):
        rng = np.random.default_rng(12)
        candidates = [
            c(i, float(x), float(y), float(r))
            for i, ((x, y), r) in enumerate(zip(
                rng.uniform(-1500, 1500, size=(20, 2)),
                rng.choice([0.5, 1.0, 1.5, 2.0, 2.5], size=20),
            ))
        ]
        problem = build(candidates, max_distance=1800.0)
        dp = DynamicProgrammingSelector().select(problem)
        bnb = BranchAndBoundSelector().select(problem)
        assert bnb.profit == pytest.approx(dp.profit, abs=1e-9)


coordinate = st.floats(min_value=-800.0, max_value=800.0)
reward = st.floats(min_value=0.1, max_value=3.0)
candidate_lists = st.lists(
    st.tuples(coordinate, coordinate, reward), min_size=0, max_size=7
).map(
    lambda raw: [
        CandidateTask(task_id=i, location=Point(x, y), reward=r)
        for i, (x, y, r) in enumerate(raw)
    ]
)


@settings(max_examples=60, deadline=None)
@given(candidate_lists, st.floats(min_value=100.0, max_value=3000.0))
def test_bnb_matches_dp_exactly(candidates, budget):
    problem = build(candidates, budget)
    dp = DynamicProgrammingSelector().select(problem)
    bnb = BranchAndBoundSelector().select(problem)
    assert abs(bnb.profit - dp.profit) < 1e-7
    assert bnb.distance <= budget + 1e-6
