"""Unit tests for greedy + 2-opt (the extension selector)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.greedy import GreedySelector
from repro.selection.problem import TaskSelectionProblem
from repro.selection.two_opt import GreedyTwoOptSelector, improve_order


def build(candidates, max_distance=10_000.0, cost=0.002):
    return TaskSelectionProblem.build(Point(0, 0), candidates, max_distance, cost)


def c(task_id, x, y, reward):
    return CandidateTask(task_id=task_id, location=Point(x, y), reward=reward)


class TestImproveOrder:
    def test_fixes_a_crossing(self):
        # Visiting far-near-far zigzag; 2-opt must untangle to monotone.
        problem = build(
            [c(1, 100.0, 0.0, 1.0), c(2, 200.0, 0.0, 1.0), c(3, 300.0, 0.0, 1.0)]
        )
        improved = improve_order(problem, [2, 0, 1])
        assert problem.path_distance(improved) == pytest.approx(300.0)

    def test_never_increases_distance(self):
        rng = np.random.default_rng(8)
        candidates = [
            c(i, float(x), float(y), 1.0)
            for i, (x, y) in enumerate(rng.uniform(-500, 500, size=(7, 2)))
        ]
        problem = build(candidates)
        order = list(range(7))
        improved = improve_order(problem, order)
        assert problem.path_distance(improved) <= problem.path_distance(order) + 1e-9

    def test_preserves_task_set(self):
        problem = build([c(1, 10.0, 0.0, 1.0), c(2, 0.0, 10.0, 1.0), c(3, 5.0, 5.0, 1.0)])
        improved = improve_order(problem, [2, 0, 1])
        assert sorted(improved) == [0, 1, 2]

    def test_short_orders_untouched(self):
        problem = build([c(1, 10.0, 0.0, 1.0)])
        assert improve_order(problem, []) == []
        assert improve_order(problem, [0]) == [0]


class TestSelector:
    def test_empty_problem(self):
        assert GreedyTwoOptSelector().select(build([])).is_empty

    def test_at_least_greedy_profit(self):
        rng = np.random.default_rng(21)
        for trial in range(10):
            candidates = [
                c(i, float(x), float(y), reward=float(r))
                for i, ((x, y), r) in enumerate(
                    zip(rng.uniform(-700, 700, size=(8, 2)), rng.uniform(0.5, 2.5, 8))
                )
            ]
            problem = build(candidates, max_distance=2000.0)
            greedy = GreedySelector().select(problem)
            two_opt = GreedyTwoOptSelector().select(problem)
            assert two_opt.profit >= greedy.profit - 1e-9

    def test_never_beats_dp(self):
        rng = np.random.default_rng(22)
        for trial in range(10):
            candidates = [
                c(i, float(x), float(y), reward=float(r))
                for i, ((x, y), r) in enumerate(
                    zip(rng.uniform(-700, 700, size=(8, 2)), rng.uniform(0.5, 2.5, 8))
                )
            ]
            problem = build(candidates, max_distance=2000.0)
            dp = DynamicProgrammingSelector().select(problem)
            two_opt = GreedyTwoOptSelector().select(problem)
            assert two_opt.profit <= dp.profit + 1e-9

    def test_respects_budget(self):
        rng = np.random.default_rng(23)
        candidates = [
            c(i, float(x), float(y), 2.0)
            for i, (x, y) in enumerate(rng.uniform(-600, 600, size=(10, 2)))
        ]
        problem = build(candidates, max_distance=1500.0)
        selection = GreedyTwoOptSelector().select(problem)
        assert selection.distance <= 1500.0 + 1e-6

    def test_reinsertion_uses_freed_budget(self):
        """2-opt shortens the greedy path enough to afford one more task."""
        candidates = [
            c(1, 0.0, 100.0, 1.0),
            c(2, 0.0, 300.0, 1.0),
            c(3, 0.0, 200.0, 1.0),
            c(4, 0.0, 400.0, 0.9),
        ]
        problem = build(candidates, max_distance=430.0)
        greedy = GreedySelector().select(problem)
        two_opt = GreedyTwoOptSelector().select(problem)
        assert two_opt.profit >= greedy.profit

    def test_max_rounds_validated(self):
        with pytest.raises(ValueError, match="max_rounds"):
            GreedyTwoOptSelector(max_rounds=0)
