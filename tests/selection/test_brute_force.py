"""Unit tests for the brute-force oracle selector."""

import pytest

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.brute_force import BruteForceSelector
from repro.selection.problem import TaskSelectionProblem


def build(candidates, max_distance=10_000.0, cost=0.002):
    return TaskSelectionProblem.build(Point(0, 0), candidates, max_distance, cost)


def c(task_id, x, y, reward):
    return CandidateTask(task_id=task_id, location=Point(x, y), reward=reward)


class TestOracle:
    def test_empty(self):
        assert BruteForceSelector().select(build([])).is_empty

    def test_single_task(self):
        selection = BruteForceSelector().select(build([c(1, 100.0, 0.0, 1.0)]))
        assert selection.task_ids == (1,)

    def test_finds_optimal_order(self):
        problem = build([c(1, 300.0, 0.0, 1.0), c(2, 100.0, 0.0, 1.0)])
        selection = BruteForceSelector().select(problem)
        assert selection.task_ids == (2, 1)

    def test_respects_budget(self):
        problem = build(
            [c(1, 400.0, 0.0, 5.0), c(2, -400.0, 0.0, 5.0)], max_distance=500.0
        )
        selection = BruteForceSelector().select(problem)
        assert len(selection) == 1

    def test_sits_out_when_unprofitable(self):
        problem = build([c(1, 1000.0, 0.0, 1.0)])
        assert BruteForceSelector().select(problem).is_empty

    def test_size_limit_enforced(self):
        candidates = [c(i, float(10 * i + 10), 0.0, 1.0) for i in range(9)]
        with pytest.raises(ValueError, match="refuses"):
            BruteForceSelector(max_tasks=8).select(build(candidates))

    def test_invalid_limit(self):
        with pytest.raises(ValueError, match="max_tasks"):
            BruteForceSelector(max_tasks=0)

    def test_min_profit_threshold(self):
        problem = build([c(1, 100.0, 0.0, 0.25)])
        assert BruteForceSelector(min_profit=0.1).select(problem).is_empty
