"""Tests for the TimeBoundedSelector watchdog."""

import logging
import time

import pytest

from repro.geometry.point import Point
from repro.resilience.errors import ConfigError, SelectorTimeout
from repro.selection import (
    CandidateTask,
    DynamicProgrammingSelector,
    GreedySelector,
    TaskSelectionProblem,
    TimeBoundedSelector,
    make_selector,
)


@pytest.fixture
def problem():
    candidates = [
        CandidateTask(0, Point(50.0, 0.0), 4.0),
        CandidateTask(1, Point(0.0, 80.0), 6.0),
        CandidateTask(2, Point(120.0, 90.0), 9.0),
    ]
    return TaskSelectionProblem.build(
        origin=Point(0.0, 0.0),
        candidates=candidates,
        max_distance=500.0,
        cost_per_meter=0.01,
    )


class _Sleeper:
    """A selector that sleeps, then answers like greedy."""

    name = "sleeper"

    def __init__(self, seconds):
        self.seconds = seconds

    def select(self, problem):
        time.sleep(self.seconds)
        return GreedySelector().select(problem)


class _Exploder:
    name = "exploder"

    def select(self, problem):
        raise RuntimeError("kaboom")


class TestPassThrough:
    def test_inner_result_returned_within_deadline(self, problem):
        guarded = TimeBoundedSelector(DynamicProgrammingSelector(), timeout=30.0)
        direct = DynamicProgrammingSelector().select(problem)
        assert guarded.select(problem) == direct
        assert guarded.total_fallbacks == 0
        assert guarded.total_timeouts == 0

    def test_string_inner_resolved_via_factory(self, problem):
        guarded = TimeBoundedSelector("greedy", timeout=30.0)
        assert isinstance(guarded.inner, GreedySelector)
        assert guarded.select(problem) == GreedySelector().select(problem)


class TestTimeout:
    def test_breach_degrades_to_greedy(self, problem):
        guarded = TimeBoundedSelector(_Sleeper(0.5), timeout=0.02)
        assert guarded.select(problem) == GreedySelector().select(problem)
        assert guarded.total_timeouts == 1
        assert guarded.total_fallbacks == 1

    def test_breach_without_fallback_raises(self, problem):
        guarded = TimeBoundedSelector(_Sleeper(0.5), timeout=0.02, fallback=None)
        with pytest.raises(SelectorTimeout, match="_Sleeper"):
            guarded.select(problem)
        assert guarded.total_timeouts == 1
        assert guarded.total_fallbacks == 0


class TestInnerErrors:
    def test_inner_crash_degrades_when_caught(self, problem):
        guarded = TimeBoundedSelector(_Exploder(), timeout=5.0)
        assert guarded.select(problem) == GreedySelector().select(problem)
        assert guarded.total_fallbacks == 1
        assert guarded.total_timeouts == 0

    def test_inner_crash_propagates_without_fallback(self, problem):
        guarded = TimeBoundedSelector(_Exploder(), timeout=5.0, fallback=None)
        with pytest.raises(RuntimeError, match="kaboom"):
            guarded.select(problem)

    def test_inner_crash_propagates_when_not_catching(self, problem):
        guarded = TimeBoundedSelector(
            _Exploder(), timeout=5.0, catch_errors=False
        )
        with pytest.raises(RuntimeError, match="kaboom"):
            guarded.select(problem)


class TestDegradationLogging:
    def test_breach_logs_a_structured_warning(self, problem, caplog):
        guarded = TimeBoundedSelector(_Sleeper(0.5), timeout=0.02)
        with caplog.at_level(logging.WARNING, logger="repro"):
            guarded.select(problem)
        [record] = [
            r for r in caplog.records if "deadline breached" in r.message
        ]
        assert record.levelno == logging.WARNING
        assert record.name == "repro.selection.watchdog"
        assert record.selector == "_Sleeper"
        assert record.fallback == "GreedySelector"
        assert record.timeout_s == 0.02
        assert record.problem_size == problem.size
        assert record.total_timeouts == 1

    def test_caught_crash_logs_the_error(self, problem, caplog):
        guarded = TimeBoundedSelector(_Exploder(), timeout=5.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            guarded.select(problem)
        [record] = [r for r in caplog.records if "crashed" in r.message]
        assert "kaboom" in record.error

    def test_clean_select_logs_nothing(self, problem, caplog):
        guarded = TimeBoundedSelector(GreedySelector(), timeout=30.0)
        with caplog.at_level(logging.WARNING, logger="repro"):
            guarded.select(problem)
        assert not caplog.records


class TestRoundDrain:
    def test_consume_round_fallbacks_drains_and_resets(self, problem):
        guarded = TimeBoundedSelector(_Sleeper(0.5), timeout=0.02)
        guarded.select(problem)
        guarded.select(problem)
        assert guarded.consume_round_fallbacks() == 2
        assert guarded.consume_round_fallbacks() == 0
        assert guarded.total_fallbacks == 2  # lifetime counter survives


class TestConstruction:
    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigError, match="timeout"):
            TimeBoundedSelector(GreedySelector(), timeout=0.0)
        with pytest.raises(ConfigError, match="timeout"):
            TimeBoundedSelector(GreedySelector(), timeout=-1.0)

    def test_factory_builds_it(self, problem):
        guarded = make_selector("time-bounded", inner="greedy", timeout=2.0)
        assert isinstance(guarded, TimeBoundedSelector)
        assert guarded.select(problem) == GreedySelector().select(problem)
