"""Unit tests for the selector registry."""

import pytest

from repro.selection import SELECTOR_NAMES, make_selector
from repro.selection.base import Selector


class TestFactory:
    def test_all_registered_names_build(self):
        for name in SELECTOR_NAMES:
            selector = make_selector(name)
            assert isinstance(selector, Selector)
            assert selector.name == name

    def test_both_exact_solvers_registered(self):
        assert "dp" in SELECTOR_NAMES
        assert "branch-and-bound" in SELECTOR_NAMES

    def test_kwargs_forwarded(self):
        selector = make_selector("dp", max_exact_tasks=9)
        assert selector.max_exact_tasks == 9

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="greedy"):
            make_selector("oracle")
