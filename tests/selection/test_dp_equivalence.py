"""Equivalence of the vectorized DP, the reference DP, and brute force.

The vectorized :class:`~repro.selection.dp.DynamicProgrammingSelector`
must find the same optimal *profit* as the scalar
:class:`~repro.selection.reference_dp.ReferenceDPSelector` it replaced,
and both must match the exhaustive
:class:`~repro.selection.brute_force.BruteForceSelector` oracle on small
instances.  Orders may differ between solvers when several paths tie
(argmax tie-breaking is not specified), so the contract checked here is:
same profit (to float tolerance), and every returned order feasible and
self-consistent.
"""

import math

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.brute_force import BruteForceSelector
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.problem import TaskSelectionProblem
from repro.selection.reference_dp import ReferenceDPSelector

PROFIT_TOL = 1e-9


def random_problem(rng, n, max_distance=2_000.0, cost=0.002, reward_scale=2.0):
    candidates = [
        CandidateTask(
            task_id=i + 1,
            location=Point(
                float(rng.uniform(-1_500, 1_500)),
                float(rng.uniform(-1_500, 1_500)),
            ),
            reward=float(rng.uniform(0.0, reward_scale)),
        )
        for i in range(n)
    ]
    return TaskSelectionProblem.build(Point(0, 0), candidates, max_distance, cost)


def check_consistent(problem, selection):
    """The selection's accounting must match its own order and be feasible."""
    if selection.is_empty:
        return
    id_to_index = {
        candidate.task_id: index
        for index, candidate in enumerate(problem.candidates)
    }
    order = [id_to_index[task_id] for task_id in selection.task_ids]
    assert problem.is_feasible(order)
    rebuilt = problem.evaluate(order)
    assert selection.distance == pytest.approx(rebuilt.distance, abs=1e-9)
    assert selection.reward == pytest.approx(rebuilt.reward, abs=1e-9)
    assert selection.cost == pytest.approx(rebuilt.cost, abs=1e-9)


class TestEquivalence:
    def test_randomized_instances_match_brute_force(self):
        rng = np.random.default_rng(20180618)
        vectorized = DynamicProgrammingSelector()
        reference = ReferenceDPSelector()
        oracle = BruteForceSelector()
        for trial in range(60):
            problem = random_problem(rng, n=int(rng.integers(0, 8)))
            fast = vectorized.select(problem)
            slow = reference.select(problem)
            best = oracle.select(problem)
            assert fast.profit == pytest.approx(best.profit, abs=PROFIT_TOL)
            assert slow.profit == pytest.approx(best.profit, abs=PROFIT_TOL)
            check_consistent(problem, fast)
            check_consistent(problem, slow)

    def test_vectorized_matches_reference_beyond_oracle_sizes(self):
        rng = np.random.default_rng(7)
        vectorized = DynamicProgrammingSelector()
        reference = ReferenceDPSelector()
        for trial in range(10):
            problem = random_problem(rng, n=12)
            fast = vectorized.select(problem)
            slow = reference.select(problem)
            assert fast.profit == pytest.approx(slow.profit, abs=PROFIT_TOL)
            check_consistent(problem, fast)

    def test_zero_cost_visits_everything_reachable(self):
        rng = np.random.default_rng(42)
        for trial in range(10):
            problem = random_problem(rng, n=6, cost=0.0)
            fast = DynamicProgrammingSelector().select(problem)
            slow = ReferenceDPSelector().select(problem)
            best = BruteForceSelector().select(problem)
            assert fast.profit == pytest.approx(best.profit, abs=PROFIT_TOL)
            assert slow.profit == pytest.approx(best.profit, abs=PROFIT_TOL)

    def test_budget_sweep_agreement(self):
        """Sweep the budget across the instance's whole feasibility range."""
        rng = np.random.default_rng(3)
        base = random_problem(rng, n=6, max_distance=10_000.0)
        for budget in (50.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0):
            problem = TaskSelectionProblem(
                origin=base.origin,
                candidates=base.candidates,
                max_distance=budget,
                cost_per_meter=base.cost_per_meter,
                distance_matrix=base.distance_matrix,
            )
            fast = DynamicProgrammingSelector().select(problem)
            slow = ReferenceDPSelector().select(problem)
            best = BruteForceSelector().select(problem)
            assert fast.profit == pytest.approx(best.profit, abs=PROFIT_TOL)
            assert slow.profit == pytest.approx(best.profit, abs=PROFIT_TOL)
            assert fast.distance <= budget
            assert slow.distance <= budget


class TestBudgetEdges:
    def test_exactly_at_budget_path_is_allowed(self):
        """A path whose length equals max_distance exactly is feasible.

        Paths are origin-anchored but one-way (no return leg), so one
        task at x=1000 with budget 1000 sits exactly on the boundary.
        """
        candidates = [CandidateTask(task_id=1, location=Point(1_000.0, 0.0), reward=5.0)]
        problem = TaskSelectionProblem.build(Point(0, 0), candidates, 1_000.0, 0.002)
        for selector in (DynamicProgrammingSelector(), ReferenceDPSelector()):
            selection = selector.select(problem)
            assert selection.task_ids == (1,)
            assert selection.distance == pytest.approx(1_000.0)

    def test_one_unit_over_budget_is_rejected(self):
        candidates = [CandidateTask(task_id=1, location=Point(1_000.0, 0.0), reward=5.0)]
        problem = TaskSelectionProblem.build(
            Point(0, 0), candidates, math.nextafter(1_000.0, 0.0), 0.002
        )
        for selector in (DynamicProgrammingSelector(), ReferenceDPSelector()):
            assert selector.select(problem).is_empty

    def test_two_leg_path_exactly_at_budget(self):
        # 0 -> (600,0) -> (1200,0) is exactly 1200 m.
        candidates = [
            CandidateTask(task_id=1, location=Point(600.0, 0.0), reward=1.0),
            CandidateTask(task_id=2, location=Point(1_200.0, 0.0), reward=1.0),
        ]
        problem = TaskSelectionProblem.build(Point(0, 0), candidates, 1_200.0, 0.001)
        for selector in (DynamicProgrammingSelector(), ReferenceDPSelector()):
            selection = selector.select(problem)
            assert set(selection.task_ids) == {1, 2}
            assert selection.distance == pytest.approx(1_200.0)

    def test_empty_problem(self):
        problem = TaskSelectionProblem.build(Point(0, 0), [], 1_000.0, 0.002)
        assert DynamicProgrammingSelector().select(problem).is_empty
        assert ReferenceDPSelector().select(problem).is_empty

    def test_min_profit_threshold_matches(self):
        candidates = [CandidateTask(task_id=1, location=Point(100.0, 0.0), reward=0.5)]
        problem = TaskSelectionProblem.build(Point(0, 0), candidates, 1_000.0, 0.002)
        # one-way path: profit = 0.5 - 100 * 0.002 = 0.3
        for threshold, expect_empty in ((0.25, False), (0.3, True), (0.4, True)):
            fast = DynamicProgrammingSelector(min_profit=threshold).select(problem)
            slow = ReferenceDPSelector(min_profit=threshold).select(problem)
            assert fast.is_empty == expect_empty
            assert slow.is_empty == expect_empty


class TestObservability:
    def test_states_expanded_counter_drains(self):
        rng = np.random.default_rng(11)
        selector = DynamicProgrammingSelector()
        problem = random_problem(rng, n=8)
        selector.select(problem)
        first = selector.consume_states_expanded()
        assert first > 0
        # Drained: a second consume without another solve reports zero.
        assert selector.consume_states_expanded() == 0
