"""Unit tests for the exact DP selector (Section V-A)."""

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.problem import TaskSelectionProblem


def build(candidates, max_distance=10_000.0, cost=0.002, origin=Point(0, 0)):
    return TaskSelectionProblem.build(origin, candidates, max_distance, cost)


def c(task_id, x, y, reward):
    return CandidateTask(task_id=task_id, location=Point(x, y), reward=reward)


class TestBasics:
    def test_empty_problem_sits_out(self):
        assert DynamicProgrammingSelector().select(build([])).is_empty

    def test_single_profitable_task(self):
        problem = build([c(1, 100.0, 0.0, reward=1.0)])
        selection = DynamicProgrammingSelector().select(problem)
        assert selection.task_ids == (1,)
        assert selection.profit == pytest.approx(1.0 - 0.2)

    def test_single_unprofitable_task_skipped(self):
        # 1000 m at 0.002 $/m costs $2 for a $1 reward.
        problem = build([c(1, 1000.0, 0.0, reward=1.0)])
        assert DynamicProgrammingSelector().select(problem).is_empty

    def test_budget_excludes_far_task(self):
        problem = build(
            [c(1, 100.0, 0.0, 5.0), c(2, 5000.0, 0.0, 50.0)], max_distance=1000.0
        )
        selection = DynamicProgrammingSelector().select(problem)
        assert selection.task_ids == (1,)

    def test_respects_budget_on_chains(self):
        # Two tasks individually reachable, jointly over budget.
        problem = build(
            [c(1, 400.0, 0.0, 5.0), c(2, -400.0, 0.0, 5.0)], max_distance=500.0
        )
        selection = DynamicProgrammingSelector().select(problem)
        assert len(selection) == 1
        assert selection.distance <= 500.0

    def test_visits_in_shortest_order(self):
        # Collinear tasks: optimal order is nearest-first.
        problem = build([c(1, 300.0, 0.0, 2.0), c(2, 100.0, 0.0, 2.0)])
        selection = DynamicProgrammingSelector().select(problem)
        assert selection.task_ids == (2, 1)
        assert selection.distance == pytest.approx(300.0)

    def test_drops_negative_marginal_task(self):
        # Second task costs more to reach than it pays.
        problem = build([c(1, 100.0, 0.0, 2.0), c(2, 100.0, 3000.0, 1.0)])
        selection = DynamicProgrammingSelector().select(problem)
        assert selection.task_ids == (1,)

    def test_detour_worth_taking(self):
        # A cheap detour to a decent reward must be included.
        problem = build(
            [c(1, 100.0, 0.0, 1.0), c(2, 200.0, 50.0, 1.0), c(3, 300.0, 0.0, 1.0)]
        )
        selection = DynamicProgrammingSelector().select(problem)
        assert set(selection.task_ids) == {1, 2, 3}


class TestMinProfit:
    def test_min_profit_threshold(self):
        problem = build([c(1, 100.0, 0.0, reward=0.25)])
        # Profit 0.05 clears 0.0 but not 0.1.
        assert not DynamicProgrammingSelector(min_profit=0.0).select(problem).is_empty
        assert DynamicProgrammingSelector(min_profit=0.1).select(problem).is_empty

    def test_exact_threshold_is_strict(self):
        problem = build([c(1, 100.0, 0.0, reward=0.2)], cost=0.002)
        # Profit exactly 0.0 with min_profit 0.0: stay home (strict >).
        assert DynamicProgrammingSelector(min_profit=0.0).select(problem).is_empty


class TestCapping:
    def test_cap_validates(self):
        with pytest.raises(ValueError, match="max_exact_tasks"):
            DynamicProgrammingSelector(max_exact_tasks=0)

    def test_cap_keeps_best_candidates(self):
        rng = np.random.default_rng(3)
        candidates = [
            c(i, float(x), float(y), reward=2.0)
            for i, (x, y) in enumerate(rng.uniform(-500, 500, size=(12, 2)))
        ]
        problem = build(candidates, max_distance=3000.0)
        capped = DynamicProgrammingSelector(max_exact_tasks=6).select(problem)
        exact = DynamicProgrammingSelector(max_exact_tasks=18).select(problem)
        # The capped run is feasible and not wildly worse than exact.
        assert capped.distance <= 3000.0 + 1e-6
        assert capped.profit <= exact.profit + 1e-9
        assert capped.profit > 0.0

    def test_large_instance_completes_quickly(self):
        rng = np.random.default_rng(4)
        candidates = [
            c(i, float(x), float(y), reward=1.5)
            for i, (x, y) in enumerate(rng.uniform(-900, 900, size=(30, 2)))
        ]
        problem = build(candidates, max_distance=1800.0)
        selection = DynamicProgrammingSelector(max_exact_tasks=14).select(problem)
        assert selection.distance <= 1800.0 + 1e-6


class TestReportedAccounting:
    def test_selection_matches_reevaluation(self):
        problem = build(
            [c(1, 120.0, 40.0, 1.2), c(2, 260.0, -30.0, 0.9), c(3, 80.0, 210.0, 2.0)]
        )
        selection = DynamicProgrammingSelector().select(problem)
        id_to_index = {cand.task_id: i for i, cand in enumerate(problem.candidates)}
        order = [id_to_index[t] for t in selection.task_ids]
        again = problem.evaluate(order)
        assert again.distance == pytest.approx(selection.distance)
        assert again.profit == pytest.approx(selection.profit)
