"""Unit tests for repro.selection.problem."""

import math

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.selection.base import CandidateTask, Selection
from repro.selection.problem import TaskSelectionProblem


def candidate(task_id, x, y, reward=1.0):
    return CandidateTask(task_id=task_id, location=Point(x, y), reward=reward)


def line_problem(max_distance=1000.0, cost=0.002):
    """Three tasks on the x axis at 100, 200, 300 m from the origin."""
    return TaskSelectionProblem.build(
        origin=Point(0.0, 0.0),
        candidates=[
            candidate(10, 100.0, 0.0, reward=1.0),
            candidate(20, 200.0, 0.0, reward=2.0),
            candidate(30, 300.0, 0.0, reward=3.0),
        ],
        max_distance=max_distance,
        cost_per_meter=cost,
    )


class TestBuild:
    def test_size_and_matrix_shape(self):
        problem = line_problem()
        assert problem.size == 3
        assert problem.distance_matrix.shape == (4, 4)

    def test_matrix_row_zero_is_origin(self):
        problem = line_problem()
        assert np.allclose(problem.distance_matrix[0], [0.0, 100.0, 200.0, 300.0])

    def test_unreachable_candidates_pruned(self):
        problem = line_problem(max_distance=150.0)
        assert problem.size == 1
        assert problem.candidates[0].task_id == 10

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSelectionProblem.build(
                origin=Point(0, 0),
                candidates=[candidate(1, 1.0, 0.0), candidate(1, 2.0, 0.0)],
                max_distance=100.0,
                cost_per_meter=0.002,
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="max_distance"):
            TaskSelectionProblem.build(Point(0, 0), [], -1.0, 0.002)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError, match="cost_per_meter"):
            TaskSelectionProblem.build(Point(0, 0), [], 1.0, -0.002)

    def test_negative_reward_rejected_at_candidate(self):
        with pytest.raises(ValueError, match="reward"):
            candidate(1, 0.0, 0.0, reward=-1.0)

    def test_empty_problem(self):
        problem = TaskSelectionProblem.build(Point(0, 0), [], 100.0, 0.002)
        assert problem.size == 0


class TestEvaluate:
    def test_path_distance_in_order(self):
        problem = line_problem()
        # origin -> 300 -> 100: 300 + 200 = 500
        assert problem.path_distance([2, 0]) == pytest.approx(500.0)

    def test_evaluate_accounting(self):
        problem = line_problem()
        selection = problem.evaluate([0, 1, 2])  # 100 + 100 + 100 = 300 m
        assert selection.task_ids == (10, 20, 30)
        assert selection.distance == pytest.approx(300.0)
        assert selection.reward == pytest.approx(6.0)
        assert selection.cost == pytest.approx(0.6)
        assert selection.profit == pytest.approx(5.4)

    def test_evaluate_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            line_problem().evaluate([0, 0])

    def test_evaluate_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            line_problem().evaluate([5])

    def test_feasibility(self):
        problem = line_problem(max_distance=300.0)
        assert problem.is_feasible([0, 1, 2])
        assert not problem.is_feasible([2, 0])

    def test_empty_order_is_feasible_and_zero(self):
        problem = line_problem()
        assert problem.is_feasible([])
        selection = problem.evaluate([])
        assert selection.is_empty
        assert selection.profit == 0.0


class TestRestriction:
    def test_restricted_matrix_consistent(self):
        problem = line_problem()
        sub = problem.restricted_to([0, 2])
        assert sub.size == 2
        assert [c.task_id for c in sub.candidates] == [10, 30]
        assert np.allclose(sub.distance_matrix[0], [0.0, 100.0, 300.0])
        assert sub.distance_matrix[1, 2] == pytest.approx(200.0)

    def test_restricted_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            line_problem().restricted_to([3])


class TestPathPoints:
    def test_lookup_in_order(self):
        problem = line_problem()
        points = problem.path_points([30, 10])
        assert points == [Point(300.0, 0.0), Point(100.0, 0.0)]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="not a candidate"):
            line_problem().path_points([99])


class TestSelectionType:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Selection(task_ids=(1,), distance=-1.0, reward=0.0, cost=0.0)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Selection(task_ids=(1, 1), distance=0.0, reward=0.0, cost=0.0)

    def test_empty_factory(self):
        empty = Selection.empty()
        assert empty.is_empty
        assert len(empty) == 0
        assert empty.profit == 0.0

    def test_profit_sign(self):
        losing = Selection(task_ids=(1,), distance=10.0, reward=1.0, cost=2.0)
        assert math.isclose(losing.profit, -1.0)
