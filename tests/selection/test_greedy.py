"""Unit tests for the paper's greedy selector (Section V-B)."""

import pytest

from repro.geometry.point import Point
from repro.selection.base import CandidateTask
from repro.selection.greedy import GreedySelector
from repro.selection.problem import TaskSelectionProblem


def build(candidates, max_distance=10_000.0, cost=0.002):
    return TaskSelectionProblem.build(Point(0, 0), candidates, max_distance, cost)


def c(task_id, x, y, reward):
    return CandidateTask(task_id=task_id, location=Point(x, y), reward=reward)


class TestBasics:
    def test_empty_problem(self):
        assert GreedySelector().select(build([])).is_empty

    def test_picks_best_marginal_profit_first(self):
        # Task 2 is closer per dollar: greedy goes there first.
        problem = build([c(1, 500.0, 0.0, 2.0), c(2, 100.0, 0.0, 1.5)])
        selection = GreedySelector().select(problem)
        assert selection.task_ids[0] == 2

    def test_chains_within_budget(self):
        problem = build(
            [c(1, 100.0, 0.0, 1.0), c(2, 200.0, 0.0, 1.0), c(3, 300.0, 0.0, 1.0)],
            max_distance=300.0,
        )
        selection = GreedySelector().select(problem)
        assert selection.task_ids == (1, 2, 3)
        assert selection.distance == pytest.approx(300.0)

    def test_stops_when_budget_exhausted(self):
        problem = build(
            [c(1, 100.0, 0.0, 1.0), c(2, 200.0, 0.0, 1.0), c(3, 300.0, 0.0, 1.0)],
            max_distance=250.0,
        )
        selection = GreedySelector().select(problem)
        assert selection.task_ids == (1, 2)

    def test_stops_on_unprofitable_steps(self):
        # Second candidate's marginal leg (900 m, $1.8) exceeds its $1 reward.
        problem = build([c(1, 100.0, 0.0, 1.0), c(2, 1000.0, 0.0, 1.0)])
        selection = GreedySelector().select(problem)
        assert selection.task_ids == (1,)

    def test_sits_out_when_nothing_profitable(self):
        problem = build([c(1, 900.0, 0.0, 1.0)])  # $1.8 to reach, $1 reward
        assert GreedySelector().select(problem).is_empty

    def test_min_step_profit(self):
        problem = build([c(1, 100.0, 0.0, 0.3)])
        assert not GreedySelector(min_step_profit=0.0).select(problem).is_empty
        assert GreedySelector(min_step_profit=0.2).select(problem).is_empty


class TestMyopia:
    def test_greedy_is_myopic_where_dp_is_not(self):
        """The canonical gap: a near cheap task pulls greedy off the rich cluster."""
        from repro.selection.dp import DynamicProgrammingSelector

        candidates = [
            c(1, 100.0, 0.0, 1.0),        # near, modest: marginal 0.80
            c(2, 0.0, 900.0, 2.5),        # far cluster: marginal 0.70 from home
            c(3, 0.0, 960.0, 2.5),
            c(4, 60.0, 930.0, 2.5),
        ]
        problem = build(candidates, max_distance=1100.0)
        greedy = GreedySelector().select(problem)
        dp = DynamicProgrammingSelector().select(problem)
        assert greedy.task_ids[0] == 1
        assert dp.profit >= greedy.profit

    def test_total_accounting_consistent(self):
        problem = build(
            [c(1, 150.0, 20.0, 1.1), c(2, 340.0, -60.0, 1.4), c(3, 90.0, 310.0, 0.9)]
        )
        selection = GreedySelector().select(problem)
        id_to_index = {cand.task_id: i for i, cand in enumerate(problem.candidates)}
        order = [id_to_index[t] for t in selection.task_ids]
        again = problem.evaluate(order)
        assert again.distance == pytest.approx(selection.distance)
        assert again.reward == pytest.approx(selection.reward)
