"""Run the usage examples embedded in docstrings as doctests.

Doc examples that rot are worse than none; the modules with runnable
``>>>`` snippets are collected here explicitly (not via
``--doctest-modules``, which would also swallow every module import as a
test and slow collection).
"""

import doctest

import pytest

import repro.core.ahp
import repro.core.levels
import repro.geometry.point
import repro.resilience.cancel
import repro.resilience.retry
import repro.simulation.engine

MODULES_WITH_DOCTESTS = [
    repro.geometry.point,
    repro.core.levels,
    repro.core.ahp,
    repro.simulation.engine,
    repro.resilience.retry,
    repro.resilience.cancel,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_DOCTESTS, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.attempted > 0, (
        f"{module.__name__} advertises doctests but none ran"
    )
    assert outcome.failed == 0
