"""Tests for the repro CLI."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_arguments(self):
        args = build_parser().parse_args(
            ["run", "fig6a", "--reps", "3", "--seed", "4", "--json", "x.json"]
        )
        assert args.experiment == "fig6a"
        assert args.reps == 3
        assert args.seed == 4
        assert args.json == "x.json"

    def test_resume_and_timeout_flags(self):
        args = build_parser().parse_args(["run", "fig6a", "--resume", "ckpt"])
        assert args.resume == "ckpt"
        args = build_parser().parse_args(["sweep", "budget", "100", "--resume", "c"])
        assert args.resume == "c"
        args = build_parser().parse_args(["simulate", "--selector-timeout", "0.5"])
        assert args.selector_timeout == 0.5

    def test_logging_flags_shared_by_every_subcommand(self):
        for argv in (
            ["list"],
            ["run", "fig6a"],
            ["tables"],
            ["report"],
            ["simulate"],
            ["show", "x.json"],
            ["sweep", "n_users", "8"],
            ["trace", "summarize", "t.json"],
            ["obs", "list"],
            ["obs", "regress"],
            ["obs", "dashboard"],
        ):
            args = build_parser().parse_args(argv + ["-vv", "--log-json"])
            assert args.verbose == 2
            assert args.log_json is True
            assert args.quiet is False
        args = build_parser().parse_args(["simulate", "--quiet"])
        assert args.quiet is True and args.verbose == 0


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig5a", "fig6a", "fig9b", "ablation-levels"):
            assert experiment_id in out


class TestTables:
    def test_prints_three_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "table2" in out and "table3" in out
        assert "0.648" in out  # the paper's w1


class TestSimulate:
    def test_prints_metrics(self, capsys):
        code = main([
            "simulate", "--users", "10", "--tasks", "5", "--rounds", "4",
            "--seed", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out
        assert "total_paid" in out

    def test_mechanism_choice(self, capsys):
        code = main([
            "simulate", "--users", "8", "--tasks", "4", "--rounds", "3",
            "--mechanism", "steered", "--selector", "greedy",
        ])
        assert code == 0

    def test_verbosity_flags_leave_stdout_unchanged(self, capsys):
        argv = ["simulate", "--users", "8", "--tasks", "4", "--rounds", "3"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["-vv", "--log-json"]) == 0
        noisy = capsys.readouterr().out
        # Compare up to the perf line: its wall-clock numbers vary per run.
        assert noisy.split("\nperf:")[0] == plain.split("\nperf:")[0]

    def test_scenario_preset_with_flag_overrides(self, capsys):
        code = main([
            "simulate", "--scenario", "paper-2018", "--users", "12",
            "--tasks", "4", "--rounds", "2", "--seed", "0",
        ])
        assert code == 0
        assert "coverage" in capsys.readouterr().out

    def test_scenario_file(self, capsys, tmp_path):
        from repro.scenarios import ScenarioSpec, save_spec

        path = save_spec(
            ScenarioSpec("mini", config={"n_users": 10, "n_tasks": 4,
                                         "rounds": 2}),
            tmp_path / "mini.toml",
        )
        assert main(["simulate", "--scenario", str(path), "--seed", "1"]) == 0

    def test_scenario_with_engine_and_events(self, capsys, tmp_path):
        events = tmp_path / "events.jsonl"
        code = main([
            "simulate", "--scenario", "paper-2018", "--users", "12",
            "--tasks", "4", "--rounds", "2", "--seed", "0",
            "--engine", "batched", "--events", str(events),
        ])
        assert code == 0
        assert "streamed events" in capsys.readouterr().out
        assert events.exists()

    def test_unknown_scenario_is_a_named_error(self, capsys):
        with pytest.raises(ValueError, match="atlantis"):
            main(["simulate", "--scenario", "atlantis"])


class TestScenarios:
    def test_lists_presets(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-2018", "city-2k", "city-50k"):
            assert name in out

    def test_verbose_config_dumps_toml(self, capsys):
        assert main(["scenarios", "--verbose-config"]) == 0
        out = capsys.readouterr().out
        assert 'name = "city-50k"' in out
        assert "[config]" in out


class TestTrace:
    ARGV = [
        "simulate", "--users", "8", "--tasks", "4", "--rounds", "3",
        "--seed", "2",
    ]

    def test_trace_writes_chrome_file_and_manifest(self, capsys, tmp_path):
        trace_path = tmp_path / "out.json"
        assert main(self.ARGV + ["--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "saved trace" in out and "saved manifest" in out

        payload = json.loads(trace_path.read_text())
        names = {event["name"] for event in payload["traceEvents"]}
        assert {"run", "round", "price-publish", "select", "upload"} <= names
        assert payload["otherData"]["selector"] == "dp"
        assert "counters" in payload["otherData"]

        manifest = json.loads((tmp_path / "out.json.manifest.json").read_text())
        assert manifest["base_seed"] == 2
        assert manifest["config"]["n_users"] == 8
        assert manifest["command"].startswith("repro simulate")

    def test_traced_run_metrics_match_untraced(self, capsys, tmp_path):
        def metric_table(text):
            # Up to the perf line, whose wall-clock numbers vary per run.
            return text.split("\nperf:")[0]

        assert main(self.ARGV) == 0
        plain = capsys.readouterr().out
        assert main(self.ARGV + ["--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        assert metric_table(traced) == metric_table(plain)

    def test_summarize_prints_phases_and_counters(self, capsys, tmp_path):
        trace_path = tmp_path / "out.json"
        main(self.ARGV + ["--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "select" in out and "round" in out
        assert "p50 ms" in out and "p95 ms" in out
        assert "payout_total" in out
        assert "selector_seconds" in out
        # Histogram counters surface bucket-interpolated percentiles too.
        assert "p50=" in out and "p95=" in out

    def test_summarize_rejects_non_trace_files(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="not a repro trace"):
            main(["trace", "summarize", str(bogus)])

    def test_summarize_renders_dash_for_empty_histogram(self, capsys,
                                                        tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import SpanTracer

        registry = MetricsRegistry()
        registry.histogram("never_observed", bounds=(1.0,))
        tracer = SpanTracer()
        with tracer.span("run"):
            pass
        path = tracer.write_chrome(
            tmp_path / "t.json", counters=registry.as_dict()
        )
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "p50=- p95=-" in out
        assert "None" not in out


class TestTraceMerge:
    def _shard(self, directory, process, trace_id="cafe0123deadbeef"):
        from repro.obs.trace import TraceContext, TraceShardWriter

        ctx = TraceContext(trace_id, str(directory), process=process)
        writer = TraceShardWriter(ctx.shard_path(), metadata=ctx.metadata())
        with writer.span("work", cat="test"):
            pass
        writer.close()
        return ctx.shard_path()

    def test_merges_a_directory_of_shards(self, capsys, tmp_path):
        self._shard(tmp_path, "server")
        self._shard(tmp_path, "worker-a1")
        out = tmp_path / "merged.json"
        assert main(["trace", "merge", str(tmp_path), "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "cafe0123deadbeef" in stdout
        assert "2 shard(s)" in stdout
        payload = json.loads(out.read_text())
        assert payload["otherData"]["processes"] == ["server", "worker-a1"]

    def test_explicit_shard_paths_work_too(self, capsys, tmp_path):
        first = self._shard(tmp_path, "server")
        out = tmp_path / "merged.json"
        assert main(["trace", "merge", str(first), "--out", str(out)]) == 0
        assert json.loads(out.read_text())["displayTimeUnit"] == "ms"

    def test_mixed_trace_ids_fail_with_exit_2(self, capsys, tmp_path):
        self._shard(tmp_path, "a", trace_id="1111111111111111")
        self._shard(tmp_path, "b", trace_id="2222222222222222")
        out = tmp_path / "merged.json"
        assert main(["trace", "merge", str(tmp_path), "--out", str(out)]) == 2
        assert "different traces" in capsys.readouterr().err

    def test_empty_directory_fails_with_exit_2(self, capsys, tmp_path):
        (tmp_path / "void").mkdir()
        out = tmp_path / "merged.json"
        assert main(
            ["trace", "merge", str(tmp_path / "void"), "--out", str(out)]
        ) == 2
        assert "no trace shards" in capsys.readouterr().err


class TestRun:
    def test_run_prints_rows_and_saves(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "1")
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        code = main([
            "run", "fig6a", "--json", str(json_path), "--csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6a" in out and "on-demand" in out
        payload = json.loads(json_path.read_text())
        assert payload["result"]["experiment_id"] == "fig6a"
        assert csv_path.read_text().startswith("series,x,mean,std,n")

    def test_unknown_experiment_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            main(["run", "fig0x"])


class TestResume:
    def test_run_resume_creates_journals_and_reuses_them(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_REPS", "1")
        ckpt = tmp_path / "ckpt"
        assert main(["run", "fig6a", "--resume", str(ckpt)]) == 0
        journals = sorted(p.name for p in ckpt.iterdir())
        assert journals and all(name.endswith(".jsonl") for name in journals)
        first = capsys.readouterr().out
        mtimes = {p.name: p.stat().st_mtime_ns for p in ckpt.iterdir()}
        # Second run resumes: identical output, journals untouched.
        assert main(["run", "fig6a", "--resume", str(ckpt)]) == 0
        assert capsys.readouterr().out == first
        assert {p.name: p.stat().st_mtime_ns for p in ckpt.iterdir()} == mtimes

    def test_run_resume_rejected_for_non_journaling_experiment(
        self, capsys, tmp_path
    ):
        assert main(["run", "fig5a", "--resume", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "does not support --resume" in err
        assert "fig6a" in err  # the error lists what *is* resumable

    def test_sweep_resume(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpt"
        code = main([
            "sweep", "n_users", "8", "--reps", "1", "--resume", str(ckpt),
        ])
        assert code == 0
        assert (ckpt / "sweep-n_users-8.jsonl").exists()


class TestSelectorTimeout:
    def test_simulate_reports_degradations(self, capsys):
        code = main([
            "simulate", "--users", "8", "--tasks", "4", "--rounds", "3",
            "--seed", "2", "--selector-timeout", "10",
        ])
        assert code == 0
        assert "selector degradations (greedy fallbacks): 0" in capsys.readouterr().out


class TestShow:
    def test_round_trips_saved_result(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "1")
        path = tmp_path / "saved.json"
        main(["run", "fig6a", "--json", str(path)])
        capsys.readouterr()
        assert main(["show", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fig6a" in out and "on-demand" in out

    def test_chart_rendering(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPS", "1")
        path = tmp_path / "saved.json"
        main(["run", "fig6a", "--json", str(path)])
        capsys.readouterr()
        assert main(["show", str(path), "--chart"]) == 0
        assert "overlap" in capsys.readouterr().out

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["show", str(tmp_path / "nope.json")])


class TestSweep:
    def test_sweeps_integer_field(self, capsys):
        code = main(["sweep", "n_users", "8", "12", "--reps", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep-n_users" in out
        assert "coverage_pct" in out

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown config field"):
            main(["sweep", "n_usrs", "8", "--reps", "1"])


class TestMap:
    def test_simulate_map_flag(self, capsys):
        code = main([
            "simulate", "--users", "8", "--tasks", "4", "--rounds", "3",
            "--seed", "2", "--map",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "=user(8)" in out


class TestObs:
    SIM = ["simulate", "--users", "8", "--tasks", "4", "--rounds", "3"]

    def test_store_flag_defaults_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STORE", "/tmp/somewhere")
        assert build_parser().parse_args(["obs", "list"]).store == "/tmp/somewhere"
        monkeypatch.delenv("REPRO_OBS_STORE")
        assert build_parser().parse_args(["obs", "list"]).store == ".repro-obs"

    def test_simulate_list_show_diff_flow(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        for seed in ("2", "3"):
            assert main(self.SIM + ["--seed", seed, "--obs-store", store]) == 0
        capsys.readouterr()

        assert main(["obs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "simulate-000001" in out and "simulate-000002" in out
        assert "seed=3" in out

        assert main(["obs", "show", "simulate-000001", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "label selector = dp" in out
        assert "summary/coverage" in out

        assert main(["obs", "diff", "simulate-000001", "simulate-000002",
                     "--store", store]) == 0
        out = capsys.readouterr().out
        assert "metric" in out and "delta" in out

    def test_dashboard_renders_text_and_html(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        for seed in ("2", "3", "4"):
            assert main(self.SIM + ["--seed", seed, "--obs-store", store]) == 0
        capsys.readouterr()
        html_path = tmp_path / "dash.html"
        assert main(["obs", "dashboard", "--store", store,
                     "--html", str(html_path)]) == 0
        out = capsys.readouterr().out
        assert "observatory:" in out
        assert "[simulate] 3 runs" in out
        assert html_path.read_text().startswith("<!doctype html>")

    def test_regress_on_an_empty_store_is_green(self, capsys, tmp_path):
        assert main(["obs", "regress", "--store", str(tmp_path / "none")]) == 0
        assert "status: skipped" in capsys.readouterr().out

    def test_profile_flag_prints_a_digest(self, capsys):
        assert main(self.SIM + ["--seed", "2", "--profile",
                                "--profile-interval", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "profile:" in out and "peak RSS" in out

    def test_run_obs_store_records_experiment_series(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_REPS", "1")
        store = str(tmp_path / "store")
        assert main(["run", "fig6a", "--obs-store", store]) == 0
        out = capsys.readouterr().out
        assert "recorded in store: experiment:fig6a-000001" in out
        from repro.obs.store import RunStore

        entry = RunStore(store).latest(kind="experiment:fig6a")
        assert entry["labels"]["experiment"] == "fig6a"
        assert any("[x=" in name for name in entry["values"])
