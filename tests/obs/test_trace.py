"""Tests for the span tracer: null tracer, exports, summarize."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    SpanTracer,
    load_trace,
    summarize,
)


class TestNullTracer:
    def test_span_is_a_reusable_noop(self):
        first = NULL_TRACER.span("anything", cat="x", round=1)
        second = NULL_TRACER.span("else")
        assert first is second  # preallocated: no per-span allocation
        with first:
            pass

    def test_disabled_flag_for_hot_loops(self):
        assert NULL_TRACER.enabled is False
        assert SpanTracer().enabled is True

    def test_no_span_is_ever_current(self):
        assert NULL_TRACER.current_span_name == ""
        with NULL_TRACER.span("anything"):
            assert NULL_TRACER.current_span_name == ""


class TestSpanTracer:
    def _traced(self):
        tracer = SpanTracer(metadata={"selector": "dp"})
        with tracer.span("run", cat="run"):
            with tracer.span("round", cat="round", round=1):
                with tracer.span("select", cat="phase"):
                    pass
            with tracer.span("round", cat="round", round=2):
                pass
        return tracer

    def test_records_nesting_depth_and_args(self):
        tracer = self._traced()
        by_name = {}
        for record in tracer.spans:
            by_name.setdefault(record.name, []).append(record)
        assert by_name["run"][0].depth == 0
        assert by_name["round"][0].depth == 1
        assert by_name["select"][0].depth == 2
        assert by_name["round"][0].args == {"round": 1}
        assert all(record.duration >= 0 for record in tracer.spans)

    def test_current_span_name_tracks_the_innermost_open_span(self):
        tracer = SpanTracer()
        assert tracer.current_span_name == ""
        with tracer.span("run"):
            assert tracer.current_span_name == "run"
            with tracer.span("select"):
                assert tracer.current_span_name == "select"
            assert tracer.current_span_name == "run"
        assert tracer.current_span_name == ""

    def test_chrome_export_is_perfetto_shaped(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_chrome(tmp_path / "trace.json", counters={"c": 1})
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["selector"] == "dp"
        assert payload["otherData"]["counters"] == {"c": 1}
        events = payload["traceEvents"]
        assert {event["ph"] for event in events} == {"X"}
        assert all({"name", "ts", "dur", "pid", "tid"} <= set(e) for e in events)
        # Chronological: a sorted ts column.
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded["metadata"] == {"selector": "dp"}
        assert sorted(name for name, _ in loaded["spans"]) == sorted(
            record.name for record in tracer.spans
        )

    def test_load_trace_reads_both_formats_identically(self, tmp_path):
        tracer = self._traced()
        chrome = load_trace(tracer.write_chrome(tmp_path / "t.json"))
        jsonl = load_trace(tracer.write_jsonl(tmp_path / "t.jsonl"))
        names = lambda loaded: sorted(name for name, _ in loaded["spans"])  # noqa: E731
        assert names(chrome) == names(jsonl)


class TestSummarize:
    def test_aggregates_per_name(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("round"):
                    pass
        path = tracer.write_chrome(tmp_path / "trace.json")
        rows = {row.name: row for row in summarize(path)}
        assert rows["round"].count == 3
        assert rows["run"].count == 1
        assert rows["round"].total_seconds == pytest.approx(
            3 * rows["round"].mean_seconds
        )
        assert rows["run"].total_seconds >= rows["round"].total_seconds

    def test_percentiles_bracket_the_distribution(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("run"):
            for _ in range(20):
                with tracer.span("round"):
                    pass
        rows = {row.name: row for row in summarize(
            tracer.write_chrome(tmp_path / "trace.json")
        )}
        round_row = rows["round"]
        assert 0 <= round_row.p50_seconds <= round_row.p95_seconds
        assert round_row.p95_seconds <= round_row.max_seconds
        assert round_row.p50_seconds <= round_row.max_seconds
        # A single-span phase has degenerate percentiles == its duration.
        run_row = rows["run"]
        assert run_row.p50_seconds == pytest.approx(run_row.mean_seconds)
        assert run_row.p95_seconds == pytest.approx(run_row.max_seconds)

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(empty)
