"""Tests for the span tracer: null tracer, exports, stitching, summarize."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    SpanTracer,
    TRACE_DIR_ENV,
    TRACE_ID_ENV,
    TRACE_PARENT_ENV,
    TRACE_PROCESS_ENV,
    TraceContext,
    TraceShardWriter,
    load_trace,
    merge_traces,
    read_trace_shard,
    summarize,
    trace_id_for_job,
    write_merged_trace,
)


class TestNullTracer:
    def test_span_is_a_reusable_noop(self):
        first = NULL_TRACER.span("anything", cat="x", round=1)
        second = NULL_TRACER.span("else")
        assert first is second  # preallocated: no per-span allocation
        with first:
            pass

    def test_disabled_flag_for_hot_loops(self):
        assert NULL_TRACER.enabled is False
        assert SpanTracer().enabled is True

    def test_no_span_is_ever_current(self):
        assert NULL_TRACER.current_span_name == ""
        with NULL_TRACER.span("anything"):
            assert NULL_TRACER.current_span_name == ""


class TestSpanTracer:
    def _traced(self):
        tracer = SpanTracer(metadata={"selector": "dp"})
        with tracer.span("run", cat="run"):
            with tracer.span("round", cat="round", round=1):
                with tracer.span("select", cat="phase"):
                    pass
            with tracer.span("round", cat="round", round=2):
                pass
        return tracer

    def test_records_nesting_depth_and_args(self):
        tracer = self._traced()
        by_name = {}
        for record in tracer.spans:
            by_name.setdefault(record.name, []).append(record)
        assert by_name["run"][0].depth == 0
        assert by_name["round"][0].depth == 1
        assert by_name["select"][0].depth == 2
        assert by_name["round"][0].args == {"round": 1}
        assert all(record.duration >= 0 for record in tracer.spans)

    def test_current_span_name_tracks_the_innermost_open_span(self):
        tracer = SpanTracer()
        assert tracer.current_span_name == ""
        with tracer.span("run"):
            assert tracer.current_span_name == "run"
            with tracer.span("select"):
                assert tracer.current_span_name == "select"
            assert tracer.current_span_name == "run"
        assert tracer.current_span_name == ""

    def test_chrome_export_is_perfetto_shaped(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_chrome(tmp_path / "trace.json", counters={"c": 1})
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["selector"] == "dp"
        assert payload["otherData"]["counters"] == {"c": 1}
        events = payload["traceEvents"]
        assert {event["ph"] for event in events} == {"X"}
        assert all({"name", "ts", "dur", "pid", "tid"} <= set(e) for e in events)
        # Chronological: a sorted ts column.
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)

    def test_jsonl_export_round_trips(self, tmp_path):
        tracer = self._traced()
        path = tracer.write_jsonl(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded["metadata"] == {"selector": "dp"}
        assert sorted(name for name, _ in loaded["spans"]) == sorted(
            record.name for record in tracer.spans
        )

    def test_load_trace_reads_both_formats_identically(self, tmp_path):
        tracer = self._traced()
        chrome = load_trace(tracer.write_chrome(tmp_path / "t.json"))
        jsonl = load_trace(tracer.write_jsonl(tmp_path / "t.jsonl"))
        names = lambda loaded: sorted(name for name, _ in loaded["spans"])  # noqa: E731
        assert names(chrome) == names(jsonl)


class TestTraceContext:
    def test_trace_id_is_deterministic_per_job(self):
        assert trace_id_for_job("job-000001") == trace_id_for_job("job-000001")
        assert trace_id_for_job("job-000001") != trace_id_for_job("job-000002")
        assert len(trace_id_for_job("job-1")) == 16

    def test_env_round_trip(self):
        ctx = TraceContext(
            trace_id="abc123", trace_dir="/tmp/t",
            parent_span_id="supervise", process="server",
        )
        env = ctx.to_env()
        assert env[TRACE_ID_ENV] == "abc123"
        assert env[TRACE_DIR_ENV] == "/tmp/t"
        assert env[TRACE_PARENT_ENV] == "supervise"
        assert env[TRACE_PROCESS_ENV] == "server"
        assert TraceContext.from_env(env) == ctx

    def test_from_env_needs_id_and_dir(self):
        assert TraceContext.from_env({}) is None
        assert TraceContext.from_env({TRACE_ID_ENV: "abc"}) is None
        assert TraceContext.from_env({TRACE_DIR_ENV: "/tmp"}) is None

    def test_child_keeps_the_trace_and_renames_the_process(self):
        ctx = TraceContext("t1", "/dir", parent_span_id="supervise")
        child = ctx.child("worker-a1")
        assert child.trace_id == "t1"
        assert child.process == "worker-a1"
        assert child.parent_span_id == "supervise"
        grandchild = child.child("shard-9", parent_span_id="select")
        assert grandchild.parent_span_id == "select"

    def test_shard_path_is_named_after_the_process(self, tmp_path):
        ctx = TraceContext("t1", str(tmp_path), process="worker-a1")
        assert ctx.shard_path().name == "worker-a1.trace.jsonl"
        assert ctx.shard_path("custom").name == "custom.trace.jsonl"


class TestTraceShardWriter:
    def _shard(self, tmp_path, process="server", trace_id="t1"):
        ctx = TraceContext(trace_id, str(tmp_path), process=process)
        writer = TraceShardWriter(ctx.shard_path(), metadata=ctx.metadata())
        return ctx, writer

    def test_spans_stream_to_disk_immediately(self, tmp_path):
        _, writer = self._shard(tmp_path)
        with writer.span("supervise", cat="server", job="j1"):
            pass
        # Before close(): the span must already be durable (SIGKILL-safe).
        loaded = read_trace_shard(writer.path)
        assert loaded["meta"]["trace_id"] == "t1"
        assert [s["name"] for s in loaded["spans"]] == ["supervise"]
        writer.close()

    def test_shards_are_load_trace_compatible(self, tmp_path):
        _, writer = self._shard(tmp_path)
        with writer.span("run"):
            with writer.span("round", round=1):
                pass
        writer.close()
        loaded = load_trace(writer.path)
        assert sorted(name for name, _ in loaded["spans"]) == ["round", "run"]
        rows = {row.name: row for row in summarize(writer.path)}
        assert rows["round"].count == 1

    def test_tracks_nesting_like_the_span_tracer(self, tmp_path):
        _, writer = self._shard(tmp_path)
        assert writer.current_span_name == ""
        with writer.span("outer"):
            assert writer.current_span_name == "outer"
            with writer.span("inner"):
                assert writer.current_span_name == "inner"
        writer.close()
        spans = read_trace_shard(writer.path)["spans"]
        depths = {s["name"]: s["depth"] for s in spans}
        assert depths == {"outer": 0, "inner": 1}

    def test_reopening_appends_instead_of_rewriting_meta(self, tmp_path):
        ctx, writer = self._shard(tmp_path)
        with writer.span("first"):
            pass
        writer.close()
        again = TraceShardWriter(ctx.shard_path(), metadata=ctx.metadata())
        with again.span("second"):
            pass
        again.close()
        loaded = read_trace_shard(ctx.shard_path())
        assert [s["name"] for s in loaded["spans"]] == ["first", "second"]

    def test_empty_shard_rejected_by_reader(self, tmp_path):
        path = tmp_path / "x.trace.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace_shard(path)


class TestMergeTraces:
    def _write_shard(self, tmp_path, process, epoch_unix, spans,
                     trace_id="t1", parent=""):
        """A hand-built shard: (name, start, duration) triples."""
        path = tmp_path / f"{process}.trace.jsonl"
        lines = [json.dumps({
            "kind": "meta", "format": "repro-trace",
            "epoch_unix": epoch_unix, "trace_id": trace_id,
            "process": process, "parent_span_id": parent,
        })]
        for name, start, duration in spans:
            lines.append(json.dumps({
                "kind": "span", "name": name, "cat": "test",
                "start": start, "duration": duration, "depth": 0,
                "args": {},
            }))
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_rebases_shards_onto_one_wall_clock(self, tmp_path):
        server = self._write_shard(
            tmp_path, "server", 1000.0, [("supervise", 0.0, 10.0)],
        )
        worker = self._write_shard(
            tmp_path, "worker-a1", 1002.0, [("run", 0.0, 6.0)],
            parent="supervise",
        )
        payload = merge_traces([server, worker])
        x_events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in x_events}
        supervise, run = by_name["supervise"], by_name["run"]
        # worker epoch is 2 s after the server's: its span shifts right
        # and lands inside the supervise span.
        assert run["ts"] == supervise["ts"] + 2e6
        assert supervise["ts"] <= run["ts"]
        assert run["ts"] + run["dur"] <= supervise["ts"] + supervise["dur"]

    def test_each_process_is_a_named_thread(self, tmp_path):
        paths = [
            self._write_shard(tmp_path, "server", 0.0, [("a", 0, 1)]),
            self._write_shard(tmp_path, "worker-a1", 0.0, [("b", 0, 1)]),
        ]
        payload = merge_traces(paths)
        names = {
            e["tid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert set(names.values()) == {"server", "worker-a1"}
        assert payload["otherData"]["processes"] == ["server", "worker-a1"]

    def test_lineage_lands_in_other_data(self, tmp_path):
        paths = [
            self._write_shard(tmp_path, "server", 0.0, [("a", 0, 1)]),
            self._write_shard(
                tmp_path, "worker-a1", 0.0, [("b", 0, 1)],
                parent="supervise",
            ),
        ]
        payload = merge_traces(paths)
        assert payload["otherData"]["trace_id"] == "t1"
        assert payload["otherData"]["parents"]["worker-a1"] == "supervise"

    def test_mixed_trace_ids_refused(self, tmp_path):
        paths = [
            self._write_shard(tmp_path, "a", 0.0, [("x", 0, 1)], trace_id="t1"),
            self._write_shard(tmp_path, "b", 0.0, [("y", 0, 1)], trace_id="t2"),
        ]
        with pytest.raises(ValueError, match="different traces"):
            merge_traces(paths)

    def test_shard_without_trace_id_refused(self, tmp_path):
        path = self._write_shard(tmp_path, "a", 0.0, [("x", 0, 1)], trace_id="")
        with pytest.raises(ValueError, match="without a trace_id"):
            merge_traces([path])

    def test_no_shards_refused(self):
        with pytest.raises(ValueError, match="no trace shards"):
            merge_traces([])

    def test_write_merged_trace_is_a_chrome_file(self, tmp_path):
        shard = self._write_shard(tmp_path, "server", 0.0, [("a", 0, 1)])
        out = write_merged_trace(tmp_path / "merged.json", [shard])
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert {"traceEvents", "otherData"} <= set(payload)


class TestSummarize:
    def test_aggregates_per_name(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("run"):
            for _ in range(3):
                with tracer.span("round"):
                    pass
        path = tracer.write_chrome(tmp_path / "trace.json")
        rows = {row.name: row for row in summarize(path)}
        assert rows["round"].count == 3
        assert rows["run"].count == 1
        assert rows["round"].total_seconds == pytest.approx(
            3 * rows["round"].mean_seconds
        )
        assert rows["run"].total_seconds >= rows["round"].total_seconds

    def test_percentiles_bracket_the_distribution(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("run"):
            for _ in range(20):
                with tracer.span("round"):
                    pass
        rows = {row.name: row for row in summarize(
            tracer.write_chrome(tmp_path / "trace.json")
        )}
        round_row = rows["round"]
        assert 0 <= round_row.p50_seconds <= round_row.p95_seconds
        assert round_row.p95_seconds <= round_row.max_seconds
        assert round_row.p50_seconds <= round_row.max_seconds
        # A single-span phase has degenerate percentiles == its duration.
        run_row = rows["run"]
        assert run_row.p50_seconds == pytest.approx(run_row.mean_seconds)
        assert run_row.p95_seconds == pytest.approx(run_row.max_seconds)

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not_a_trace.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a repro trace"):
            load_trace(path)
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(empty)
