"""Tests for the sampling resource profiler and its null twin."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import (
    NULL_PROFILER,
    ResourceProfiler,
    read_rss_bytes,
)
from repro.obs.trace import SpanTracer


class TestNullProfiler:
    def test_is_inert(self):
        registry = MetricsRegistry()
        with NULL_PROFILER as profiler:
            assert profiler is NULL_PROFILER
        assert NULL_PROFILER.start() is NULL_PROFILER
        assert NULL_PROFILER.stop() is NULL_PROFILER
        assert NULL_PROFILER.samples == ()
        assert not NULL_PROFILER.enabled
        NULL_PROFILER.fold_into(registry)
        assert not registry
        assert NULL_PROFILER.summary() == {"samples": 0}


class TestReadRss:
    def test_reports_a_plausible_resident_size(self):
        rss = read_rss_bytes()
        # A running CPython interpreter is at least a few MiB resident.
        assert rss > 1024 * 1024


class TestResourceProfiler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="interval"):
            ResourceProfiler(interval=0.0)

    def test_collects_samples_while_running(self):
        profiler = ResourceProfiler(interval=0.001)
        with profiler:
            total = sum(i * i for i in range(50_000))
        assert total > 0
        # At minimum the baseline and the final stop() sample.
        assert len(profiler.samples) >= 2
        assert all(s.rss_bytes > 0 for s in profiler.samples)
        assert profiler.samples[-1].elapsed >= profiler.samples[0].elapsed
        assert profiler.samples[-1].cpu_seconds >= profiler.samples[0].cpu_seconds

    def test_stop_is_idempotent_and_restart_appends(self):
        profiler = ResourceProfiler(interval=0.001)
        profiler.start().stop()
        count = len(profiler.samples)
        profiler.stop()
        assert len(profiler.samples) == count
        profiler.start().stop()
        assert len(profiler.samples) > count

    def test_samples_carry_the_active_span_name(self):
        tracer = SpanTracer()
        profiler = ResourceProfiler(interval=60.0, tracer=tracer)
        with tracer.span("run"):
            with tracer.span("select"):
                profiler._sample()
        profiler._sample()
        assert [s.span for s in profiler.samples] == ["select", ""]

    def test_fold_into_writes_process_series(self):
        tracer = SpanTracer()
        profiler = ResourceProfiler(interval=60.0, tracer=tracer)
        profiler._sample()
        with tracer.span("select"):
            profiler._sample()
        registry = MetricsRegistry()
        profiler.fold_into(registry)
        assert registry.value("process_rss_peak_bytes") > 0
        assert registry.value("process_samples_total") == 2
        assert registry.value("process_span_samples_total", span="untraced") == 1
        assert registry.value("process_span_samples_total", span="select") == 1
        assert registry.value("process_cpu_seconds_total") >= 0.0

    def test_fold_into_without_samples_is_a_noop(self):
        registry = MetricsRegistry()
        ResourceProfiler().fold_into(registry)
        assert not registry

    def test_summary_digest(self):
        profiler = ResourceProfiler(interval=60.0)
        profiler._sample()
        profiler._sample()
        digest = profiler.summary()
        assert digest["samples"] == 2
        assert digest["rss_peak_bytes"] > 0
        assert digest["duration_seconds"] >= 0.0
        assert digest["span_samples"] == {"untraced": 2}
