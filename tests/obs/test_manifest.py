"""Tests for run manifests: provenance capture, atomic write, loading."""

import json
import os
import subprocess

import pytest

from repro.obs.manifest import (
    build_manifest,
    git_revision,
    load_manifest,
    manifest_path_for,
    write_manifest,
)
from repro.resilience.journal import config_fingerprint
from repro.simulation.config import SimulationConfig


class TestBuildManifest:
    def test_captures_environment_and_fingerprint(self):
        config = SimulationConfig(n_users=10, seed=3)
        manifest = build_manifest(config, base_seed=3, command="repro simulate")
        assert manifest.config_fingerprint == config_fingerprint(config, base_seed=3)
        assert manifest.base_seed == 3
        assert manifest.command == "repro simulate"
        assert manifest.python_version.count(".") == 2
        assert manifest.numpy_version is not None
        assert manifest.config["n_users"] == 10

    def test_extra_context_is_preserved(self):
        manifest = build_manifest(None, experiment="fig6a")
        assert manifest.extra == {"experiment": "fig6a"}

    def test_git_revision_inside_this_repo(self):
        revision = git_revision()
        assert revision is None or (
            len(revision) == 40 and set(revision) <= set("0123456789abcdef")
        )

    def test_git_revision_outside_a_repo_is_none(self, tmp_path):
        assert git_revision(cwd=tmp_path) is None

    def test_build_manifest_outside_a_repo_does_not_raise(self, tmp_path, monkeypatch):
        # No git repo anywhere above cwd, and no git on PATH at all:
        # provenance degrades to git_revision=None, never an exception.
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("PATH", str(tmp_path / "no-binaries-here"))
        assert git_revision(cwd=tmp_path) is None
        manifest = build_manifest(SimulationConfig(n_users=5), base_seed=1)
        assert manifest.base_seed == 1
        assert manifest.config_fingerprint

    def test_git_revision_in_a_dirty_worktree(self, tmp_path):
        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True,
                env={"PATH": os.environ["PATH"],
                     "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                     "HOME": str(tmp_path)},
            )

        try:
            git("init", "-q")
            (tmp_path / "f.txt").write_text("v1\n")
            git("add", "f.txt")
            git("commit", "-q", "-m", "c1")
        except Exception:
            pytest.skip("git unavailable or unconfigurable in this environment")
        (tmp_path / "f.txt").write_text("v2, uncommitted\n")
        revision = git_revision(cwd=tmp_path)
        # Dirty state never breaks capture: still the HEAD commit hash.
        assert revision is not None and len(revision) == 40


class TestWriteLoad:
    def test_manifest_lands_next_to_the_artifact(self, tmp_path):
        artifact = tmp_path / "trace.json"
        assert manifest_path_for(artifact) == tmp_path / "trace.json.manifest.json"

    def test_round_trip_via_artifact_or_manifest_path(self, tmp_path):
        config = SimulationConfig(n_users=10, seed=3)
        manifest = build_manifest(config, base_seed=3)
        artifact = tmp_path / "trace.json"
        artifact.write_text("{}")
        path = write_manifest(manifest, artifact)
        assert load_manifest(path) == manifest
        # The artifact path resolves to its manifest, never parsed itself.
        assert load_manifest(artifact) == manifest

    def test_incompatible_version_rejected(self, tmp_path):
        path = tmp_path / "x.manifest.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError, match="format_version"):
            load_manifest(path)

    def test_unknown_keys_ignored_on_load(self, tmp_path):
        manifest = build_manifest(None, base_seed=1)
        path = write_manifest(manifest, tmp_path / "out.json")
        payload = json.loads(path.read_text())
        payload["future_field"] = True
        path.write_text(json.dumps(payload))
        assert load_manifest(path) == manifest
