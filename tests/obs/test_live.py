"""Tests for the live operations layer: exposition, progress, dashboard."""

import json
from dataclasses import dataclass, field
from typing import Tuple

import pytest

from repro.obs.live import (
    EWMA_KEEP,
    JobProgress,
    PROGRESS_FILENAME,
    ProgressWriter,
    format_number,
    metric_value,
    parse_prometheus,
    progress_gauges,
    render_prometheus,
    render_top_frame,
    sparkline,
)
from repro.obs.metrics import MetricsRegistry


class TestFormatNumber:
    def test_integers_stay_integers(self):
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(-7.0) == "-7"

    def test_fractions_round_trip_via_repr(self):
        assert format_number(0.1) == "0.1"
        assert float(format_number(1 / 3)) == 1 / 3

    def test_infinities_use_prometheus_spelling(self):
        assert format_number(float("inf")) == "+Inf"
        assert format_number(float("-inf")) == "-Inf"

    def test_huge_integral_floats_keep_float_form(self):
        # Beyond 2**53-ish, int(value) would fabricate digits.
        assert format_number(1e306) == "1e+306"


class TestRenderPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_submissions_total", outcome="accepted").inc(3)
        registry.counter("repro_submissions_total", outcome="invalid").inc()
        registry.gauge("repro_queue_depth").set(2)
        histogram = registry.histogram(
            "repro_attempt_seconds", bounds=(1.0, 10.0)
        )
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(100.0)
        return registry

    def test_type_and_help_lines(self):
        text = render_prometheus(self._registry())
        assert "# HELP repro_queue_depth" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_submissions_total counter" in text
        assert "# TYPE repro_attempt_seconds histogram" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(self._registry())
        assert 'repro_attempt_seconds_bucket{le="1"} 1' in text
        assert 'repro_attempt_seconds_bucket{le="10"} 2' in text
        assert 'repro_attempt_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_attempt_seconds_sum 105.5" in text
        assert "repro_attempt_seconds_count 3" in text

    def test_scrapes_are_byte_identical(self):
        registry = self._registry()
        assert render_prometheus(registry) == render_prometheus(registry)

    def test_unknown_names_render_without_help(self):
        registry = MetricsRegistry()
        registry.gauge("bespoke_thing").set(1)
        text = render_prometheus(registry)
        assert "# HELP bespoke_thing" not in text
        assert "# TYPE bespoke_thing gauge" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("m", path='a"b\\c').inc()
        text = render_prometheus(registry)
        assert 'm{path="a\\"b\\\\c"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_ends_with_exactly_one_newline(self):
        text = render_prometheus(self._registry())
        assert text.endswith("\n") and not text.endswith("\n\n")


class TestParsePrometheus:
    def test_round_trips_the_rendering(self):
        registry = MetricsRegistry()
        registry.counter("hits", where="edge").inc(4)
        registry.gauge("depth").set(2.5)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed['hits{where="edge"}'] == 4.0
        assert parsed["depth"] == 2.5

    def test_comments_and_blanks_skipped(self):
        parsed = parse_prometheus("# HELP x y\n\nx 1\n")
        assert parsed == {"x": 1.0}

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("justoneword\n")

    def test_metric_value_ignores_label_order(self):
        parsed = {'m{a="1",b="2"}': 7.0}
        assert metric_value(parsed, "m", b="2", a="1") == 7.0
        assert metric_value(parsed, "m", a="1") is None
        assert metric_value(parsed, "absent") is None


@dataclass
class FakeRound:
    """Just the RoundRecord surface ProgressWriter reads."""

    round_no: int
    total_paid: float = 0.0
    completed_task_ids: Tuple[int, ...] = ()
    dynamics: Tuple = ()


@dataclass
class FakeEvent:
    kind: str = "task_published"
    payload: dict = field(default_factory=dict)


class TestJobProgress:
    def _progress(self, **overrides):
        base = dict(
            job_id="job-1", round_no=3, rounds_total=10, spend=12.5,
            budget=100.0, completeness=0.25, eta_seconds=14.0,
            round_seconds_ewma=2.0, attempt=1, updated_at=1000.0,
        )
        base.update(overrides)
        return JobProgress(**base)

    def test_write_read_round_trip(self, tmp_path):
        progress = self._progress()
        path = progress.write(tmp_path)
        assert path.name == PROGRESS_FILENAME
        assert JobProgress.read(tmp_path) == progress

    def test_missing_file_reads_none(self, tmp_path):
        assert JobProgress.read(tmp_path) is None

    def test_torn_file_reads_none(self, tmp_path):
        (tmp_path / PROGRESS_FILENAME).write_text('{"job_id": "x", "rou')
        assert JobProgress.read(tmp_path) is None

    def test_wrong_shape_reads_none(self, tmp_path):
        (tmp_path / PROGRESS_FILENAME).write_text('{"job_id": "x"}')
        assert JobProgress.read(tmp_path) is None

    def test_file_is_sorted_json(self, tmp_path):
        self._progress().write(tmp_path)
        raw = (tmp_path / PROGRESS_FILENAME).read_text()
        keys = list(json.loads(raw))
        assert keys == sorted(keys)


class TestProgressWriter:
    def test_accumulates_spend_and_completeness(self, tmp_path):
        writer = ProgressWriter(
            tmp_path, "job-7", rounds_total=4, budget=100.0, n_tasks=4,
            clock=lambda: 42.0,
        )
        writer(FakeRound(1, total_paid=10.0, completed_task_ids=(0,)))
        writer(FakeRound(2, total_paid=5.0, completed_task_ids=(0, 2)))
        progress = JobProgress.read(tmp_path)
        assert progress.spend == 15.0
        assert progress.completeness == pytest.approx(2 / 4)
        assert progress.round_no == 2
        assert progress.updated_at == 42.0
        assert progress.job_id == "job-7"

    def test_open_world_arrivals_grow_the_denominator(self, tmp_path):
        writer = ProgressWriter(
            tmp_path, "j", rounds_total=3, budget=10.0, n_tasks=2,
        )
        writer(FakeRound(
            1, completed_task_ids=(0, 1), dynamics=(FakeEvent(), FakeEvent()),
        ))
        assert JobProgress.read(tmp_path).completeness == pytest.approx(2 / 4)

    def test_ewma_smooths_round_times(self, tmp_path):
        writer = ProgressWriter(
            tmp_path, "j", rounds_total=10, budget=1.0, n_tasks=1,
        )
        # Drive the perf_counter marks by hand for determinism.
        writer._last_mark = 0.0
        real_counter = [2.0]
        import repro.obs.live as live

        original = live.perf_counter
        live.perf_counter = lambda: real_counter[0]
        try:
            writer(FakeRound(1))
            assert writer._ewma == pytest.approx(2.0)
            real_counter[0] = 6.0  # a 4 s round
            writer(FakeRound(2))
        finally:
            live.perf_counter = original
        expected = EWMA_KEEP * 2.0 + (1.0 - EWMA_KEEP) * 4.0
        assert writer._ewma == pytest.approx(expected)
        assert writer.last.eta_seconds == pytest.approx(expected * 8)

    def test_zero_task_world_never_divides_by_zero(self, tmp_path):
        writer = ProgressWriter(
            tmp_path, "j", rounds_total=1, budget=1.0, n_tasks=0,
        )
        writer(FakeRound(1))
        assert JobProgress.read(tmp_path).completeness == 0.0


class TestSparkline:
    def test_empty_is_blank(self):
        assert sparkline([], width=4) == "    "

    def test_rises_left_to_right(self):
        assert sparkline([0.0, 0.5, 1.0], width=3) == "▁▄█"

    def test_short_history_right_aligns(self):
        assert sparkline([0.0, 1.0], width=4) == "  ▁█"

    def test_flat_positive_history_renders_full(self):
        assert sparkline([0.5, 0.5], width=2) == "██"

    def test_window_keeps_the_latest(self):
        assert sparkline([1.0, 0.0, 1.0], width=2) == "▁█"


class TestRenderTopFrame:
    def test_running_job_row_shows_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("repro_queue_depth").set(1)
        registry.gauge("repro_running_jobs").set(1)
        progress_gauges(registry, JobProgress(
            job_id="job-1", round_no=3, rounds_total=10, spend=40.0,
            budget=100.0, completeness=0.3, eta_seconds=70.0,
            round_seconds_ewma=10.0, attempt=1, updated_at=0.0,
        ))
        parsed = parse_prometheus(render_prometheus(registry))
        frame = render_top_frame(
            parsed,
            [{"job_id": "job-1", "state": "running"}],
            {"job-1": [0.1, 0.3]},
        )
        assert "queue=1 running=1" in frame
        assert "3/10" in frame
        assert "40/100" in frame
        assert "30.0" in frame
        assert "1m10s" in frame

    def test_job_without_progress_shows_dashes(self):
        frame = render_top_frame(
            {}, [{"job_id": "job-2", "state": "queued"}], {},
        )
        line = frame.splitlines()[-1]
        assert "job-2" in line and "-" in line


class TestProgressGauges:
    def test_sets_all_six_series_for_the_job(self):
        registry = MetricsRegistry()
        progress_gauges(registry, JobProgress(
            job_id="job-9", round_no=1, rounds_total=2, spend=3.0,
            budget=4.0, completeness=0.5, eta_seconds=6.0,
            round_seconds_ewma=6.0, attempt=1, updated_at=0.0,
        ))
        parsed = parse_prometheus(render_prometheus(registry))
        assert metric_value(parsed, "repro_job_round", job="job-9") == 1.0
        assert metric_value(
            parsed, "repro_job_rounds_total", job="job-9"
        ) == 2.0
        assert metric_value(parsed, "repro_job_spend", job="job-9") == 3.0
        assert metric_value(parsed, "repro_job_budget", job="job-9") == 4.0
        assert metric_value(
            parsed, "repro_job_completeness", job="job-9"
        ) == 0.5
        assert metric_value(
            parsed, "repro_job_eta_seconds", job="job-9"
        ) == 6.0
