"""Concurrent-ingest stress tests for the run store's two lock paths.

The flock path (fcntl platforms) and the portable ``O_CREAT|O_EXCL``
lockfile fallback must both serialize the read-index / write-payload /
append-index critical section; without a working lock, 8 processes
hammering one store interleave index lines and mint duplicate run ids.
The fallback is forced via ``REPRO_OBS_NO_FCNTL=1``, so the stress runs
down both paths on any platform.
"""

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.store import (
    NO_FCNTL_ENV,
    RunStore,
    StoreError,
    _use_fcntl,
)

WORKER_SCRIPT = r"""
import os, sys
from repro.obs.store import RunStore

root, worker_id, n_ingests = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = RunStore(root)
for i in range(n_ingests):
    store.ingest(
        "stress",
        {"value": float(worker_id * 1000 + i)},
        labels={"worker": str(worker_id), "i": str(i)},
    )
"""

N_PROCESSES = 8
INGESTS_EACH = 12


def _hammer(tmp_path, extra_env):
    env = dict(os.environ)
    env.update(extra_env)
    src_root = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER_SCRIPT,
             str(tmp_path / "store"), str(worker), str(INGESTS_EACH)],
            env=env, stderr=subprocess.PIPE,
        )
        for worker in range(N_PROCESSES)
    ]
    for proc in procs:
        _, stderr = proc.communicate(timeout=240)
        assert proc.returncode == 0, stderr.decode()


def _assert_store_consistent(tmp_path):
    store = RunStore(tmp_path / "store")
    entries = store.entries(kind="stress")
    assert len(entries) == N_PROCESSES * INGESTS_EACH
    run_ids = [entry["run_id"] for entry in entries]
    assert len(set(run_ids)) == len(run_ids), "duplicate run ids minted"
    # Every index line parses (no interleaved/torn writes) and every
    # (worker, i) ingest landed exactly once.
    seen = {(e["labels"]["worker"], e["labels"]["i"]) for e in entries}
    assert len(seen) == N_PROCESSES * INGESTS_EACH
    for entry in entries:
        assert store.load(entry["run_id"]).values["value"] >= 0


class TestMultiprocessStress:
    def test_lockfile_fallback_path(self, tmp_path):
        """8 processes, fcntl disabled: the portable lock must hold."""
        _hammer(tmp_path, {NO_FCNTL_ENV: "1"})
        _assert_store_consistent(tmp_path)

    @pytest.mark.skipif(not _use_fcntl(), reason="no fcntl on this platform")
    def test_flock_path(self, tmp_path):
        _hammer(tmp_path, {})
        _assert_store_consistent(tmp_path)


class TestStaleLockStealing:
    def _store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(NO_FCNTL_ENV, "1")
        return RunStore(tmp_path / "store")

    def test_dead_owner_lock_is_stolen(self, tmp_path, monkeypatch):
        store = self._store(tmp_path, monkeypatch)
        # A pid from a long-dead process: spawn-and-reap one.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        store._lockfile_path.write_text(f"{proc.pid} {time.time():.3f}\n")
        record, created = store.ingest("k", {"v": 1.0})
        assert created
        assert not store._lockfile_path.exists()

    def test_ancient_lock_is_stolen_even_with_live_pid(
        self, tmp_path, monkeypatch
    ):
        store = self._store(tmp_path, monkeypatch)
        ancient = time.time() - 10_000
        store._lockfile_path.write_text(f"{os.getpid()} {ancient:.3f}\n")
        os.utime(store._lockfile_path, (ancient, ancient))
        record, created = store.ingest("k", {"v": 1.0})
        assert created

    def test_unreadable_lockfile_uses_mtime(self, tmp_path, monkeypatch):
        store = self._store(tmp_path, monkeypatch)
        store._lockfile_path.write_text("garbage\n")
        ancient = time.time() - 10_000
        os.utime(store._lockfile_path, (ancient, ancient))
        record, created = store.ingest("k", {"v": 1.0})
        assert created

    def test_live_fresh_lock_times_out(self, tmp_path, monkeypatch):
        """A held lock (live pid, recent stamp) must NOT be stolen."""
        store = self._store(tmp_path, monkeypatch)
        store._lockfile_path.write_text(f"{os.getpid()} {time.time():.3f}\n")
        with pytest.raises(StoreError, match="could not acquire"):
            store._acquire_lockfile(timeout=0.3)

    def test_fallback_forced_by_env(self, tmp_path, monkeypatch):
        """With the env var set, ingest uses (and cleans up) the lockfile."""
        store = self._store(tmp_path, monkeypatch)
        store.ingest("k", {"v": 1.0})
        assert not store._lockfile_path.exists()
        # Under fcntl the flock sidecar exists instead; both paths must
        # leave the store readable.
        assert len(store.entries(kind="k")) == 1
