"""Tests for baseline-window regression detection."""

import pytest

from repro.obs.regress import (
    BENCH_SPECS,
    MetricSpec,
    RegressionReport,
    Thresholds,
    default_spec,
    detect,
    regress_series,
    regress_store,
)
from repro.obs.store import RunStore

LATENCY = MetricSpec("selector_ms", "higher-is-worse")
SPEEDUP = MetricSpec("speedup", "lower-is-worse")
DRIFT = MetricSpec("mean_profit", "two-sided")

#: A realistic baseline: ~1 ms latency with a little jitter.
BASELINE = [1.00, 1.02, 0.98, 1.01, 0.99]


class TestSpecsAndThresholds:
    def test_direction_validated(self):
        with pytest.raises(ValueError, match="unknown direction"):
            MetricSpec("x", "sideways")

    def test_thresholds_validated(self):
        with pytest.raises(ValueError, match="z_warn"):
            Thresholds(z_warn=7.0, z_fail=6.0)
        with pytest.raises(ValueError, match="rel_warn"):
            Thresholds(rel_warn=0.9, rel_fail=0.5)
        with pytest.raises(ValueError, match="min_window"):
            Thresholds(min_window=0)

    def test_default_spec_heuristics(self):
        assert default_spec("speedup").direction == "lower-is-worse"
        assert default_spec("summary/coverage").direction == "lower-is-worse"
        assert default_spec("vectorized_ms_per_call").direction == "higher-is-worse"
        assert default_spec("selector_seconds/p95").direction == "higher-is-worse"
        assert default_spec("process_rss_peak_bytes").direction == "higher-is-worse"
        assert default_spec("budget_remaining").direction == "two-sided"

    def test_bench_specs_cover_the_trajectory_fields(self):
        from repro.obs.store import BENCH_VALUE_FIELDS

        assert set(BENCH_SPECS) == set(BENCH_VALUE_FIELDS)

    def test_throughput_drop_is_a_regression(self):
        assert BENCH_SPECS["batched_rounds_per_second"].direction == (
            "lower-is-worse"
        )
        assert default_spec("rounds_per_second").direction == "lower-is-worse"


class TestDetect:
    def test_doubled_latency_regresses(self):
        verdict = detect(BASELINE, 2.0, LATENCY)
        assert verdict.status == "regressed"
        assert verdict.method == "mad-z"
        assert verdict.deviation > 6.0
        assert "candidate 2" in verdict.evidence

    def test_unchanged_latency_is_ok(self):
        verdict = detect(BASELINE, 1.0, LATENCY)
        assert verdict.status == "ok"
        assert abs(verdict.deviation) < 1.0

    def test_latency_improvement_never_flags(self):
        verdict = detect(BASELINE, 0.5, LATENCY)
        assert verdict.status == "ok"
        assert verdict.deviation < 0

    def test_halved_speedup_regresses(self):
        verdict = detect([5.0, 5.1, 4.9, 5.05, 4.95], 2.5, SPEEDUP)
        assert verdict.status == "regressed"

    def test_two_sided_flags_drift_either_way(self):
        baseline = [10.0, 10.1, 9.9, 10.05, 9.95]
        assert detect(baseline, 20.0, DRIFT).status == "regressed"
        assert detect(baseline, 5.0, DRIFT).status == "regressed"
        assert detect(baseline, 10.0, DRIFT).status == "ok"

    def test_zero_spread_baseline_falls_back_to_relative(self):
        verdict = detect([1.0] * 5, 2.0, LATENCY)
        assert verdict.method == "relative"
        assert verdict.status == "regressed"
        assert verdict.deviation == pytest.approx(1.0)

    def test_short_window_falls_back_to_relative(self):
        verdict = detect([1.0, 1.1], 1.05, LATENCY)
        assert verdict.method == "relative"
        assert verdict.status == "ok"

    def test_warn_band_between_thresholds(self):
        verdict = detect([1.0] * 5, 1.3, LATENCY)
        assert verdict.method == "relative"
        assert verdict.status == "warn"

    def test_empty_baseline_raises(self):
        with pytest.raises(ValueError, match="empty baseline"):
            detect([], 1.0, LATENCY)


class TestRegressSeries:
    def test_uses_only_the_window_before_the_candidate(self):
        # An old regression in the history must not poison the window.
        values = [9.0] + BASELINE + [1.0]
        verdict = regress_series(values, LATENCY, window=5)
        assert verdict.status == "ok"
        assert verdict.baseline == tuple(BASELINE)

    def test_too_short_series_is_skipped(self):
        for values in ([], [1.0], [1.0, 2.0]):
            verdict = regress_series(values, LATENCY)
            assert verdict.status == "skipped"
            assert verdict.candidate is None

    def test_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            regress_series(BASELINE + [1.0], LATENCY, window=0)


class TestRegressStore:
    def _store(self, tmp_path, latencies):
        store = RunStore(tmp_path / "store")
        for value in latencies:
            store.ingest("bench", {"vectorized_ms_per_call": value})
        return store

    def test_flags_only_the_regressed_kind_metric(self, tmp_path):
        store = self._store(tmp_path, BASELINE + [2.0])
        for value in (1.0, 1.0, 1.0, 1.0):
            store.ingest("simulate", {"summary/coverage": value})
        report = regress_store(store)
        by_metric = {(v.kind, v.metric): v for v in report.verdicts}
        assert by_metric[("bench", "vectorized_ms_per_call")].status == "regressed"
        assert by_metric[("simulate", "summary/coverage")].status == "ok"
        assert report.status == "regressed"
        assert report.exit_code() == 1
        assert report.exit_code(warn_only=True) == 0

    def test_ok_store_exits_zero(self, tmp_path):
        store = self._store(tmp_path, BASELINE + [1.0])
        report = regress_store(store)
        assert report.status == "ok"
        assert report.exit_code() == 0

    def test_explicit_specs_override_the_curated_defaults(self, tmp_path):
        store = self._store(tmp_path, BASELINE + [0.1])
        flipped = {
            "vectorized_ms_per_call":
                MetricSpec("vectorized_ms_per_call", "lower-is-worse")
        }
        report = regress_store(store, specs=flipped)
        assert report.verdicts[0].status == "regressed"

    def test_skipped_series_hidden_unless_requested(self, tmp_path):
        store = self._store(tmp_path, [1.0])
        assert regress_store(store).verdicts == ()
        report = regress_store(store, include_skipped=True)
        assert [v.status for v in report.verdicts] == ["skipped"]

    def test_verdicts_sorted_worst_first_within_kind(self, tmp_path):
        store = RunStore(tmp_path / "store")
        for value in BASELINE:
            store.ingest("bench", {"a_ok_seconds": value, "b_bad_seconds": value})
        store.ingest("bench", {"a_ok_seconds": 1.0, "b_bad_seconds": 5.0})
        report = regress_store(store)
        assert [v.metric for v in report.verdicts] == [
            "b_bad_seconds", "a_ok_seconds",
        ]

    def test_as_dict_is_json_shaped(self, tmp_path):
        import json

        store = self._store(tmp_path, BASELINE + [2.0])
        payload = json.loads(json.dumps(regress_store(store).as_dict()))
        assert payload["status"] == "regressed"
        assert payload["verdicts"][0]["metric"] == "vectorized_ms_per_call"


class TestRegressionReport:
    def test_empty_report_is_skipped_and_green(self):
        report = RegressionReport()
        assert report.status == "skipped"
        assert report.exit_code() == 0
