"""Tests for the terminal and single-file HTML dashboards."""

from html.parser import HTMLParser

import pytest

from repro.obs.report import (
    diff_records,
    render_html_dashboard,
    render_terminal_dashboard,
    write_html_dashboard,
)
from repro.obs.store import RunStore

BASELINE = [1.00, 1.02, 0.98, 1.01, 0.99]


@pytest.fixture
def store(tmp_path):
    store = RunStore(tmp_path / "store")
    for value in BASELINE + [2.0]:
        store.ingest(
            "bench",
            {"vectorized_ms_per_call": value, "speedup": 5.0},
            labels={"scale": "tiny"},
        )
    store.ingest("simulate", {"summary/coverage": 1.0})
    return store


class TestTerminalDashboard:
    def test_shows_trends_and_verdicts(self, store):
        text = render_terminal_dashboard(store, window=5)
        assert f"observatory: {store.root} (7 runs)" in text
        assert "[bench] 6 runs" in text
        assert "vectorized_ms_per_call" in text
        assert "summary/coverage = 1 (single run)" in text
        assert "regression verdicts" in text
        assert "regressed" in text

    def test_empty_store_renders(self, tmp_path):
        text = render_terminal_dashboard(RunStore(tmp_path / "empty"))
        assert "(0 runs)" in text


class _WellFormedChecker(HTMLParser):
    VOID = {"meta", "line", "circle", "polyline", "input", "br", "link"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack, self.errors = [], []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(f"misnested </{tag}>")
        else:
            self.stack.pop()


class TestHtmlDashboard:
    def test_is_well_formed_and_self_contained(self, store):
        page = render_html_dashboard(store)
        checker = _WellFormedChecker()
        checker.feed(page)
        assert checker.errors == []
        assert checker.stack == []
        # Self-contained: no external scripts, stylesheets, or images.
        assert "http://" not in page and "https://" not in page
        assert "<style>" in page and "<script>" in page

    def test_carries_trends_verdicts_and_runs(self, store):
        page = render_html_dashboard(store)
        assert "vectorized_ms_per_call" in page
        assert "<svg" in page and "polyline" in page
        # Status chips pair a glyph + word with the color, never color alone.
        assert "✕ regressed" in page
        assert "bench-000006" in page
        assert "prefers-color-scheme: dark" in page
        # The dedupe fingerprint label is store plumbing, not dashboard data.
        assert "ingest_fingerprint" not in page

    def test_labels_are_escaped(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.ingest("bench", {"x": 1.0}, labels={"note": "<b>&'\"</b>"})
        page = render_html_dashboard(store)
        assert "<b>" not in page.split("<body>")[1].replace("<body>", "")
        assert "&lt;b&gt;" in page

    def test_write_is_atomic_and_returns_the_path(self, store, tmp_path):
        path = write_html_dashboard(store, tmp_path / "dash.html")
        assert path.read_text().startswith("<!doctype html>")


class TestDiffRecords:
    def test_pairs_values_and_computes_deltas(self):
        rows = diff_records({"a": 1.0, "b": 2.0}, {"b": 3.0, "c": 4.0})
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["a"]["b"] is None and by_metric["a"]["delta"] is None
        assert by_metric["b"]["delta"] == 1.0
        assert by_metric["b"]["pct"] == pytest.approx(50.0)
        assert by_metric["c"]["a"] is None

    def test_zero_baseline_has_no_pct(self):
        (row,) = diff_records({"a": 0.0}, {"a": 1.0})
        assert row["delta"] == 1.0
        assert row["pct"] is None
