"""Tests for the run store: ingestion, queries, durability, bench shim."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.store import (
    DEDUPE_LABEL,
    RunStore,
    StoreError,
    ingest_bench_trajectory,
    registry_values,
)


def bench_entry(speedup=5.0, timestamp="2026-01-01T00:00:00Z"):
    return {
        "timestamp": timestamp,
        "python": "3.12.0",
        "numpy": "1.26.0",
        "n_tasks": 20,
        "scale": "full",
        "reference_ms_per_call": 10.0,
        "vectorized_ms_per_call": 10.0 / speedup,
        "speedup": speedup,
        "mean_profit": 12.5,
    }


class TestIngest:
    def test_assigns_sequential_run_ids(self, tmp_path):
        store = RunStore(tmp_path / "store")
        first, created = store.ingest("bench", {"speedup": 5.0})
        second, _ = store.ingest("bench", {"speedup": 4.0})
        assert created
        assert first.run_id == "bench-000001"
        assert second.run_id == "bench-000002"
        assert len(store) == 2

    def test_payload_round_trips(self, tmp_path):
        store = RunStore(tmp_path / "store")
        record, _ = store.ingest(
            "simulate",
            {"coverage": 1.0},
            labels={"seed": 3},
            manifest={"base_seed": 3},
            metrics={"payout_total": {"kind": "counter", "value": 2.0}},
            trace_summary=[{"name": "select", "count": 5}],
        )
        loaded = store.load(record.run_id)
        assert loaded == record
        assert loaded.labels == {"seed": "3"}
        assert loaded.manifest == {"base_seed": 3}
        assert loaded.trace_summary == [{"name": "select", "count": 5}]

    def test_dedupe_key_makes_ingestion_idempotent(self, tmp_path):
        store = RunStore(tmp_path / "store")
        first, created_a = store.ingest("bench", {"x": 1.0}, dedupe_key="abc")
        again, created_b = store.ingest("bench", {"x": 1.0}, dedupe_key="abc")
        assert created_a and not created_b
        assert again.run_id == first.run_id
        assert len(store) == 1
        assert first.labels[DEDUPE_LABEL] == "abc"

    def test_rejects_bad_kind(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(StoreError, match="invalid run kind"):
            store.ingest("", {"x": 1.0})
        with pytest.raises(StoreError, match="invalid run kind"):
            store.ingest("a/b", {"x": 1.0})

    def test_rejects_non_numeric_and_non_finite_values(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(StoreError, match="must be numbers"):
            store.ingest("bench", {"x": "fast"})
        with pytest.raises(StoreError, match="must be numbers"):
            store.ingest("bench", {"x": True})
        with pytest.raises(StoreError, match="not finite"):
            store.ingest("bench", {"x": float("nan")})


class TestQueries:
    def _seed(self, tmp_path):
        store = RunStore(tmp_path / "store")
        for speedup in (5.0, 5.5, 6.0):
            store.ingest("bench", {"speedup": speedup}, labels={"scale": "full"})
        store.ingest("simulate", {"coverage": 1.0}, labels={"seed": "0"})
        return store

    def test_entries_filter_by_kind_and_labels(self, tmp_path):
        store = self._seed(tmp_path)
        assert len(store.entries()) == 4
        assert len(store.entries(kind="bench")) == 3
        assert len(store.entries(kind="bench", scale="full")) == 3
        assert store.entries(kind="bench", scale="tiny") == []

    def test_series_in_ingestion_order(self, tmp_path):
        store = self._seed(tmp_path)
        history = store.series("speedup", kind="bench")
        assert [value for _run, value in history] == [5.0, 5.5, 6.0]
        assert history[0][0] == "bench-000001"

    def test_series_skips_runs_without_the_value(self, tmp_path):
        store = self._seed(tmp_path)
        store.ingest("bench", {"other": 1.0})
        assert len(store.series("speedup", kind="bench")) == 3

    def test_kinds_and_value_names(self, tmp_path):
        store = self._seed(tmp_path)
        assert store.kinds() == ["bench", "simulate"]
        assert store.value_names(kind="simulate") == ["coverage"]

    def test_latest(self, tmp_path):
        store = self._seed(tmp_path)
        assert store.latest(kind="bench")["values"]["speedup"] == 6.0
        assert RunStore(tmp_path / "empty").latest() is None

    def test_load_unknown_run_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError, match="nope"):
            RunStore(tmp_path / "store").load("nope")


class TestDurability:
    def test_partial_trailing_index_line_is_skipped(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.ingest("bench", {"x": 1.0})
        with store.index_path.open("a") as handle:
            handle.write('{"format_version": 1, "run_id": "bench-0000')
        assert len(store) == 1
        # The next ingest appends cleanly after the torn line.
        record, _ = store.ingest("bench", {"x": 2.0})
        assert record.run_id == "bench-000002"

    def test_mid_stream_corruption_is_loud(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.ingest("bench", {"x": 1.0})
        lines = store.index_path.read_text().splitlines()
        store.index_path.write_text("\n".join(["garbage"] + lines) + "\n")
        with pytest.raises(StoreError, match="corrupt index line 1"):
            store.entries()

    def test_future_format_version_is_rejected(self, tmp_path):
        store = RunStore(tmp_path / "store")
        record, _ = store.ingest("bench", {"x": 1.0})
        entry = json.loads(store.index_path.read_text())
        entry["format_version"] = 99
        store.index_path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(StoreError, match="format_version 99"):
            store.entries()
        payload_path = store.root / "runs" / record.run_id / "record.json"
        payload = json.loads(payload_path.read_text())
        payload["format_version"] = 99
        payload_path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="format_version 99"):
            store.load(record.run_id)

    def test_blank_lines_are_tolerated(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.ingest("bench", {"x": 1.0})
        with store.index_path.open("a") as handle:
            handle.write("\n\n")
        assert len(store) == 1


class TestRegistryValues:
    def test_flattens_every_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("payout_total").inc(7.0)
        registry.gauge("budget_remaining").set(93.0)
        histogram = registry.histogram("selector_seconds", bounds=(0.1, 1.0))
        for value in (0.05, 0.2, 0.9):
            histogram.observe(value)
        values = registry_values(registry.as_dict())
        assert values["payout_total"] == 7.0
        assert values["budget_remaining"] == 93.0
        assert values["selector_seconds/count"] == 3.0
        assert values["selector_seconds/mean"] == pytest.approx(1.15 / 3)
        assert 0.05 <= values["selector_seconds/p50"] <= 0.9
        assert values["selector_seconds/p95"] <= 0.9

    def test_empty_histogram_contributes_only_count(self):
        registry = MetricsRegistry()
        registry.histogram("selector_seconds")
        values = registry_values(registry.as_dict())
        assert values == {"selector_seconds/count": 0.0}


class TestBenchShim:
    def test_ingests_each_entry_once(self, tmp_path):
        trajectory = tmp_path / "BENCH_selectors.json"
        trajectory.write_text(json.dumps(
            [bench_entry(5.0), bench_entry(6.0, "2026-01-02T00:00:00Z")]
        ))
        store = RunStore(tmp_path / "store")
        created = ingest_bench_trajectory(store, trajectory)
        assert len(created) == 2
        assert created[0].created_at == "2026-01-01T00:00:00Z"
        assert created[0].labels["scale"] == "full"
        assert created[0].values["speedup"] == 5.0
        # Re-ingesting the same file is a no-op.
        assert ingest_bench_trajectory(store, trajectory) == []
        assert len(store) == 2

    def test_appended_entries_extend_the_same_series(self, tmp_path):
        trajectory = tmp_path / "BENCH_selectors.json"
        trajectory.write_text(json.dumps([bench_entry(5.0)]))
        store = RunStore(tmp_path / "store")
        ingest_bench_trajectory(store, trajectory)
        trajectory.write_text(json.dumps(
            [bench_entry(5.0), bench_entry(7.0, "2026-01-03T00:00:00Z")]
        ))
        created = ingest_bench_trajectory(store, trajectory)
        assert [r.values["speedup"] for r in created] == [7.0]
        history = store.series("speedup", kind="bench")
        assert [value for _run, value in history] == [5.0, 7.0]

    def test_entries_with_bench_field_get_their_own_kind(self, tmp_path):
        # Engine-bench entries share the trajectory file with selector
        # entries but must keep a separate regression baseline.
        trajectory = tmp_path / "BENCH_selectors.json"
        engine_entry = {
            "timestamp": "2026-01-02T00:00:00Z",
            "bench": "engine",
            "scale": "full",
            "scalar_rounds_per_second": 0.2,
            "batched_rounds_per_second": 1.5,
            "engine_speedup": 7.5,
        }
        trajectory.write_text(json.dumps([bench_entry(5.0), engine_entry]))
        store = RunStore(tmp_path / "store")
        created = ingest_bench_trajectory(store, trajectory)
        assert sorted(r.kind for r in created) == ["bench", "bench:engine"]
        engine_run = next(r for r in created if r.kind == "bench:engine")
        assert engine_run.values["engine_speedup"] == 7.5
        assert engine_run.labels["bench"] == "engine"
        history = store.series("engine_speedup", kind="bench:engine")
        assert [value for _run, value in history] == [7.5]

    def test_rejects_non_trajectory_files(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text("{not json")
        store = RunStore(tmp_path / "store")
        with pytest.raises(StoreError, match="not a JSON bench trajectory"):
            ingest_bench_trajectory(store, bogus)
        bogus.write_text(json.dumps({"speedup": 5.0}))
        with pytest.raises(StoreError, match="list of objects"):
            ingest_bench_trajectory(store, bogus)
