"""Tests for the structured logger: context binding, formatters, levels."""

import io
import json
import logging

from repro.obs.log import (
    JsonFormatter,
    KeyValueFormatter,
    bind,
    configure_logging,
    current_context,
    get_logger,
    verbosity_to_level,
)


class TestGetLogger:
    def test_names_hang_off_repro_root(self):
        assert get_logger("selection.watchdog").name == "repro.selection.watchdog"

    def test_already_prefixed_names_pass_through(self):
        assert get_logger("repro.io").name == "repro.io"

    def test_empty_name_is_the_root(self):
        assert get_logger().name == "repro"


class TestBind:
    def test_fields_visible_inside_scope_only(self):
        assert current_context() == {}
        with bind(round=3, mechanism="on-demand"):
            assert current_context() == {"round": 3, "mechanism": "on-demand"}
        assert current_context() == {}

    def test_inner_bind_shadows_then_restores(self):
        with bind(round=1):
            with bind(round=2, rep=7):
                assert current_context() == {"round": 2, "rep": 7}
            assert current_context() == {"round": 1}

    def test_restores_on_exception(self):
        try:
            with bind(round=1):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_context() == {}


class TestVerbosityMapping:
    def test_default_is_warnings_only(self):
        assert verbosity_to_level() == logging.WARNING

    def test_v_opens_info_vv_debug(self):
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(5) == logging.DEBUG

    def test_quiet_wins(self):
        assert verbosity_to_level(2, quiet=True) == logging.ERROR


class TestConfigureLogging:
    # The autouse _restore_repro_logger fixture (tests/conftest.py)
    # rolls back the handler/level/propagation changes made here.

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        for _ in range(3):
            configure_logging(stream=stream)
        get_logger("test").warning("once")
        assert stream.getvalue().count("once") == 1

    def test_context_travels_to_log_lines(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        with bind(round=4, seed=7):
            get_logger("engine").warning("checking", extra={"phase": "select"})
        line = stream.getvalue().strip()
        assert "round=4" in line and "seed=7" in line and "phase=select" in line

    def test_json_output_is_one_object_per_line(self):
        stream = io.StringIO()
        configure_logging(json_output=True, stream=stream)
        with bind(rep=2):
            get_logger("runner").warning("hello")
        payload = json.loads(stream.getvalue().strip())
        assert payload["message"] == "hello"
        assert payload["rep"] == 2
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.runner"

    def test_default_level_is_warning(self):
        stream = io.StringIO()
        configure_logging(stream=stream)
        get_logger("x").info("invisible")
        get_logger("x").warning("visible")
        assert "invisible" not in stream.getvalue()
        assert "visible" in stream.getvalue()


def _record(msg="m", **extra):
    record = logging.LogRecord(
        name="repro.t", level=logging.WARNING, pathname="", lineno=0,
        msg=msg, args=(), exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestFormatters:
    def test_keyvalue_sorts_fields(self):
        text = KeyValueFormatter().format(_record("msg", zebra=1, alpha=2))
        assert text.endswith("| alpha=2 zebra=1")

    def test_extra_wins_over_context(self):
        record = _record("msg", round=9)
        record.context = {"round": 1, "seed": 3}
        text = KeyValueFormatter().format(record)
        assert "round=9" in text and "seed=3" in text

    def test_json_formatter_handles_unserialisable_values(self):
        payload = json.loads(JsonFormatter().format(_record("msg", obj=object())))
        assert payload["obj"].startswith("<object")


class TestLogModePropagation:
    # Also rolled back by the autouse _restore_repro_logger fixture.

    def test_unconfigured_logging_exports_nothing(self):
        root = logging.getLogger("repro")
        saved = list(root.handlers)
        root.handlers = [
            h for h in saved if not getattr(h, "_repro_obs_handler", False)
        ]
        try:
            from repro.obs.log import logging_environment

            assert logging_environment() == {}
        finally:
            root.handlers = saved

    def test_environment_reflects_json_mode_and_level(self):
        from repro.obs.log import (
            LOG_JSON_ENV,
            LOG_LEVEL_ENV,
            logging_environment,
        )

        stream = io.StringIO()
        configure_logging(verbosity=1, json_output=True, stream=stream)
        env = logging_environment()
        assert env[LOG_JSON_ENV] == "1"
        assert env[LOG_LEVEL_ENV] == str(logging.INFO)
        configure_logging(stream=stream)
        assert logging_environment()[LOG_JSON_ENV] == "0"

    def test_round_trip_through_a_child_configuration(self):
        from repro.obs.log import (
            configure_logging_from_env,
            logging_environment,
        )

        parent_stream = io.StringIO()
        configure_logging(verbosity=2, json_output=True, stream=parent_stream)
        env = logging_environment()
        child_stream = io.StringIO()
        root = configure_logging_from_env(env, stream=child_stream)
        assert root.getEffectiveLevel() == logging.DEBUG
        get_logger("worker").debug("child line", extra={"attempt": 1})
        payload = json.loads(child_stream.getvalue().strip())
        assert payload["message"] == "child line"
        assert payload["attempt"] == 1

    def test_malformed_level_falls_back_to_warning(self):
        from repro.obs.log import (
            LOG_JSON_ENV,
            LOG_LEVEL_ENV,
            configure_logging_from_env,
        )

        stream = io.StringIO()
        root = configure_logging_from_env(
            {LOG_JSON_ENV: "nope", LOG_LEVEL_ENV: "loud"}, stream=stream,
        )
        assert root.getEffectiveLevel() == logging.WARNING
        get_logger("x").warning("kv line")
        assert "kv line" in stream.getvalue()
        # "nope" is not a truthy flag: key=value format, not JSON.
        assert not stream.getvalue().lstrip().startswith("{")
