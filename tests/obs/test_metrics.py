"""Tests for the metrics registry: instruments, merge determinism, JSON."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    series_key,
)
from repro.simulation.perf import PerfStats


class TestSeriesKey:
    def test_no_labels_is_bare_name(self):
        assert series_key("hits", {}) == "hits"

    def test_labels_render_sorted(self):
        assert (
            series_key("m", {"outcome": "ok", "level": 2})
            == "m{level=2,outcome=ok}"
        )


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter().inc(-1)


class TestHistogram:
    def test_bucketing_le_semantics(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        # 0.5 and 1.0 fall in the <=1.0 bucket; 5.0 in <=10.0; 100 overflows.
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.min == 0.5
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(106.5 / 4)

    def test_merge_adds_buckets_and_extremes(self):
        a, b = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        a.merge(b)
        assert a.bucket_counts == [1, 1]
        assert (a.min, a.max) == (0.5, 2.0)

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="ascend"):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram(bounds=())


class TestHistogramPercentile:
    def _uniform(self, bounds=(10.0, 20.0, 30.0)):
        histogram = Histogram(bounds=bounds)
        for value in (2.0, 14.0, 26.0, 38.0):
            histogram.observe(value)
        return histogram

    def test_interpolates_within_the_target_bucket(self):
        histogram = Histogram(bounds=(10.0, 20.0))
        for value in (12.0, 14.0, 16.0, 18.0):
            histogram.observe(value)
        # All mass in the (10, 20] bucket; the median interpolates halfway.
        assert histogram.percentile(50.0) == pytest.approx(15.0)

    def test_edges_clamp_to_observed_extremes(self):
        histogram = self._uniform()
        assert histogram.percentile(0.0) == 2.0
        assert histogram.percentile(100.0) == 38.0

    def test_monotone_in_q(self):
        histogram = self._uniform()
        quantiles = [histogram.percentile(q) for q in (5, 25, 50, 75, 95)]
        assert quantiles == sorted(quantiles)
        assert 2.0 <= quantiles[0] and quantiles[-1] <= 38.0

    def test_overflow_bucket_uses_the_observed_max(self):
        histogram = Histogram(bounds=(1.0,))
        for value in (0.5, 5.0, 9.0):
            histogram.observe(value)
        assert histogram.percentile(99.0) <= 9.0

    def test_empty_histogram_has_no_percentiles(self):
        assert Histogram(bounds=(1.0,)).percentile(50.0) is None

    def test_empty_histogram_has_no_edge_percentiles_either(self):
        histogram = Histogram(bounds=(1.0,))
        assert histogram.percentile(0.0) is None
        assert histogram.percentile(100.0) is None

    def test_single_bucket_single_observation(self):
        histogram = Histogram(bounds=(10.0,))
        histogram.observe(4.0)
        # Every quantile of one sample is that sample.
        for q in (0.0, 1.0, 50.0, 100.0):
            assert histogram.percentile(q) == pytest.approx(4.0)

    def test_q_one_stays_within_the_lowest_mass(self):
        histogram = self._uniform()
        value = histogram.percentile(1.0)
        assert 2.0 <= value <= 10.0

    def test_q_out_of_range_rejected(self):
        histogram = self._uniform()
        for q in (-1.0, 101.0):
            with pytest.raises(ValueError, match="percentile"):
                histogram.percentile(q)


class TestRegistry:
    def test_same_name_same_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("events", outcome="ok").inc()
        registry.counter("events", outcome="ok").inc()
        registry.counter("events", outcome="bad").inc()
        assert registry.value("events", outcome="ok") == 2
        assert registry.value("events", outcome="bad") == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_empty_registry_is_falsy(self):
        registry = MetricsRegistry()
        assert not registry
        registry.counter("x")
        assert registry and len(registry) == 1

    def test_record_perf_maps_the_legacy_bundle(self):
        perf = PerfStats(
            problem_cache_hits=3, problem_cache_misses=1, price_cache_hits=2,
            dp_states_expanded=40, selector_calls=5, selector_wall_time=0.25,
        )
        registry = MetricsRegistry()
        registry.record_perf(perf)
        assert registry.value("problem_cache_hits") == 3
        assert registry.value("selector_calls") == 5
        assert registry.value("selector_seconds_total") == pytest.approx(0.25)


class TestMergeDeterminism:
    def _part(self, paid, budget_left, latency):
        registry = MetricsRegistry()
        registry.counter("payout_total").inc(paid)
        registry.gauge("budget_remaining").set(budget_left)
        registry.histogram("selector_seconds").observe(latency)
        return registry

    def test_counters_and_histograms_add(self):
        total = MetricsRegistry.merged(
            [self._part(10.0, 90.0, 0.001), self._part(5.0, 85.0, 0.2)]
        )
        assert total.value("payout_total") == 15.0
        assert total.series()["selector_seconds"].count == 2

    def test_gauge_takes_the_later_snapshot(self):
        total = MetricsRegistry.merged(
            [self._part(10.0, 90.0, 0.001), self._part(5.0, 85.0, 0.2)]
        )
        assert total.value("budget_remaining") == 85.0

    def test_fixed_merge_order_is_bit_identical(self):
        parts = [self._part(i * 1.5, 100.0 - i, 0.001 * i) for i in range(1, 6)]
        serial = MetricsRegistry.merged(parts)
        # Arrival order scrambled; folding in canonical order must agree.
        arrived = [parts[i] for i in (3, 0, 4, 2, 1)]
        recovered = MetricsRegistry.merged(
            sorted(arrived, key=lambda p: p.value("budget_remaining"), reverse=True)
        )
        assert recovered.as_dict() == serial.as_dict()

    def test_merge_does_not_alias_the_source(self):
        part = self._part(10.0, 90.0, 0.001)
        total = MetricsRegistry.merged([part])
        total.counter("payout_total").inc(5.0)
        assert part.value("payout_total") == 10.0

    def test_merge_none_is_a_noop(self):
        registry = MetricsRegistry()
        assert registry.merge(None) is registry

    def test_merge_mismatched_histogram_bounds_raises(self):
        # Never silently re-bucket: mixed-bound parts are a config bug.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("latency", bounds=(0.1, 1.0)).observe(0.5)
        b.histogram("latency", bounds=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="different bounds"):
            a.merge(b)

    def test_merge_empty_into_populated_is_identity(self):
        populated = self._part(10.0, 90.0, 0.001)
        before = populated.as_dict()
        populated.merge(MetricsRegistry())
        assert populated.as_dict() == before

    def test_merge_populated_into_empty_copies_everything(self):
        empty = MetricsRegistry()
        part = self._part(10.0, 90.0, 0.001)
        empty.merge(part)
        assert empty.as_dict() == part.as_dict()
        # ... without aliasing the source's instruments.
        empty.counter("payout_total").inc(1.0)
        assert part.value("payout_total") == 10.0


class TestSerialisation:
    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("events", outcome="ok").inc(4)
        registry.gauge("budget_remaining").set(12.5)
        registry.histogram("latency", bounds=(0.1, 1.0)).observe(0.05)
        payload = json.loads(json.dumps(registry.as_dict()))
        loaded = MetricsRegistry.from_dict(payload)
        assert loaded.as_dict() == registry.as_dict()
        assert loaded.value("events", outcome="ok") == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown instrument kind"):
            MetricsRegistry.from_dict({"x": {"kind": "banana", "value": 1}})

    def test_malformed_series_key_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            MetricsRegistry.from_dict({"x{bad": {"kind": "counter", "value": 1}})
