"""Unit tests for repro.analysis.significance."""

import numpy as np
import pytest

from repro.analysis.significance import (
    PairedComparison,
    bootstrap_mean_ci,
    compare_paired,
    paired_permutation_pvalue,
    sign_test_pvalue,
)


class TestBootstrap:
    def test_ci_contains_sample_mean_usually(self):
        rng = np.random.default_rng(0)
        data = list(rng.normal(5.0, 1.0, 40))
        low, high = bootstrap_mean_ci(data)
        assert low <= np.mean(data) <= high

    def test_ci_narrows_with_sample_size(self):
        rng = np.random.default_rng(1)
        small = list(rng.normal(0, 1, 10))
        large = list(rng.normal(0, 1, 400))
        low_s, high_s = bootstrap_mean_ci(small)
        low_l, high_l = bootstrap_mean_ci(large)
        assert (high_l - low_l) < (high_s - low_s)

    def test_constant_data_degenerate(self):
        low, high = bootstrap_mean_ci([3.0] * 10)
        assert low == high == 3.0

    def test_deterministic(self):
        data = [1.0, 2.0, 5.0, 3.0]
        assert bootstrap_mean_ci(data, seed=7) == bootstrap_mean_ci(data, seed=7)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_mean_ci([1.0], confidence=0.0)
        with pytest.raises(ValueError, match="resamples"):
            bootstrap_mean_ci([1.0], resamples=0)


class TestSignTest:
    def test_all_wins_is_significant(self):
        a = [2.0] * 12
        b = [1.0] * 12
        assert sign_test_pvalue(a, b) < 0.001

    def test_balanced_is_not_significant(self):
        a = [1, 2, 1, 2, 1, 2]
        b = [2, 1, 2, 1, 2, 1]
        assert sign_test_pvalue(a, b) == pytest.approx(1.0, abs=0.3)

    def test_all_ties(self):
        assert sign_test_pvalue([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_known_binomial_value(self):
        # 5 wins of 5: two-sided p = 2 * (1/32) = 1/16.
        assert sign_test_pvalue([1] * 5, [0] * 5) == pytest.approx(2 / 32)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            sign_test_pvalue([1.0], [1.0, 2.0])


class TestPermutation:
    def test_clear_difference_significant(self):
        rng = np.random.default_rng(2)
        b = list(rng.normal(0.0, 0.5, 30))
        a = [x + 2.0 for x in b]
        assert paired_permutation_pvalue(a, b) < 0.01

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(3)
        a = list(rng.normal(0.0, 1.0, 30))
        noise = list(rng.normal(0.0, 1.0, 30))
        b = [x + 0.01 * e for x, e in zip(a, noise)]
        assert paired_permutation_pvalue(a, b) > 0.05

    def test_identical_samples(self):
        assert paired_permutation_pvalue([1.0, 2.0], [1.0, 2.0]) == 1.0

    def test_deterministic(self):
        a, b = [1.0, 3.0, 2.0, 4.0], [0.5, 2.5, 2.5, 3.0]
        assert paired_permutation_pvalue(a, b, seed=4) == paired_permutation_pvalue(
            a, b, seed=4
        )

    def test_never_returns_zero(self):
        a = [10.0] * 20
        b = [0.0] * 20
        assert paired_permutation_pvalue(a, b) > 0.0


class TestComparePaired:
    def test_full_readout(self):
        a = [2.0, 3.0, 4.0, 5.0, 2.5, 3.5]
        b = [1.0, 2.5, 4.0, 4.0, 2.0, 3.0]
        comparison = compare_paired(a, b)
        assert isinstance(comparison, PairedComparison)
        assert comparison.mean_difference == pytest.approx(
            float(np.mean(np.array(a) - np.array(b)))
        )
        assert comparison.wins == 5
        assert comparison.ties == 1
        assert comparison.losses == 0
        assert comparison.n == 6
        assert comparison.ci_low <= comparison.mean_difference <= comparison.ci_high

    def test_significance_threshold(self):
        b = list(np.random.default_rng(5).normal(0, 0.1, 25))
        a = [x + 1.0 for x in b]
        assert compare_paired(a, b).significant()

    def test_on_simulation_metrics(self, fast_config):
        """End-to-end: on-demand vs fixed completeness on paired worlds."""
        from repro.experiments.runner import repeat_metric
        from repro.metrics import overall_completeness

        on_demand = repeat_metric(
            fast_config.with_overrides(mechanism="on-demand"),
            overall_completeness, repetitions=6,
        )
        fixed = repeat_metric(
            fast_config.with_overrides(mechanism="fixed"),
            overall_completeness, repetitions=6,
        )
        comparison = compare_paired(on_demand, fixed)
        assert comparison.mean_difference >= -0.05
