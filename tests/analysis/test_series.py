"""Unit tests for repro.analysis.series."""

import pytest

from repro.analysis.series import ExperimentResult, Series, SeriesPoint


def simple_result():
    return ExperimentResult(
        experiment_id="test",
        title="A test experiment",
        x_label="users",
        y_label="metric",
        series=[
            Series("a", (SeriesPoint(1, 10.0), SeriesPoint(2, 20.0))),
            Series("b", (SeriesPoint(1, 5.0), SeriesPoint(3, 15.0))),
        ],
        metadata={"reps": 3},
    )


class TestSeriesPoint:
    def test_from_values(self):
        point = SeriesPoint.from_values(40, [1.0, 2.0, 3.0])
        assert point.x == 40.0
        assert point.mean == pytest.approx(2.0)
        assert point.std == pytest.approx(1.0)
        assert point.n == 3


class TestSeries:
    def test_sorted_enforced(self):
        with pytest.raises(ValueError, match="sorted"):
            Series("bad", (SeriesPoint(2, 1.0), SeriesPoint(1, 1.0)))

    def test_accessors(self):
        series = Series("a", (SeriesPoint(1, 10.0), SeriesPoint(2, 20.0)))
        assert series.xs == [1, 2]
        assert series.means == [10.0, 20.0]
        assert series.point_at(2).mean == 20.0

    def test_point_at_missing(self):
        series = Series("a", (SeriesPoint(1, 10.0),))
        with pytest.raises(KeyError, match="no point"):
            series.point_at(9)


class TestExperimentResult:
    def test_series_by_label(self):
        result = simple_result()
        assert result.series_by_label("b").points[0].mean == 5.0
        with pytest.raises(KeyError, match="available"):
            result.series_by_label("c")

    def test_rows_union_of_xs(self):
        rows = simple_result().rows()
        assert [row[0] for row in rows] == [1, 2, 3]
        # Missing cells are None.
        assert rows[1] == [2, 20.0, None]
        assert rows[2] == [3, None, 15.0]

    def test_header(self):
        assert simple_result().header() == ["users", "a", "b"]

    def test_dict_roundtrip(self):
        result = simple_result()
        clone = ExperimentResult.from_dict(result.as_dict())
        assert clone.experiment_id == result.experiment_id
        assert clone.labels == result.labels
        assert clone.metadata == result.metadata
        for original, copied in zip(result.series, clone.series):
            assert original.points == copied.points
