"""Unit tests for repro.analysis.stats."""


import numpy as np
import pytest

from repro.analysis.stats import (
    confidence_interval,
    mean_std,
    summarize_box,
    _normal_quantile,
)


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            mean_std([])

    def test_constant_sequence(self):
        mean, std = mean_std([7.0] * 10)
        assert mean == 7.0
        assert std == 0.0


class TestConfidenceInterval:
    def test_contains_mean(self):
        low, high = confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert low <= 2.5 <= high

    def test_wider_at_higher_confidence(self):
        data = list(np.random.default_rng(0).normal(0, 1, 30))
        low95, high95 = confidence_interval(data, 0.95)
        low99, high99 = confidence_interval(data, 0.99)
        assert high99 - low99 > high95 - low95

    def test_degenerate_single_point(self):
        assert confidence_interval([3.0]) == (3.0, 3.0)

    def test_zero_variance(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            confidence_interval([1.0, 2.0], confidence=1.0)

    def test_coverage_simulation(self):
        """~95% of intervals should contain the true mean."""
        rng = np.random.default_rng(1)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=25)
            low, high = confidence_interval(list(sample), 0.95)
            if low <= 10.0 <= high:
                hits += 1
        assert 0.88 <= hits / trials <= 0.99


class TestNormalQuantile:
    @pytest.mark.parametrize("p,z", [(0.5, 0.0), (0.975, 1.959964), (0.995, 2.575829)])
    def test_known_quantiles(self, p, z):
        assert _normal_quantile(p) == pytest.approx(z, abs=1e-5)

    def test_symmetry(self):
        assert _normal_quantile(0.25) == pytest.approx(-_normal_quantile(0.75), abs=1e-9)

    def test_tails(self):
        assert _normal_quantile(1e-6) < -4.5
        assert _normal_quantile(1 - 1e-6) > 4.5

    def test_domain(self):
        with pytest.raises(ValueError, match="quantile"):
            _normal_quantile(0.0)


class TestBoxplot:
    def test_five_numbers(self):
        summary = summarize_box(list(range(1, 101)))
        assert summary.median == pytest.approx(50.5)
        assert summary.q1 == pytest.approx(25.75)
        assert summary.q3 == pytest.approx(75.25)
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.n == 100
        assert summary.outliers == ()

    def test_outlier_detection(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0]
        summary = summarize_box(data)
        assert 100.0 in summary.outliers
        assert summary.maximum < 100.0

    def test_iqr(self):
        summary = summarize_box([0.0, 25.0, 50.0, 75.0, 100.0])
        assert summary.iqr == pytest.approx(summary.q3 - summary.q1)

    def test_single_value(self):
        summary = summarize_box([3.0])
        assert summary.minimum == summary.maximum == summary.median == 3.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            summarize_box([])

    def test_whiskers_inside_fences(self):
        rng = np.random.default_rng(2)
        data = list(rng.normal(0, 1, 200))
        summary = summarize_box(data)
        low_fence = summary.q1 - 1.5 * summary.iqr
        high_fence = summary.q3 + 1.5 * summary.iqr
        assert low_fence <= summary.minimum
        assert summary.maximum <= high_fence
        assert all(v < low_fence or v > high_fence for v in summary.outliers)
