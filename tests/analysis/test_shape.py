"""Unit tests for repro.analysis.shape."""

import pytest

from repro.analysis.series import Series, SeriesPoint
from repro.analysis.shape import (
    crossover_points,
    dominates,
    final_value,
    is_monotonic,
)


def series(label, values, xs=None):
    xs = xs if xs is not None else list(range(len(values)))
    return Series(label, tuple(SeriesPoint(x, v) for x, v in zip(xs, values)))


class TestMonotonic:
    def test_increasing(self):
        assert is_monotonic([1, 2, 3])
        assert not is_monotonic([1, 3, 2])

    def test_decreasing(self):
        assert is_monotonic([3, 2, 1], increasing=False)
        assert not is_monotonic([1, 2], increasing=False)

    def test_tolerance_forgives_noise(self):
        assert is_monotonic([1.0, 0.95, 2.0], tolerance=0.1)
        assert not is_monotonic([1.0, 0.5, 2.0], tolerance=0.1)

    def test_short_sequences(self):
        assert is_monotonic([])
        assert is_monotonic([5])

    def test_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            is_monotonic([1, 2], tolerance=-1.0)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates(series("hi", [3, 4, 5]), series("lo", [1, 2, 3]))

    def test_violated_dominance(self):
        assert not dominates(series("a", [3, 1]), series("b", [2, 2]))

    def test_tolerance(self):
        assert dominates(series("a", [2.0, 1.95]), series("b", [2.0, 2.0]),
                         tolerance=0.1)

    def test_disjoint_xs_vacuous(self):
        a = series("a", [1.0], xs=[0])
        b = series("b", [99.0], xs=[1])
        assert dominates(a, b)

    def test_partial_overlap_compares_only_shared_xs(self):
        # Only x=1 is shared: a=5 >= b=1 there, so b's huge x=2 value
        # (outside the overlap) cannot break dominance.
        a = series("a", [5.0, 5.0], xs=[0, 1])
        b = series("b", [1.0, 99.0], xs=[1, 2])
        assert dominates(a, b)


class TestFinalValue:
    def test_last_point(self):
        assert final_value(series("a", [1, 2, 9])) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            final_value(Series("a", ()))


class TestCrossover:
    def test_single_crossover(self):
        a = series("a", [1, 2, 3, 4])
        b = series("b", [4, 3, 2, 1])
        assert crossover_points(a, b) == [(1, 2)]

    def test_no_crossover(self):
        a = series("a", [5, 6, 7])
        b = series("b", [1, 2, 3])
        assert crossover_points(a, b) == []

    def test_tie_does_not_count(self):
        a = series("a", [1, 2, 3])
        b = series("b", [1, 2, 3])
        assert crossover_points(a, b) == []

    def test_multiple_crossovers(self):
        a = series("a", [1, 3, 1, 3])
        b = series("b", [2, 2, 2, 2])
        assert crossover_points(a, b) == [(0, 1), (1, 2), (2, 3)]
