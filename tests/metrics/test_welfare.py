"""Unit tests for the platform-welfare metric."""

import pytest

from repro.metrics.welfare import on_time_measurements, platform_welfare, welfare_margin
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=20, n_tasks=8, rounds=8, required_measurements=4,
        area_side=2000.0, budget=300.0, seed=37,
    ))


class TestOnTime:
    def test_counts_by_deadline(self, result):
        expected = sum(t.received_by_deadline() for t in result.world.tasks)
        assert on_time_measurements(result) == expected

    def test_at_most_total_measurements(self, result):
        assert on_time_measurements(result) <= result.total_measurements


class TestWelfare:
    def test_linear_definition(self, result):
        welfare = platform_welfare(result, value_per_measurement=3.0)
        assert welfare == pytest.approx(
            3.0 * on_time_measurements(result) - result.total_paid
        )

    def test_zero_value_is_pure_cost(self, result):
        assert platform_welfare(result, 0.0) == pytest.approx(-result.total_paid)

    def test_value_at_max_price_covers_on_time_purchases(self, result):
        """At v = this config's max reward (budget / total required, the
        Eq. 8 tight point), every on-time purchase is weakly profitable,
        so welfare is non-negative whenever all purchases were on time."""
        max_price = 300.0 / 32.0
        welfare = platform_welfare(result, value_per_measurement=max_price)
        late = result.total_measurements - on_time_measurements(result)
        if late == 0:
            assert welfare >= -1e-9

    def test_negative_value_rejected(self, result):
        with pytest.raises(ValueError, match="value_per_measurement"):
            platform_welfare(result, -1.0)


class TestMargin:
    def test_ratio_definition(self, result):
        margin = welfare_margin(result, 3.0)
        assert margin == pytest.approx(
            platform_welfare(result, 3.0) / result.total_paid
        )

    def test_zero_spend_defined(self):
        config = SimulationConfig(
            n_users=2, n_tasks=3, rounds=2, required_measurements=2,
            area_side=3000.0, budget=100.0, user_time_budget=1.0, seed=3,
        )
        result = simulate(config)
        assert result.total_paid == 0.0
        assert welfare_margin(result) == 0.0


class TestMechanismOrdering:
    def test_on_demand_beats_steered_on_welfare(self):
        """Deadline-blind buying loses welfare even when it buys data."""
        config = SimulationConfig(n_users=100)
        on_demand = simulate(config.with_overrides(mechanism="on-demand", seed=2))
        steered = simulate(config.with_overrides(mechanism="steered", seed=2))
        assert platform_welfare(on_demand) > platform_welfare(steered)
