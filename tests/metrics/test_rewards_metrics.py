"""Unit tests for repro.metrics.rewards."""

import pytest

from repro.metrics.rewards import average_reward_per_measurement, total_paid
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=20, n_tasks=8, rounds=8, required_measurements=4,
        area_side=2000.0, budget=300.0, seed=23,
    ))


class TestRewards:
    def test_total_paid_matches_events(self, result):
        expected = sum(
            event.reward for record in result.rounds for event in record.measurements
        )
        assert total_paid(result) == pytest.approx(expected)

    def test_average_is_total_over_count(self, result):
        assert average_reward_per_measurement(result) == pytest.approx(
            result.total_paid / result.total_measurements
        )

    def test_average_within_schedule_range(self, result):
        # With this budget the ladder is r0 .. r0 + 4*step.
        from repro.core.rewards import RewardSchedule

        schedule = RewardSchedule.from_budget(
            budget=300.0, total_required_measurements=32, step=0.5
        )
        average = average_reward_per_measurement(result)
        assert schedule.base_reward <= average <= schedule.max_reward

    def test_zero_measurements_defines_zero(self):
        """Users too slow/far to ever reach a task: defined, not a crash."""
        config = SimulationConfig(
            n_users=2, n_tasks=3, rounds=2, required_measurements=2,
            area_side=3000.0, budget=100.0,
            user_time_budget=1.0,  # 2 m of travel: nothing reachable
            seed=3,
        )
        result = simulate(config)
        assert result.total_measurements == 0
        assert average_reward_per_measurement(result) == 0.0
