"""Unit tests for repro.metrics.measurements."""

import numpy as np
import pytest

from repro.metrics.measurements import (
    average_measurements,
    measurements_per_round,
    measurements_per_task,
    variance_of_measurements,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=20, n_tasks=8, rounds=8, required_measurements=4,
        area_side=2000.0, budget=300.0, seed=19,
    ))


class TestPerTask:
    def test_counts_match_world(self, result):
        counts = measurements_per_task(result)
        for task in result.world.tasks:
            assert counts[task.task_id] == task.received

    def test_average(self, result):
        counts = list(measurements_per_task(result).values())
        assert average_measurements(result) == pytest.approx(np.mean(counts))

    def test_variance(self, result):
        counts = list(measurements_per_task(result).values())
        assert variance_of_measurements(result) == pytest.approx(np.var(counts))

    def test_average_bounded_by_required(self, result):
        assert average_measurements(result) <= 4.0


class TestPerRound:
    def test_sums_to_total(self, result):
        series = measurements_per_round(result, horizon=8)
        assert sum(series) == result.total_measurements

    def test_zero_after_early_stop(self, result):
        series = measurements_per_round(result, horizon=15)
        assert all(v == 0 for v in series[result.rounds_played:])

    def test_matches_round_records(self, result):
        series = measurements_per_round(result, horizon=result.rounds_played)
        for round_no, value in enumerate(series, start=1):
            assert value == result.round(round_no).measurement_count

    def test_bad_horizon(self, result):
        with pytest.raises(ValueError, match="horizon"):
            measurements_per_round(result, horizon=0)
