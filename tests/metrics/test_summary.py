"""Unit tests for repro.metrics.summary."""

import pytest

from repro.metrics import (
    MetricsSummary,
    average_measurements,
    average_reward_per_measurement,
    coverage,
    overall_completeness,
    variance_of_measurements,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=20, n_tasks=8, rounds=8, required_measurements=4,
        area_side=2000.0, budget=300.0, seed=31,
    ))


class TestSummary:
    def test_fields_match_individual_metrics(self, result):
        summary = MetricsSummary.from_result(result)
        assert summary.coverage == pytest.approx(coverage(result))
        assert summary.overall_completeness == pytest.approx(
            overall_completeness(result)
        )
        assert summary.average_measurements == pytest.approx(
            average_measurements(result)
        )
        assert summary.variance_of_measurements == pytest.approx(
            variance_of_measurements(result)
        )
        assert summary.average_reward_per_measurement == pytest.approx(
            average_reward_per_measurement(result)
        )
        assert summary.total_measurements == result.total_measurements
        assert summary.rounds_played == result.rounds_played

    def test_as_dict_roundtrips_fields(self, result):
        summary = MetricsSummary.from_result(result)
        payload = summary.as_dict()
        assert payload["coverage"] == summary.coverage
        assert set(payload) == {
            "coverage", "overall_completeness", "completed_fraction",
            "average_measurements", "variance_of_measurements",
            "average_reward_per_measurement", "average_profit_per_user",
            "total_measurements", "total_paid", "rounds_played",
        }

    def test_summary_is_frozen(self, result):
        summary = MetricsSummary.from_result(result)
        with pytest.raises(AttributeError):
            summary.coverage = 0.0
