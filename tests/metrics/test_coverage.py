"""Unit tests for repro.metrics.coverage."""

import pytest

from repro.metrics.coverage import coverage, coverage_by_round, covered_task_ids
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=20, n_tasks=8, rounds=8, required_measurements=4,
        area_side=2000.0, budget=300.0, seed=13,
    ))


class TestCoverage:
    def test_matches_task_contributor_state(self, result):
        expected = sum(1 for t in result.world.tasks if t.was_selected) / len(
            result.world.tasks
        )
        assert coverage(result) == pytest.approx(expected)

    def test_bounded(self, result):
        assert 0.0 <= coverage(result) <= 1.0

    def test_cutoff_is_monotone(self, result):
        values = [coverage(result, up_to_round=r) for r in range(1, 9)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_cutoff_at_horizon_equals_total(self, result):
        assert coverage(result, up_to_round=8) == coverage(result)

    def test_covered_ids_subset_of_tasks(self, result):
        ids = covered_task_ids(result)
        assert ids <= {t.task_id for t in result.world.tasks}


class TestCoverageByRound:
    def test_length_matches_horizon(self, result):
        series = coverage_by_round(result, horizon=12)
        assert len(series) == 12

    def test_cumulative_monotone(self, result):
        series = coverage_by_round(result, horizon=12)
        assert all(a <= b for a, b in zip(series, series[1:]))

    def test_padding_after_early_stop(self, result):
        series = coverage_by_round(result, horizon=12)
        final = coverage(result)
        for value in series[result.rounds_played:]:
            assert value == pytest.approx(final)

    def test_matches_cutoff_metric(self, result):
        series = coverage_by_round(result, horizon=result.rounds_played)
        for round_no, value in enumerate(series, start=1):
            assert value == pytest.approx(coverage(result, up_to_round=round_no))

    def test_bad_horizon(self, result):
        with pytest.raises(ValueError, match="horizon"):
            coverage_by_round(result, horizon=0)
