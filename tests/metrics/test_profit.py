"""Unit tests for repro.metrics.profit."""

import numpy as np
import pytest

from repro.metrics.profit import (
    average_profit_per_user,
    profit_difference,
    user_profits,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def config():
    return SimulationConfig(
        n_users=18, n_tasks=7, rounds=8, required_measurements=4,
        area_side=2000.0, budget=300.0, seed=29,
    )


@pytest.fixture(scope="module")
def result(config):
    return simulate(config)


class TestUserProfits:
    def test_whole_run_length(self, result):
        assert len(user_profits(result)) == 18

    def test_round_matches_records(self, result):
        profits = user_profits(result, round_no=1)
        assert profits == [r.profit for r in result.round(1).user_records]

    def test_average_is_mean(self, result):
        assert average_profit_per_user(result) == pytest.approx(
            float(np.mean(user_profits(result)))
        )

    def test_round_past_history_is_zero(self, result):
        assert average_profit_per_user(result, round_no=99) == 0.0


class TestProfitDifference:
    def test_paired_difference(self, config):
        dp = simulate(config.with_overrides(selector="dp"))
        greedy = simulate(config.with_overrides(selector="greedy"))
        diff = profit_difference(dp, greedy, round_no=1)
        assert diff == pytest.approx(
            average_profit_per_user(dp, 1) - average_profit_per_user(greedy, 1)
        )

    def test_round_one_dp_at_least_greedy(self, config):
        """At round 1 both face identical worlds and prices, so the planned
        profit ordering survives into realized profits *in expectation*;
        we assert the exact per-problem ordering instead via build_problems
        elsewhere — here only that the metric is computable and finite."""
        dp = simulate(config.with_overrides(selector="dp"))
        greedy = simulate(config.with_overrides(selector="greedy"))
        assert np.isfinite(profit_difference(dp, greedy, round_no=1))
