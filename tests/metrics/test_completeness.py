"""Unit tests for repro.metrics.completeness."""

import pytest

from repro.metrics.completeness import (
    completed_fraction,
    completeness_at_round,
    completeness_by_round,
    overall_completeness,
    per_task_completeness,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import simulate


@pytest.fixture(scope="module")
def result():
    return simulate(SimulationConfig(
        n_users=20, n_tasks=8, rounds=10, required_measurements=4,
        deadline_range=(3, 9), area_side=2000.0, budget=300.0, seed=17,
    ))


class TestPerTask:
    def test_fractions_bounded(self, result):
        fractions = per_task_completeness(result)
        assert all(0.0 <= f <= 1.0 for f in fractions.values())

    def test_counts_only_measurements_before_deadline(self, result):
        fractions = per_task_completeness(result)
        for task in result.world.tasks:
            expected = min(
                1.0, task.received_by_deadline() / task.required_measurements
            )
            assert fractions[task.task_id] == pytest.approx(expected)


class TestAggregates:
    def test_overall_is_mean_of_per_task(self, result):
        fractions = per_task_completeness(result)
        assert overall_completeness(result) == pytest.approx(
            sum(fractions.values()) / len(fractions)
        )

    def test_completed_fraction_is_stricter(self, result):
        assert completed_fraction(result) <= overall_completeness(result) + 1e-12

    def test_completed_fraction_counts_full_tasks(self, result):
        fractions = per_task_completeness(result)
        full = sum(1 for f in fractions.values() if f >= 1.0 - 1e-12)
        assert completed_fraction(result) == pytest.approx(full / len(fractions))


class TestByRound:
    def test_monotone_nondecreasing(self, result):
        series = completeness_by_round(result, horizon=12)
        assert all(a <= b + 1e-12 for a, b in zip(series, series[1:]))

    def test_final_round_matches_overall(self, result):
        assert completeness_at_round(result, 12) == pytest.approx(
            overall_completeness(result)
        )

    def test_round_one_counts_only_round_one(self, result):
        value = completeness_at_round(result, 1)
        manual = 0.0
        for task in result.world.tasks:
            received = task.measurements_by_round.get(1, 0)
            manual += min(1.0, received / task.required_measurements)
        assert value == pytest.approx(manual / len(result.world.tasks))

    def test_validation(self, result):
        with pytest.raises(ValueError, match="round_no"):
            completeness_at_round(result, 0)
        with pytest.raises(ValueError, match="horizon"):
            completeness_by_round(result, 0)
