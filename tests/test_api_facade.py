"""The repro.api facade: the one blessed import surface.

Everything the README and examples use must be reachable from
``repro.api``; the facade's convenience entry points (scenario-aware
``simulate``, ``build_config``, ``summarize``, registry-backed
``create_*``) are pinned here.
"""

import pytest

from repro import api


FACADE_ESSENTIALS = {
    # run
    "simulate", "build_config", "make_engine", "summarize",
    "SimulationConfig", "SimulationResult",
    # scenarios
    "ScenarioSpec", "PRESETS", "get_preset", "load_scenario", "save_spec",
    # factories
    "create_mechanism", "create_selector",
    "MECHANISM_NAMES", "SELECTOR_NAMES",
    # experiments / io / metrics
    "run_experiment", "experiment_ids", "render_table", "render_experiment",
    "RoundStreamWriter", "read_events_jsonl", "MetricsSummary", "coverage",
    # world / geometry / selection
    "World", "MobileUser", "SensingTask", "Point", "RectRegion",
    "Selection", "TaskSelectionProblem",
    # stepwise sessions + fingerprints
    "open_session", "SimulationSession", "SessionObservation",
    "round_fingerprint", "result_fingerprint",
    # policy environment + wrapped policies
    "make_env", "IncentiveEnv", "PolicyMechanism", "POLICIES",
    "apply_incentive_action",
    # server client
    "connect", "ServerClient",
}


def test_facade_names_present_and_resolving():
    missing = FACADE_ESSENTIALS - set(api.__all__)
    assert not missing, f"missing from repro.api.__all__: {sorted(missing)}"
    for name in api.__all__:
        assert getattr(api, name, None) is not None, name


def test_facade_reexported_from_package_root():
    import repro

    assert repro.api is api
    assert "api" in repro.__all__


class TestSimulate:
    def test_scenario_by_name(self):
        result = api.simulate(scenario="paper-2018", n_users=12, n_tasks=4,
                              rounds=2, seed=0)
        assert result.rounds_played == 2

    def test_config_object(self):
        # The campaign may finish early once every task completes, so
        # assert it ran, not that it exhausted the horizon.
        config = api.SimulationConfig(n_users=10, n_tasks=4, rounds=2,
                                      required_measurements=2, seed=1)
        result = api.simulate(config)
        assert 1 <= result.rounds_played <= 2
        assert result.total_measurements > 0

    def test_overrides_only(self):
        result = api.simulate(n_users=10, n_tasks=4, rounds=2,
                              required_measurements=2, seed=1)
        assert 1 <= result.rounds_played <= 2

    def test_config_and_scenario_conflict(self):
        with pytest.raises(ValueError, match="scenario"):
            api.simulate(api.SimulationConfig(), scenario="paper-2018")


class TestBuildConfig:
    def test_scenario_plus_overrides(self):
        config = api.build_config(scenario="city-2k", n_users=50, seed=3)
        assert config.n_users == 50
        assert config.engine == "batched"  # from the preset

    def test_defaults_when_no_scenario(self):
        assert api.build_config().n_users == 100


class TestFactories:
    def test_create_selector(self):
        selector = api.create_selector("greedy")
        assert type(selector).__name__ == "GreedySelector"

    def test_create_mechanism(self):
        mechanism = api.create_mechanism("fixed")
        assert type(mechanism).__name__ == "FixedMechanism"

    def test_names_match_registries(self):
        assert "dp" in api.SELECTOR_NAMES
        assert "on-demand" in api.MECHANISM_NAMES


class TestOpenSession:
    def test_scenario_surface_matches_simulate(self):
        kwargs = dict(scenario="paper-2018", n_users=12, n_tasks=4,
                      rounds=2, seed=0)
        direct = api.simulate(**kwargs)
        with api.open_session(**kwargs) as session:
            stepped = session.run()
        assert api.result_fingerprint(direct) == api.result_fingerprint(stepped)

    def test_config_and_scenario_conflict(self):
        with pytest.raises(ValueError, match="scenario"):
            api.open_session(api.SimulationConfig(), scenario="paper-2018")


class TestMakeEnv:
    def test_env_from_scenario(self):
        env = api.make_env(scenario="paper-2018", n_users=12, n_tasks=4,
                           rounds=2)
        try:
            observation, info = env.reset(seed=0)
            assert env.observation_space.contains(observation)
            assert info["rounds_total"] == 2
        finally:
            env.close()

    def test_config_and_scenario_conflict(self):
        with pytest.raises(ValueError, match="scenario"):
            api.make_env(api.SimulationConfig(), scenario="paper-2018")


class TestConnect:
    def test_host_port(self):
        client = api.connect("somehost:9100")
        assert (client.host, client.port) == ("somehost", 9100)

    def test_url(self):
        client = api.connect("http://10.1.2.3:8080")
        assert (client.host, client.port) == ("10.1.2.3", 8080)

    def test_directory_without_server_file_raises(self, tmp_path):
        from repro.server.client import ServerUnavailable

        with pytest.raises(ServerUnavailable):
            api.connect(tmp_path)


def test_summarize_returns_metrics_summary():
    result = api.simulate(n_users=10, n_tasks=4, rounds=2,
                          required_measurements=2, seed=1)
    summary = api.summarize(result)
    assert isinstance(summary, api.MetricsSummary)
    assert 0.0 <= summary.coverage <= 1.0


def test_examples_import_only_the_facade():
    """Examples are facade-only: `from repro.api import ...` (or nothing)."""
    import re
    from pathlib import Path

    examples = Path(__file__).resolve().parent.parent / "examples"
    pattern = re.compile(
        r"^\s*(?:from\s+(repro[.\w]*)\s+import|import\s+(repro[.\w]*))",
        re.MULTILINE,
    )
    for script in sorted(examples.glob("*.py")):
        for match in pattern.finditer(script.read_text()):
            module = match.group(1) or match.group(2)
            assert module in ("repro", "repro.api"), (
                f"{script.name} imports {module}; examples must import "
                f"from repro.api only"
            )
