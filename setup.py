"""Shim so `pip install -e .` works without network access.

pip performs PEP 517 build isolation whenever pyproject.toml declares a
[build-system] table, which requires downloading setuptools.  This
environment is offline, so we rely on the legacy setup.py editable path
instead; all real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
