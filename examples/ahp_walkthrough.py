"""The AHP demand pipeline, step by step (Tables I–III and Eq. 2–9).

Walks one sensing round by hand: an expert pairwise-comparison matrix is
validated and reduced to criteria weights, three tasks get factor
demands from their deadline/progress/neighbour state, demands are
normalised, bucketed into levels, and priced against a platform budget.

Run:  python examples/ahp_walkthrough.py
"""

from repro.api import (
    DemandCalculator,
    DemandLevels,
    DemandWeights,
    PairwiseComparisonMatrix,
    RewardSchedule,
    TaskDemandInputs,
    example_comparison_matrix,
    render_table,
)


def main() -> None:
    # --- Step 1: the expert matrix (Table I) and its weights (Table II).
    matrix = example_comparison_matrix()
    print("Pairwise comparison matrix A (Table I):")
    print(matrix.values)
    print(f"\nConsistency ratio: {matrix.consistency_ratio():.4f} "
          "(<= 0.1 means the expert judgements are coherent)")

    weights = DemandWeights.from_ahp(matrix)
    print(f"\nAHP weights (paper: 0.648 / 0.230 / 0.122): "
          f"{weights.deadline:.3f} / {weights.progress:.3f} / {weights.scarcity:.3f}")

    # A custom, *inconsistent* matrix is rejected where it should be:
    wild = PairwiseComparisonMatrix.from_upper_triangle([9, 1 / 9, 9])
    print(f"\nA wild matrix has CR = {wild.consistency_ratio():.2f} -> "
          f"acceptable? {wild.is_acceptably_consistent()}")

    # --- Step 2: demands of three very different tasks at round 4.
    calculator = DemandCalculator(weights=weights)
    tasks = {
        "urgent, untouched, remote": TaskDemandInputs(
            round_no=4, deadline=4, received=0, required=20, neighbours=0),
        "relaxed, half done, popular": TaskDemandInputs(
            round_no=4, deadline=15, received=10, required=20, neighbours=12),
        "relaxed, nearly done, popular": TaskDemandInputs(
            round_no=4, deadline=15, received=19, required=20, neighbours=12),
    }
    demands = calculator.demands(list(tasks.values()))

    # --- Step 3: levels (Table III) and rewards (Eq. 7/9).
    levels = DemandLevels(5)
    schedule = RewardSchedule.from_budget(
        budget=1000.0, total_required_measurements=400, step=0.5, levels=levels
    )
    print(f"\nBudget-derived base reward r0 = ${schedule.base_reward:.2f} (Eq. 9)\n")

    rows = [
        [name, f"{demand:.3f}", levels.level_of(demand),
         f"${schedule.reward_for_demand(demand):.2f}"]
        for (name, _inputs), demand in zip(tasks.items(), demands)
    ]
    print(render_table(["task", "demand", "level", "reward"], rows))

    print("\nThe urgent remote task earns the top reward; the nearly-done "
          "popular one drops to the base reward — rewards are paid on demand.")


if __name__ == "__main__":
    main()
