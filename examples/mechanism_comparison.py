"""A miniature Section VI: all three incentive mechanisms, side by side.

Runs the paper's comparison — on-demand vs fixed vs steered — at a small
repetition count and prints the Fig. 6(a)/7(a)/9(b) rows plus the
Fig. 8(b) per-round story.  For the full-fidelity sweeps use the
benchmark harness (``pytest benchmarks/ --benchmark-only``) or the CLI
(``repro run fig6a --reps 100``).

Run:  python examples/mechanism_comparison.py
"""

from repro.api import render_experiment, run_experiment

REPS = 5
USER_COUNTS = (40, 80, 120)


def main() -> None:
    for panel in ("fig6a", "fig7a", "fig9b"):
        print(render_experiment(run_experiment(
            panel, user_counts=USER_COUNTS, repetitions=REPS,
        )))
        print()
    print(render_experiment(run_experiment("fig8b", repetitions=REPS), precision=1))
    print(
        "\nReading the rows: on-demand holds 100% coverage and the highest\n"
        "completeness at the lowest price per measurement, and it is the\n"
        "only mechanism still collecting measurements after round 3 —\n"
        "the paper's Figs. 6-9 in four tables."
    )


if __name__ == "__main__":
    main()
