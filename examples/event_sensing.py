"""Event sensing: every extension knob at once, under stress.

A city event (think marathon day): sensing tasks *stream in* during the
campaign instead of being known upfront, only ~60 % of the crowd is
available in any given round, and the crowd itself is heterogeneous
(mixed speeds, costs, and time budgets).  This is the regime the paper's
fixed baseline cannot survive — and where the demand indicator shines,
because a freshly released task is *born* urgent (zero progress, close
deadline) and priced accordingly.

Run:  python examples/event_sensing.py
"""

from repro.api import (
    SimulationConfig,
    coverage,
    measurements_per_round,
    overall_completeness,
    render_table,
    simulate,
)

EVENT = dict(
    n_users=80,
    deadline_range=(4, 7),       # short-lived tasks
    release_range=(1, 9),        # ... that appear throughout the event
    participation_rate=0.6,      # people are busy watching the race
    heterogeneity=0.4,           # cyclists to strollers
    rounds=15,
)
SEEDS = range(6)


def run(mechanism: str, seed: int):
    return simulate(SimulationConfig(mechanism=mechanism, seed=seed, **EVENT))


def main() -> None:
    rows = []
    per_round = {}
    for mechanism in ("on-demand", "adaptive", "fixed"):
        cov, compl = [], []
        for seed in SEEDS:
            result = run(mechanism, seed)
            cov.append(100.0 * coverage(result))
            compl.append(100.0 * overall_completeness(result))
        per_round[mechanism] = measurements_per_round(run(mechanism, 0), 15)
        rows.append([
            mechanism,
            f"{sum(cov) / len(cov):.1f}%",
            f"{sum(compl) / len(compl):.1f}%",
        ])

    print("Event day: tasks streaming in over rounds 1-9, 60% availability,\n"
          "mixed crowd (±40% speed/cost/budget), 80 users, 6 seeds:\n")
    print(render_table(["mechanism", "coverage", "completeness"], rows))

    print("\nMeasurements per round (seed 0) — watch the dynamic mechanisms\n"
          "react to each wave of new tasks while fixed goes quiet:\n")
    round_rows = [
        [r + 1] + [per_round[m][r] for m in ("on-demand", "adaptive", "fixed")]
        for r in range(15)
    ]
    print(render_table(["round", "on-demand", "adaptive", "fixed"], round_rows,
                       precision=0))


if __name__ == "__main__":
    main()
