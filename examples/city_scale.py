"""City-scale sensing with scenarios: the batched engine at work.

Loads the ``city-2k`` preset (2 000 users, 200 Poisson-arriving tasks,
batched engine, streamed rounds), runs it while streaming the full round
history to an events JSONL — memory stays bounded no matter the run
length — and prints the final metrics plus a replay check.  Swap the
scenario name for ``city-50k`` for the full-size stress run, or point it
at your own ``.toml`` spec.

Run:  python examples/city_scale.py [scenario]
"""

import sys
import tempfile
from pathlib import Path

from repro.api import (
    load_scenario,
    make_engine,
    read_events_jsonl,
    render_table,
    RoundStreamWriter,
    summarize,
)


def main(scenario_name: str = "city-2k") -> None:
    spec = load_scenario(scenario_name)
    config = spec.to_config(seed=7)
    print(f"{spec.name}: {spec.description}\n")
    print(f"{config.n_users} users, {config.n_tasks} tasks, "
          f"{config.rounds} rounds, engine={config.engine}, "
          f"streaming={config.stream_rounds}\n")

    events_path = Path(tempfile.mkdtemp()) / f"{spec.name}-events.jsonl"
    engine = make_engine(config)
    with RoundStreamWriter(events_path, engine.world) as stream:
        engine.observers.append(stream)
        result = engine.run()

    summary = summarize(result)
    rows = [[name, value] for name, value in summary.as_dict().items()]
    print(render_table(["metric", "value"], rows, precision=4))

    replay = read_events_jsonl(events_path)
    print(f"\nStreamed {len(replay.rounds)} rounds to {events_path} "
          f"({events_path.stat().st_size / 2**20:.1f} MiB); replay agrees: "
          f"{replay.total_measurements == result.total_measurements}")


if __name__ == "__main__":
    main(*sys.argv[1:2])
