"""The distributed task-selection problem, solver by solver (Section V).

Builds one user's Eq. 1 instance by hand — an origin, eight priced task
locations, a travel budget — and solves it with every selector in the
library: the exact bitmask DP, the paper's greedy, greedy + 2-opt, and
the brute-force oracle.  Prints each solver's route, profit, and the
optimality gap.

Run:  python examples/task_selection_demo.py
"""

from repro.api import (
    CandidateTask,
    Point,
    TaskSelectionProblem,
    create_selector,
    render_table,
)

#: Eight tasks around the user: (task id, x, y, reward $).
TASKS = [
    (0, 400.0, 0.0, 1.0),
    (1, 450.0, 120.0, 1.5),
    (2, 700.0, -80.0, 2.5),
    (3, -300.0, 300.0, 2.0),
    (4, -350.0, 260.0, 1.0),
    (5, 0.0, 900.0, 2.5),
    (6, 80.0, 960.0, 2.0),
    (7, 1500.0, 1500.0, 0.5),  # far and cheap: never worth the walk
]


def main() -> None:
    problem = TaskSelectionProblem.build(
        origin=Point(0.0, 0.0),
        candidates=[
            CandidateTask(task_id=i, location=Point(x, y), reward=r)
            for i, x, y, r in TASKS
        ],
        max_distance=2000.0,       # 1000 s budget at 2 m/s
        cost_per_meter=0.002,
    )
    print(f"{problem.size} candidate tasks within reach "
          f"(task 7 pruned: {2000.0:.0f} m budget < its distance).\n")

    rows = []
    selections = {}
    for name in ("brute-force", "dp", "greedy-2opt", "greedy"):
        selection = create_selector(name).select(problem)
        selections[name] = selection
        rows.append([
            name,
            " -> ".join(str(t) for t in selection.task_ids) or "(stay home)",
            f"{selection.distance:.0f}",
            f"{selection.reward:.2f}",
            f"{selection.profit:.3f}",
        ])
    print(render_table(["solver", "route", "distance (m)", "reward ($)", "profit ($)"], rows))

    optimal = selections["brute-force"].profit
    print(f"\nOptimality: DP matches brute force "
          f"({selections['dp'].profit:.3f} vs {optimal:.3f}); "
          f"greedy leaves {optimal - selections['greedy'].profit:.3f} on the table; "
          f"2-opt recovers {selections['greedy-2opt'].profit - selections['greedy'].profit:.3f} of it.")


if __name__ == "__main__":
    main()
