"""Noise-pollution mapping in a clustered city — the paper's motivating app.

Section III-A motivates the mechanism with city-scale noise assessment:
measurements are needed everywhere, but users cluster downtown, so
remote measurement points starve under fixed rewards.  This example uses
the *clustered* world generator (dense user clusters + deliberately
remote tasks) and shows how the on-demand mechanism rescues the remote
tasks that the fixed mechanism abandons.

Run:  python examples/noise_mapping.py
"""

from repro.api import (
    SimulationConfig,
    coverage,
    measurements_per_task,
    overall_completeness,
    render_table,
    simulate,
)


def campaign(mechanism: str, seed: int = 11) -> dict:
    """One clustered-city campaign; returns per-task measurement counts."""
    config = SimulationConfig(
        n_users=80,
        mechanism=mechanism,
        layout="clustered",
        seed=seed,
    )
    result = simulate(config)
    return {
        "result": result,
        "coverage": coverage(result),
        "completeness": overall_completeness(result),
        "per_task": measurements_per_task(result),
    }


def main() -> None:
    runs = {name: campaign(name) for name in ("on-demand", "fixed")}

    print("Clustered city: 80 users in 3 clusters, 30% of the 20 noise "
          "measurement points placed far from every cluster.\n")

    rows = [
        [
            name,
            f"{100 * data['coverage']:.0f}%",
            f"{100 * data['completeness']:.0f}%",
            sum(1 for count in data["per_task"].values() if count == 0),
        ]
        for name, data in runs.items()
    ]
    print(render_table(
        ["mechanism", "coverage", "completeness", "starved tasks"], rows
    ))

    print("\nPer-task measurements (task id: on-demand vs fixed):")
    on_demand_counts = runs["on-demand"]["per_task"]
    fixed_counts = runs["fixed"]["per_task"]
    task_rows = [
        [task_id, on_demand_counts[task_id], fixed_counts[task_id]]
        for task_id in sorted(on_demand_counts)
    ]
    print(render_table(["task", "on-demand", "fixed"], task_rows, precision=0))

    print("\nThe remote points (low fixed counts) are exactly where the "
          "demand indicator pushes rewards up — Eq. 5's scarcity factor "
          "sees few neighbouring users, Eq. 3 sees the deadline closing in.")


if __name__ == "__main__":
    main()
