"""Budget recycling: spending the slack the paper's Eq. 9 leaves behind.

Eq. 9 sizes the base reward against the worst case — every measurement
paid at the top demand level — so a real campaign finishes with a large
share of the budget unspent.  The `adaptive` extension mechanism
re-derives the reward ladder each round from the *remaining* budget and
*remaining* work, never pricing below the static schedule, and provably
never overspending.

This example runs the same sparse campaign (40 users — the regime where
the static schedule leaves the most money on the table) under both
mechanisms and shows where the recycled dollars went: deadline-critical
and remote tasks.

Run:  python examples/budget_recycling.py
"""

from repro.api import (
    SimulationConfig,
    overall_completeness,
    render_table,
    render_world,
    simulate,
)

SEEDS = range(5)


def campaign(mechanism: str, seed: int):
    config = SimulationConfig(n_users=40, mechanism=mechanism, seed=seed)
    return config, simulate(config)


def main() -> None:
    rows = []
    last_worlds = {}
    for mechanism in ("on-demand", "adaptive"):
        spent, completeness, top_prices = [], [], []
        for seed in SEEDS:
            config, result = campaign(mechanism, seed)
            spent.append(result.total_paid)
            completeness.append(100.0 * overall_completeness(result))
            top_prices.append(max(
                max(record.published_rewards.values(), default=0.0)
                for record in result.rounds
            ))
            last_worlds[mechanism] = result.world
        rows.append([
            mechanism,
            sum(spent) / len(spent),
            f"{sum(completeness) / len(completeness):.1f}%",
            max(top_prices),
        ])
    print("Same $1000 budget, same worlds, 40 users, 5 seeds:\n")
    print(render_table(
        ["mechanism", "avg spent ($)", "completeness", "peak price ($)"], rows
    ))
    print(
        "\nThe adaptive mechanism converts unspent budget into higher prices\n"
        "for the remaining (hard) tasks — same guarantee, more data.\n"
    )
    print("Final world under the adaptive mechanism (last seed):")
    print(render_world(last_worlds["adaptive"]))


if __name__ == "__main__":
    main()
