"""Learned incentive policies: session stepping, the env, and deployment.

Three stages of the same idea, all through the public facade:

1. drive a simulation round by round with ``open_session`` and verify
   the actionless session replays ``simulate()`` bit-identically;
2. tune a per-round incentive policy by random search in the
   ``IncentiveEnv`` (no gymnasium required — pure ``reset``/``step``);
3. deploy the tuned policy as a regular mechanism via
   ``mechanism="policy"`` and compare it against the paper's static
   AHP pricing over held-out seeds.

Run:  python examples/policy_rollout.py
"""

import numpy as np

from repro.api import (
    SimulationConfig,
    make_env,
    open_session,
    overall_completeness,
    render_table,
    result_fingerprint,
    simulate,
)

BASE = dict(n_users=60, n_tasks=12, rounds=10)
TRAIN_SEEDS = range(3)
EVAL_SEEDS = range(10, 15)


def main() -> None:
    # --- 1. Sessions: the same kernel, one round at a time. ------------
    config = SimulationConfig(seed=0, **BASE)
    direct = simulate(config)
    with open_session(config) as session:
        while not session.finished:
            snapshot = session.observe()
            session.step()          # no action: the paper's pricing
        stepped = session.result()
    assert result_fingerprint(direct) == result_fingerprint(stepped)
    print(f"session == simulate: fingerprint "
          f"{result_fingerprint(stepped)[:16]} "
          f"(final completeness {snapshot.completeness:.3f})")

    # --- 2. Random-search a constant action in the env. ----------------
    # The 'incentive' adapter maps [0,1]^5 onto AHP weights, the Eq. 7
    # ladder step, and the level count; a constant action per episode is
    # the simplest policy class worth searching.
    env = make_env(config=SimulationConfig(**BASE), reward="platform-utility")
    rng = np.random.default_rng(42)
    best_action, best_score = None, -np.inf
    for trial in range(20):
        action = rng.uniform(0.0, 1.0, size=env.action_space.shape)
        score = 0.0
        for seed in TRAIN_SEEDS:
            env.reset(seed=seed)
            terminated = False
            while not terminated:
                _, reward, terminated, _, _ = env.step(action)
                score += reward
        if score > best_score:
            best_action, best_score = action, score
    env.close()
    weights = best_action[:3] / best_action[:3].sum()
    print(f"\nbest constant action after 20 trials "
          f"(mean utility {best_score / len(TRAIN_SEEDS):.3f}):")
    print(f"  weights   {np.round(weights, 3).tolist()} "
          f"(paper AHP: [0.648, 0.230, 0.122])")

    # --- 3. Deploy through MECHANISMS['policy'] and compare. -----------
    # A callable policy receives the round context and returns an
    # incentive action; here it replays the tuned constant action.
    tuned = {
        "weights": weights.tolist(),
        "reward_step": float(0.25 + best_action[3] * 3.75) * 0.5,
    }
    rows = []
    for label, overrides in (
        ("paper AHP", dict(mechanism="on-demand")),
        ("tuned policy", dict(
            mechanism="policy",
            mechanism_kwargs={"policy": lambda ctx: tuned},
        )),
    ):
        completeness, paid = [], []
        for seed in EVAL_SEEDS:
            result = simulate(SimulationConfig(seed=seed, **BASE, **overrides))
            completeness.append(overall_completeness(result))
            paid.append(result.total_paid)
        rows.append([label,
                     f"{np.mean(completeness):.3f}",
                     f"{np.mean(paid):.1f}"])
    print()
    print(f"Held-out seeds {list(EVAL_SEEDS)}:")
    print(render_table(["mechanism", "completeness", "paid ($)"], rows))


if __name__ == "__main__":
    main()
