"""Quickstart: one simulated crowdsensing campaign, end to end.

Runs the paper's default setup — 20 location-dependent sensing tasks in
a 3 km x 3 km city, 100 mobile users, the demand-based on-demand
incentive, exact DP task selection — and prints what happened round by
round plus the final metrics.

Run:  python examples/quickstart.py
"""

from repro.api import SimulationConfig, render_table, simulate, summarize


def main() -> None:
    config = SimulationConfig(n_users=100, seed=42)
    result = simulate(config)

    print(f"Simulated {result.rounds_played} sensing rounds "
          f"({config.n_tasks} tasks, {config.n_users} users).\n")

    round_rows = [
        [
            record.round_no,
            record.measurement_count,
            record.participating_users,
            len(record.completed_task_ids),
            len(record.rejections),
            round(record.total_paid, 2),
        ]
        for record in result.rounds
    ]
    print(render_table(
        ["round", "measurements", "active users", "completed", "rejected", "paid ($)"],
        round_rows,
    ))

    print("\nFinal metrics:")
    summary = summarize(result)
    metric_rows = [[name, value] for name, value in summary.as_dict().items()]
    print(render_table(["metric", "value"], metric_rows, precision=4))

    print("\nBudget check: paid "
          f"${result.total_paid:.2f} of the ${config.budget:.0f} budget "
          f"(Eq. 8 guarantees it can never exceed it).")


if __name__ == "__main__":
    main()
