#!/usr/bin/env python
"""CI smoke test for the job service (`repro serve`).

Boots a real server process, then drives the happy path and the two
control paths CI most needs to guard:

1. scrape ``/metrics`` on the idle server (twice — the scrapes must be
   byte-identical) and require the queue/job series to exist;
2. submit the ``city-2k`` scenario and tail its NDJSON events to the
   terminal ``job_state`` line;
3. submit a second, deliberately long job, require its live progress
   gauges to appear on ``/metrics`` and then cancel it mid-run;
4. re-scrape ``/metrics`` and hard-fail unless the job-state gauges and
   submission counters reflect the work that just happened;
5. submit a job running the ``policy`` mechanism (a JSON-named policy
   from the incentive-policy registry wrapped as a regular mechanism)
   and tail it to ``done`` — the learned-policy path must flow through
   the job service unchanged;
6. merge the first job's cross-process trace shards into one Chrome
   trace (uploaded as a CI artifact) and render one ``repro jobs top``
   frame;
7. SIGTERM the server and require a clean exit within a deadline.

Every phase runs under a wall-clock budget — a hang anywhere exits
non-zero, so the CI job fails instead of idling until the runner
timeout.  Exit code 0 means the whole loop worked.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.live import metric_value, parse_prometheus  # noqa: E402
from repro.server.client import ServerClient, ServerUnavailable  # noqa: E402

#: Long enough (~10s) that the cancel provably lands mid-run.
SLOW_JOB = {
    "overrides": {
        "n_users": 2000, "n_tasks": 50, "rounds": 80,
        "budget": 1e7, "arrival": "poisson", "seed": 2,
    }
}

#: A wrapped incentive policy as a plain JSON job: the ``policy``
#: mechanism resolves the named policy from the registry server-side,
#: so trained/tuned policies ship through the job API unchanged.
POLICY_JOB = {
    "overrides": {
        "mechanism": "policy",
        "mechanism_kwargs": {
            "policy": {"name": "step-decay", "decay": 0.9, "floor": 0.1},
        },
        "n_users": 200, "n_tasks": 10, "rounds": 5, "seed": 3,
    }
}


class Phase:
    """A named wall-clock budget; overruns abort the smoke test."""

    def __init__(self, name, budget_seconds):
        self.name = name
        self.deadline = time.monotonic() + budget_seconds
        print(f"--- {name} (budget {budget_seconds:.0f}s)")

    def check(self):
        if time.monotonic() > self.deadline:
            fail(f"phase {self.name!r} exceeded its budget")

    def sleep(self, seconds=0.1):
        self.check()
        time.sleep(seconds)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition, message):
    if not condition:
        fail(message)


def start_server(root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--root", str(root), "--port", "0", "--concurrency", "1"],
        env=env,
        start_new_session=True,
    )


def wait_healthy(root, phase):
    while True:
        try:
            client = ServerClient.from_root(root, timeout=30)
            status, _ = client.healthz()
            if status == 200:
                return client
        except (ServerUnavailable, OSError):
            pass
        phase.sleep()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="server state dir (default: a temp dir)")
    args = parser.parse_args()

    workdir = args.root or tempfile.mkdtemp(prefix="server-smoke-")
    root = Path(workdir) / "root"
    server = start_server(root)
    try:
        run_smoke(root)
    finally:
        if server.poll() is None:
            phase = Phase("shutdown", 30)
            os.kill(server.pid, signal.SIGTERM)
            while server.poll() is None:
                phase.sleep()
            expect(server.returncode == 0,
                   f"server exited {server.returncode}, wanted 0")
            print(f"server exited cleanly ({server.returncode})")
        else:
            fail(f"server died early (exit {server.returncode})")
    print("OK: server smoke test passed")


def scrape(client):
    status, text = client.metrics()
    expect(status == 200, f"/metrics returned {status}")
    return text


def run_smoke(root):
    phase = Phase("boot", 30)
    client = wait_healthy(root, phase)
    status, doc = client.readyz()
    expect(status == 200, f"readyz {status}: {doc}")

    phase = Phase("idle /metrics scrape", 30)
    first_text = scrape(client)
    expect(first_text == scrape(client),
           "two idle /metrics scrapes differ — exposition is not "
           "deterministic")
    idle = parse_prometheus(first_text)
    expect(metric_value(idle, "repro_queue_depth") == 0.0,
           "idle scrape missing repro_queue_depth == 0")
    expect(metric_value(idle, "repro_running_jobs") == 0.0,
           "idle scrape missing repro_running_jobs == 0")
    for state in ("queued", "running", "done", "failed", "cancelled",
                  "timed_out"):
        expect(metric_value(idle, "repro_jobs", state=state) == 0.0,
               f"idle scrape missing repro_jobs{{state={state}}} == 0")
    print("idle scrapes byte-identical; queue/job series present")

    phase = Phase("submit + tail city-2k", 120)
    status, body, _ = client.submit({"scenario": "city-2k"})
    expect(status == 201, f"submit returned {status}: {body}")
    job_id = body["job"]["job_id"]
    print(f"submitted {job_id}")

    rounds = 0
    terminal = None
    for line in client.tail(job_id, timeout=120):
        phase.check()
        if line["kind"] == "round":
            rounds += 1
        elif line["kind"] == "job_state":
            terminal = line
    expect(terminal is not None, "tail ended without a job_state line")
    expect(terminal["state"] == "done",
           f"city-2k finished {terminal['state']}: {terminal['error']}")
    expect(rounds >= 1, "no round events streamed")
    print(f"tailed {rounds} rounds to state={terminal['state']}")

    phase = Phase("live progress gauges + cancel second job mid-run", 120)
    status, body, _ = client.submit(SLOW_JOB)
    expect(status == 201, f"second submit returned {status}: {body}")
    second_id = body["job"]["job_id"]
    while True:
        status, doc = client.status(second_id)
        if doc["job"]["state"] == "running":
            break
        expect(not doc["job"]["terminal"],
               f"second job terminal before cancel: {doc['job']}")
        phase.sleep()
    # The worker writes progress.json after every round; its gauges
    # must surface for this job id while it is still running.
    while True:
        live = parse_prometheus(scrape(client))
        round_no = metric_value(live, "repro_job_round", job=second_id)
        if round_no is not None:
            break
        phase.sleep()
    expect(round_no >= 1, f"repro_job_round is {round_no}, wanted >= 1")
    expect(metric_value(live, "repro_job_rounds_total", job=second_id) == 80.0,
           "repro_job_rounds_total missing or wrong for the running job")
    expect(metric_value(live, "repro_job_budget", job=second_id) == 1e7,
           "repro_job_budget missing or wrong for the running job")
    spend = metric_value(live, "repro_job_spend", job=second_id)
    expect(spend is not None and spend >= 0.0,
           f"repro_job_spend is {spend}, wanted a gauge")
    expect(metric_value(live, "repro_job_completeness",
                        job=second_id) is not None,
           "repro_job_completeness missing for the running job")
    expect(metric_value(live, "repro_running_jobs") == 1.0,
           "repro_running_jobs should be 1 during the slow job")
    status, doc = client.progress(second_id)
    expect(status == 200 and doc["progress"] is not None,
           f"progress endpoint returned {status}: {doc}")
    print(f"live gauges present at round {round_no:.0f} "
          f"(spend {spend:.0f})")
    status, doc = client.cancel(second_id)
    expect(status == 202, f"cancel returned {status}: {doc}")
    while True:
        status, doc = client.status(second_id)
        if doc["job"]["terminal"]:
            break
        phase.sleep()
    expect(doc["job"]["state"] == "cancelled",
           f"second job ended {doc['job']['state']}, wanted cancelled")
    print(f"cancelled {second_id} mid-run "
          f"(error={doc['job']['error']!r})")

    phase = Phase("post-work /metrics scrape", 30)
    done = parse_prometheus(scrape(client))
    expect(metric_value(done, "repro_jobs", state="done") == 1.0,
           "repro_jobs{state=done} should be 1 after city-2k")
    expect(metric_value(done, "repro_jobs", state="cancelled") == 1.0,
           "repro_jobs{state=cancelled} should be 1 after the cancel")
    expect(metric_value(done, "repro_running_jobs") == 0.0,
           "repro_running_jobs should be back to 0")
    accepted = metric_value(done, "repro_submissions_total",
                            outcome="accepted")
    expect(accepted == 2.0,
           f"repro_submissions_total{{outcome=accepted}} is {accepted}, "
           f"wanted 2")
    attempts = metric_value(done, "repro_attempt_seconds_count")
    expect(attempts is not None and attempts >= 2.0,
           f"repro_attempt_seconds_count is {attempts}, wanted >= 2")
    print("post-work scrape consistent with the job table")

    phase = Phase("submit + tail a policy-mechanism job", 120)
    status, body, _ = client.submit(POLICY_JOB)
    expect(status == 201, f"policy submit returned {status}: {body}")
    policy_id = body["job"]["job_id"]
    policy_rounds = 0
    policy_terminal = None
    for line in client.tail(policy_id, timeout=120):
        phase.check()
        if line["kind"] == "round":
            policy_rounds += 1
        elif line["kind"] == "job_state":
            policy_terminal = line
    expect(policy_terminal is not None,
           "policy tail ended without a job_state line")
    expect(policy_terminal["state"] == "done",
           f"policy job finished {policy_terminal['state']}: "
           f"{policy_terminal['error']}")
    expect(policy_rounds >= 1, "policy job streamed no round events")
    print(f"policy job {policy_id}: {policy_rounds} rounds to "
          f"state={policy_terminal['state']}")

    phase = Phase("trace merge + jobs top frame", 60)
    trace_dir = root / "jobs" / job_id / "trace"
    merged_path = root.parent / "merged_trace.json"
    code = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace", "merge",
         str(trace_dir), "--out", str(merged_path)],
        env=_cli_env(),
    ).returncode
    expect(code == 0, f"repro trace merge exited {code}")
    merged = json.loads(merged_path.read_text())
    processes = merged["otherData"]["processes"]
    expect("server" in processes and "worker-a1" in processes,
           f"merged trace misses a process: {processes}")
    expect(any(e.get("name") == "supervise"
               for e in merged["traceEvents"]),
           "merged trace has no supervise span")
    print(f"merged {merged['otherData']['shards']} shards "
          f"({len(merged['traceEvents'])} events) -> {merged_path}")

    top = subprocess.run(
        [sys.executable, "-m", "repro.cli", "jobs", "top",
         "--root", str(root), "--iterations", "1", "--no-clear"],
        env=_cli_env(), capture_output=True, text=True,
    )
    expect(top.returncode == 0,
           f"repro jobs top exited {top.returncode}: {top.stderr}")
    expect("queue=" in top.stdout and job_id in top.stdout,
           f"jobs top frame incomplete:\n{top.stdout}")
    print("jobs top rendered one frame")

    status, doc = client.list_jobs()
    print("final job table:")
    for view in doc["jobs"]:
        print(f"  {json.dumps(view, sort_keys=True)}")


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


if __name__ == "__main__":
    main()
