#!/usr/bin/env python
"""CI smoke test for the job service (`repro serve`).

Boots a real server process, then drives the happy path and the two
control paths CI most needs to guard:

1. submit the ``city-2k`` scenario and tail its NDJSON events to the
   terminal ``job_state`` line;
2. submit a second, deliberately long job and cancel it mid-run;
3. SIGTERM the server and require a clean exit within a deadline.

Every phase runs under a wall-clock budget — a hang anywhere exits
non-zero, so the CI job fails instead of idling until the runner
timeout.  Exit code 0 means the whole loop worked.
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.server.client import ServerClient, ServerUnavailable  # noqa: E402

#: Long enough (~10s) that the cancel provably lands mid-run.
SLOW_JOB = {
    "overrides": {
        "n_users": 2000, "n_tasks": 50, "rounds": 80,
        "budget": 1e7, "arrival": "poisson", "seed": 2,
    }
}


class Phase:
    """A named wall-clock budget; overruns abort the smoke test."""

    def __init__(self, name, budget_seconds):
        self.name = name
        self.deadline = time.monotonic() + budget_seconds
        print(f"--- {name} (budget {budget_seconds:.0f}s)")

    def check(self):
        if time.monotonic() > self.deadline:
            fail(f"phase {self.name!r} exceeded its budget")

    def sleep(self, seconds=0.1):
        self.check()
        time.sleep(seconds)


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition, message):
    if not condition:
        fail(message)


def start_server(root):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--root", str(root), "--port", "0", "--concurrency", "1"],
        env=env,
        start_new_session=True,
    )


def wait_healthy(root, phase):
    while True:
        try:
            client = ServerClient.from_root(root, timeout=30)
            status, _ = client.healthz()
            if status == 200:
                return client
        except (ServerUnavailable, OSError):
            pass
        phase.sleep()


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="server state dir (default: a temp dir)")
    args = parser.parse_args()

    workdir = args.root or tempfile.mkdtemp(prefix="server-smoke-")
    root = Path(workdir) / "root"
    server = start_server(root)
    try:
        run_smoke(root)
    finally:
        if server.poll() is None:
            phase = Phase("shutdown", 30)
            os.kill(server.pid, signal.SIGTERM)
            while server.poll() is None:
                phase.sleep()
            expect(server.returncode == 0,
                   f"server exited {server.returncode}, wanted 0")
            print(f"server exited cleanly ({server.returncode})")
        else:
            fail(f"server died early (exit {server.returncode})")
    print("OK: server smoke test passed")


def run_smoke(root):
    phase = Phase("boot", 30)
    client = wait_healthy(root, phase)
    status, doc = client.readyz()
    expect(status == 200, f"readyz {status}: {doc}")

    phase = Phase("submit + tail city-2k", 120)
    status, body, _ = client.submit({"scenario": "city-2k"})
    expect(status == 201, f"submit returned {status}: {body}")
    job_id = body["job"]["job_id"]
    print(f"submitted {job_id}")

    rounds = 0
    terminal = None
    for line in client.tail(job_id, timeout=120):
        phase.check()
        if line["kind"] == "round":
            rounds += 1
        elif line["kind"] == "job_state":
            terminal = line
    expect(terminal is not None, "tail ended without a job_state line")
    expect(terminal["state"] == "done",
           f"city-2k finished {terminal['state']}: {terminal['error']}")
    expect(rounds >= 1, "no round events streamed")
    print(f"tailed {rounds} rounds to state={terminal['state']}")

    phase = Phase("cancel second job mid-run", 120)
    status, body, _ = client.submit(SLOW_JOB)
    expect(status == 201, f"second submit returned {status}: {body}")
    second_id = body["job"]["job_id"]
    while True:
        status, doc = client.status(second_id)
        if doc["job"]["state"] == "running":
            break
        expect(not doc["job"]["terminal"],
               f"second job terminal before cancel: {doc['job']}")
        phase.sleep()
    status, doc = client.cancel(second_id)
    expect(status == 202, f"cancel returned {status}: {doc}")
    while True:
        status, doc = client.status(second_id)
        if doc["job"]["terminal"]:
            break
        phase.sleep()
    expect(doc["job"]["state"] == "cancelled",
           f"second job ended {doc['job']['state']}, wanted cancelled")
    print(f"cancelled {second_id} mid-run "
          f"(error={doc['job']['error']!r})")

    status, doc = client.list_jobs()
    print("final job table:")
    for view in doc["jobs"]:
        print(f"  {json.dumps(view, sort_keys=True)}")


if __name__ == "__main__":
    main()
