"""Regenerate Fig. 6: coverage of the three incentive mechanisms.

Expected shape: on-demand and steered at (essentially) 100 % coverage;
fixed below 100 %, improving with more users (a) and more rounds (b) but
never closing the gap.
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.analysis.shape import dominates, final_value
from repro.experiments.fig6 import fig6a, fig6b


def test_fig6a(regenerate):
    result = regenerate(lambda: fig6a(repetitions=bench_reps()))
    fixed = result.series_by_label("fixed")
    assert dominates(result.series_by_label("on-demand"), fixed)
    assert dominates(result.series_by_label("steered"), fixed)
    # Paper: fixed "cannot reach 100% coverage even for 140 mobile users".
    # At low repetition counts a single lucky cell can touch 100, so the
    # claim is asserted on the sweep average and the sparsest population.
    assert fixed.points[0].mean < 100.0
    assert sum(p.mean for p in fixed.points) / len(fixed.points) < 99.9


def test_fig6b(regenerate):
    result = regenerate(lambda: fig6b(repetitions=bench_reps()))
    assert final_value(result.series_by_label("on-demand")) >= 99.0
    assert final_value(result.series_by_label("fixed")) < 100.0
