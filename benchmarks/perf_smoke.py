"""Selector microbenchmark: vectorized DP vs the scalar reference DP.

Times both exact solvers on instances drawn from the paper's Section VI
setup — 20 tasks uniform in the 3000 m x 3000 m region, Eq. 7 reward
levels, 1800 m travel budget, 0.002 $/m — and appends one entry to the
``BENCH_selectors.json`` perf trajectory at the repo root, so speedup
regressions are visible in review diffs.

Usage::

    python benchmarks/perf_smoke.py                 # full scale, repo-root json
    python benchmarks/perf_smoke.py --scale tiny    # CI smoke: seconds, no gate
    python benchmarks/perf_smoke.py --min-speedup 3 # fail below 3x
    python benchmarks/perf_smoke.py --obs-store .repro-obs  # + run store

A provenance manifest is written next to the trajectory file, and
``--obs-store`` lands the entry in a run-observatory store so
``repro obs regress`` can gate it against its baseline window.

Standalone on purpose (argparse + json, no pytest) so CI can run it as a
plain script and upload the json artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.geometry.point import Point                      # noqa: E402
from repro.selection import CandidateTask, TaskSelectionProblem  # noqa: E402
from repro.selection.dp import DynamicProgrammingSelector   # noqa: E402
from repro.selection.reference_dp import ReferenceDPSelector  # noqa: E402

#: Paper Section VI constants: region side 3000 m, v*tau = 1 m/s * 1800 s.
AREA_HALF_SIDE = 1_500.0
TRAVEL_BUDGET = 1_800.0
COST_PER_METER = 0.002
REWARD_LEVELS = (0.5, 1.0, 1.5, 2.0, 2.5)


def paper_problem(rng, n_tasks):
    positions = rng.uniform(-AREA_HALF_SIDE, AREA_HALF_SIDE, size=(n_tasks, 2))
    rewards = rng.choice(REWARD_LEVELS, size=n_tasks)
    candidates = [
        CandidateTask(task_id=i, location=Point(float(x), float(y)), reward=float(r))
        for i, ((x, y), r) in enumerate(zip(positions, rewards))
    ]
    return TaskSelectionProblem.build(
        origin=Point(0.0, 0.0), candidates=candidates,
        max_distance=TRAVEL_BUDGET, cost_per_meter=COST_PER_METER,
    )


def time_selector(selector, problems, repeats):
    """Best-of-``repeats`` total wall time (s) to solve every problem."""
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        selections = [selector.select(problem) for problem in problems]
        timings.append(time.perf_counter() - started)
    return min(timings), selections


def run(n_tasks, instances, repeats, seed):
    rng = np.random.default_rng(seed)
    problems = [paper_problem(rng, n_tasks) for _ in range(instances)]
    reference_time, reference_sel = time_selector(
        ReferenceDPSelector(max_exact_tasks=n_tasks), problems, repeats
    )
    vectorized_time, vectorized_sel = time_selector(
        DynamicProgrammingSelector(max_exact_tasks=n_tasks), problems, repeats
    )
    # Both are exact: identical optimal profits, or the timing is meaningless.
    profit_gaps = [
        abs(a.profit - b.profit) for a, b in zip(reference_sel, vectorized_sel)
    ]
    assert max(profit_gaps) < 1e-9, f"solvers disagree: max gap {max(profit_gaps)}"
    return {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "n_tasks": n_tasks,
        "instances": instances,
        "timing_repeats": repeats,
        "seed": seed,
        "reference_ms_per_call": 1e3 * reference_time / instances,
        "vectorized_ms_per_call": 1e3 * vectorized_time / instances,
        "speedup": reference_time / vectorized_time,
        "mean_profit": statistics.mean(s.profit for s in vectorized_sel),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("full", "tiny"), default="full",
                        help="tiny = a seconds-long CI smoke run")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_selectors.json"),
                        help="trajectory file to append to")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the speedup falls below this")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--obs-store", default=None, metavar="DIR",
                        help="also ingest the entry into a run-observatory "
                             "store (see 'repro obs')")
    args = parser.parse_args(argv)

    if args.scale == "tiny":
        entry = run(n_tasks=12, instances=5, repeats=2, seed=args.seed)
    else:
        entry = run(n_tasks=20, instances=30, repeats=3, seed=args.seed)
    entry["scale"] = args.scale

    out = Path(args.out)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.append(entry)
    out.write_text(json.dumps(trajectory, indent=2) + "\n")

    # Provenance next to the numbers: which tree, interpreter, and host
    # produced the entry (never a reason to fail the bench itself).
    from repro.obs.manifest import build_manifest, write_manifest  # noqa: E402

    manifest_path = write_manifest(
        build_manifest(
            base_seed=args.seed,
            command="python benchmarks/perf_smoke.py "
                    f"--scale {args.scale} --seed {args.seed}",
            scale=args.scale,
            n_tasks=entry["n_tasks"],
            instances=entry["instances"],
        ),
        out,
    )
    print(f"wrote manifest: {manifest_path}")

    if args.obs_store:
        from repro.obs.store import ingest_bench_trajectory  # noqa: E402
        from repro.obs.store import RunStore

        store = RunStore(args.obs_store)
        created = ingest_bench_trajectory(store, out)
        print(
            f"recorded in store {store.root}: {len(created)} new runs "
            f"({len(store)} total)"
        )

    print(
        f"{entry['n_tasks']} tasks x {entry['instances']} instances: "
        f"reference {entry['reference_ms_per_call']:.2f} ms/call, "
        f"vectorized {entry['vectorized_ms_per_call']:.2f} ms/call "
        f"-> {entry['speedup']:.1f}x"
    )
    print(f"recorded in {out}")
    if args.min_speedup is not None and entry["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {entry['speedup']:.2f}x below the "
            f"{args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
