"""Performance smoke benches: selector DP and the batched engine path.

Two benches, both appending to the ``BENCH_selectors.json`` perf
trajectory at the repo root so regressions are visible in review diffs:

- ``--bench selector`` (default): the vectorized DP vs the scalar
  reference DP on instances drawn from the paper's Section VI setup.
- ``--bench engine``: round throughput of the batched engine vs the
  scalar engine on a large sparse world (10k users at full scale),
  sanity-checking that both histories agree before timing means
  anything.

Usage::

    python benchmarks/perf_smoke.py                 # full scale, repo-root json
    python benchmarks/perf_smoke.py --scale tiny    # CI smoke: seconds, no gate
    python benchmarks/perf_smoke.py --min-speedup 3 # fail below 3x
    python benchmarks/perf_smoke.py --bench engine --min-speedup 5
    python benchmarks/perf_smoke.py --obs-store .repro-obs  # + run store

A provenance manifest is written next to the trajectory file, and
``--obs-store`` lands the entry in a run-observatory store so
``repro obs regress`` can gate it against its baseline window.

Standalone on purpose (argparse + json, no pytest) so CI can run it as a
plain script and upload the json artifact.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.geometry.point import Point                      # noqa: E402
from repro.selection import CandidateTask, TaskSelectionProblem  # noqa: E402
from repro.selection.dp import DynamicProgrammingSelector   # noqa: E402
from repro.selection.reference_dp import ReferenceDPSelector  # noqa: E402

#: Paper Section VI constants: region side 3000 m, v*tau = 1 m/s * 1800 s.
AREA_HALF_SIDE = 1_500.0
TRAVEL_BUDGET = 1_800.0
COST_PER_METER = 0.002
REWARD_LEVELS = (0.5, 1.0, 1.5, 2.0, 2.5)


def paper_problem(rng, n_tasks):
    positions = rng.uniform(-AREA_HALF_SIDE, AREA_HALF_SIDE, size=(n_tasks, 2))
    rewards = rng.choice(REWARD_LEVELS, size=n_tasks)
    candidates = [
        CandidateTask(task_id=i, location=Point(float(x), float(y)), reward=float(r))
        for i, ((x, y), r) in enumerate(zip(positions, rewards))
    ]
    return TaskSelectionProblem.build(
        origin=Point(0.0, 0.0), candidates=candidates,
        max_distance=TRAVEL_BUDGET, cost_per_meter=COST_PER_METER,
    )


def time_selector(selector, problems, repeats):
    """Best-of-``repeats`` total wall time (s) to solve every problem."""
    timings = []
    for _ in range(repeats):
        started = time.perf_counter()
        selections = [selector.select(problem) for problem in problems]
        timings.append(time.perf_counter() - started)
    return min(timings), selections


def run(n_tasks, instances, repeats, seed):
    rng = np.random.default_rng(seed)
    problems = [paper_problem(rng, n_tasks) for _ in range(instances)]
    reference_time, reference_sel = time_selector(
        ReferenceDPSelector(max_exact_tasks=n_tasks), problems, repeats
    )
    vectorized_time, vectorized_sel = time_selector(
        DynamicProgrammingSelector(max_exact_tasks=n_tasks), problems, repeats
    )
    # Both are exact: identical optimal profits, or the timing is meaningless.
    profit_gaps = [
        abs(a.profit - b.profit) for a, b in zip(reference_sel, vectorized_sel)
    ]
    assert max(profit_gaps) < 1e-9, f"solvers disagree: max gap {max(profit_gaps)}"
    return {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "n_tasks": n_tasks,
        "instances": instances,
        "timing_repeats": repeats,
        "seed": seed,
        "reference_ms_per_call": 1e3 * reference_time / instances,
        "vectorized_ms_per_call": 1e3 * vectorized_time / instances,
        "speedup": reference_time / vectorized_time,
        "mean_profit": statistics.mean(s.profit for s in vectorized_sel),
    }


#: Engine-bench worlds: sparse city-scale geometry (city-50k's 2 000 tasks
#: at full scale) where per-user problem construction dominates.  Budgets
#: satisfy Eq. 9 feasibility (budget / (n_tasks * required) > step *
#: (levels - 1)).
ENGINE_SCALES = {
    "full": dict(
        n_users=10_000, n_tasks=2_000, rounds=3,
        area_side=56_000.0, budget=120_000.0,
    ),
    "tiny": dict(
        n_users=2_000, n_tasks=400, rounds=2,
        area_side=25_000.0, budget=24_000.0,
    ),
}


def _peak_rss_mb(profiler) -> float:
    """The profiler's peak RSS in MiB (0.0 when it never sampled)."""
    summary = profiler.summary()
    return round(summary.get("rss_peak_bytes", 0) / (1024 * 1024), 1)


def run_engine(n_users, n_tasks, rounds, area_side, budget, seed, workers=None):
    """Round throughput of the scalar vs batched engine on one shared world.

    With ``workers`` (>= 2) the batched run is repeated with the sharded
    select phase and timed as ``sharded_rounds_per_second`` — the
    histories must stay identical at every worker count.  Peak RSS over
    the whole bench is sampled on a background thread and recorded
    alongside the throughput numbers.
    """
    from repro.obs.profiler import ResourceProfiler
    from repro.simulation import SimulationConfig, make_engine

    base = SimulationConfig(
        n_users=n_users,
        n_tasks=n_tasks,
        rounds=rounds,
        area_side=area_side,
        budget=budget,
        deadline_range=(rounds, rounds),
        user_time_budget=600.0,
        selector="greedy",
        mechanism="on-demand",
        stream_rounds=True,
        seed=seed,
    )
    profiler = ResourceProfiler(interval=0.05).start()
    try:
        timings, results = {}, {}
        variants = [("scalar", "scalar", None), ("batched", "batched", None)]
        if workers and workers > 1:
            variants.append(("sharded", "batched", workers))
        for label, engine_name, engine_workers in variants:
            kwargs = {} if engine_workers is None else {"workers": engine_workers}
            engine = make_engine(
                base.with_overrides(engine=engine_name), **kwargs
            )
            started = time.perf_counter()
            results[label] = engine.run()
            timings[label] = time.perf_counter() - started
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    finally:
        profiler.stop()
    scalar, batched = results["scalar"], results["batched"]
    # Throughput only counts if both engines played the same campaign.
    for label, result in results.items():
        assert scalar.total_measurements == result.total_measurements, (
            f"engines disagree on measurements: scalar "
            f"{scalar.total_measurements} vs {label} {result.total_measurements}"
        )
        assert abs(scalar.total_paid - result.total_paid) < 1e-9, (
            f"engines disagree on payout: scalar {scalar.total_paid} "
            f"vs {label} {result.total_paid}"
        )
    entry = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "bench": "engine",
        "n_users": n_users,
        "n_tasks": n_tasks,
        "rounds": rounds,
        "seed": seed,
        "scalar_rounds_per_second": rounds / timings["scalar"],
        "batched_rounds_per_second": rounds / timings["batched"],
        "engine_speedup": timings["scalar"] / timings["batched"],
        "peak_rss_mb": _peak_rss_mb(profiler),
        "total_measurements": scalar.total_measurements,
    }
    if "sharded" in timings:
        entry["sharded_rounds_per_second"] = rounds / timings["sharded"]
        entry["shard_workers"] = workers
    return entry


def run_scenario(scenario, seed=None, workers=None):
    """One preset end to end: wall time, throughput, and peak RSS.

    The scenario bench is the city-scale anchor recorder: it runs a
    named preset (``city-2k`` in CI, ``city-50k`` / ``city-1m`` for the
    pinned anchors) through the public facade, optionally sharded, and
    reports the numbers the obs regression gate tracks.
    """
    from repro.obs.profiler import ResourceProfiler
    from repro.scenarios import get_preset
    from repro.simulation import make_engine

    overrides = {} if seed is None else {"seed": seed}
    config = get_preset(scenario).to_config(**overrides)
    profiler = ResourceProfiler(interval=0.05).start()
    try:
        kwargs = {} if not workers or workers <= 1 else {"workers": workers}
        engine = make_engine(config, **kwargs)
        started = time.perf_counter()
        result = engine.run()
        wall = time.perf_counter() - started
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    finally:
        profiler.stop()
    entry = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        # The bench name carries the preset so every scenario keeps its
        # own obs series (and regression baseline): mixing city-2k and
        # city-1m wall times in one series would gate on noise.
        "bench": f"scenario-{scenario}",
        "scenario": scenario,
        "n_users": config.n_users,
        "n_tasks": config.n_tasks,
        "rounds": config.rounds,
        "distance_dtype": config.distance_dtype,
        "seed": config.seed,
        "wall_seconds": round(wall, 3),
        "rounds_per_second": result.rounds_played / wall,
        "peak_rss_mb": _peak_rss_mb(profiler),
        "total_measurements": result.total_measurements,
    }
    if workers and workers > 1:
        entry["shard_workers"] = workers
    return entry


def run_dynamics(scenario="task-stream-2k", seed=None, scale="full", workers=None):
    """Churn-on vs churn-off throughput of one open-world preset.

    Runs the named preset twice through the batched engine — once as
    configured (dynamics on) and once with an emptied dynamics block
    (the closed-world control) — and reports both throughputs plus
    ``dynamics_overhead``, the *per-round* wall-time ratio
    (mean churn-round seconds / mean closed-round seconds).  The two
    runs can play very different round counts (the closed control stops
    once its seed tasks settle; the churn run keeps going while the
    stream owes tasks), so raw wall times are not comparable — the
    per-round ratio is.  Gating on it catches the open-world
    bookkeeping (array rebuilds, counter re-priming, shard refresh)
    getting slower without conflating it with general engine drift.
    """
    from repro.obs.profiler import ResourceProfiler
    from repro.scenarios import get_preset
    from repro.simulation import make_engine

    overrides = {} if seed is None else {"seed": seed}
    if scale == "tiny":
        overrides.update(n_users=400, rounds=5)
    config = get_preset(scenario).to_config(**overrides)
    if not config.dynamics:
        raise SystemExit(
            f"--bench dynamics needs an open-world scenario; "
            f"{scenario!r} has an empty dynamics block"
        )
    profiler = ResourceProfiler(interval=0.05).start()
    try:
        timings, results = {}, {}
        for label, cfg in (
            ("churn", config),
            ("baseline", config.with_overrides(dynamics={})),
        ):
            kwargs = {} if not workers or workers <= 1 else {"workers": workers}
            engine = make_engine(cfg, **kwargs)
            started = time.perf_counter()
            results[label] = engine.run()
            timings[label] = time.perf_counter() - started
            close = getattr(engine, "close", None)
            if close is not None:
                close()
    finally:
        profiler.stop()
    entry = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "bench": "dynamics",
        "scenario": scenario,
        "n_users": config.n_users,
        "n_tasks": config.n_tasks,
        "rounds": config.rounds,
        "seed": config.seed,
        "churn_rounds_per_second": (
            results["churn"].rounds_played / timings["churn"]
        ),
        "baseline_rounds_per_second": (
            results["baseline"].rounds_played / timings["baseline"]
        ),
        "dynamics_overhead": (
            (timings["churn"] / max(1, results["churn"].rounds_played))
            / (timings["baseline"] / max(1, results["baseline"].rounds_played))
        ),
        "peak_rss_mb": _peak_rss_mb(profiler),
        "total_measurements": results["churn"].total_measurements,
    }
    if workers and workers > 1:
        entry["shard_workers"] = workers
    return entry


def run_obs(scale="tiny", seed=0):
    """Live-layer overhead: the engine bare vs fully observed.

    Runs one engine-bench world twice — once bare, once with the whole
    live-operations stack attached (a :class:`SpanTracer` collecting
    round/phase spans plus a :class:`ProgressWriter` streaming an atomic
    ``progress.json`` to disk after every round) — and reports the
    per-round wall ratio as ``obs_overhead``.  Gating on the ratio
    rather than either throughput keeps the live layer regress-gated
    without conflating it with general engine drift.  The two runs must
    agree on measurements and payout: observability never changes the
    simulated numbers.
    """
    import tempfile

    from repro.obs.live import ProgressWriter
    from repro.obs.profiler import ResourceProfiler
    from repro.obs.trace import SpanTracer
    from repro.simulation import SimulationConfig, make_engine

    dims = ENGINE_SCALES[scale]
    config = SimulationConfig(
        n_users=dims["n_users"],
        n_tasks=dims["n_tasks"],
        rounds=dims["rounds"],
        area_side=dims["area_side"],
        budget=dims["budget"],
        deadline_range=(dims["rounds"], dims["rounds"]),
        user_time_budget=600.0,
        selector="greedy",
        mechanism="on-demand",
        stream_rounds=True,
        engine="batched",
        seed=seed,
    )
    profiler = ResourceProfiler(interval=0.05).start()
    try:
        timings, results = {}, {}
        with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as tmp:
            for label in ("plain", "live"):
                kwargs = {}
                if label == "live":
                    kwargs["tracer"] = SpanTracer(metadata={"bench": "obs"})
                engine = make_engine(config, **kwargs)
                if label == "live":
                    engine.observers.append(ProgressWriter(
                        tmp, "bench-obs",
                        rounds_total=config.rounds,
                        budget=config.budget,
                        n_tasks=len(engine.world.tasks),
                    ))
                started = time.perf_counter()
                results[label] = engine.run()
                timings[label] = time.perf_counter() - started
                close = getattr(engine, "close", None)
                if close is not None:
                    close()
    finally:
        profiler.stop()
    plain, live = results["plain"], results["live"]
    assert plain.total_measurements == live.total_measurements, (
        f"live layer changed the campaign: {plain.total_measurements} "
        f"vs {live.total_measurements} measurements"
    )
    assert abs(plain.total_paid - live.total_paid) < 1e-9, (
        f"live layer changed the payout: {plain.total_paid} "
        f"vs {live.total_paid}"
    )
    return {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "bench": "obs",
        "n_users": config.n_users,
        "n_tasks": config.n_tasks,
        "rounds": config.rounds,
        "seed": seed,
        "plain_rounds_per_second": (
            plain.rounds_played / timings["plain"]
        ),
        "live_rounds_per_second": (
            live.rounds_played / timings["live"]
        ),
        "obs_overhead": (
            (timings["live"] / max(1, live.rounds_played))
            / (timings["plain"] / max(1, plain.rounds_played))
        ),
        "peak_rss_mb": _peak_rss_mb(profiler),
        "total_measurements": plain.total_measurements,
    }


def run_env(scale="tiny", seed=0):
    """Session-stepping overhead: ``simulate()`` vs an actionless session.

    Runs one engine-bench world twice — once through the run-to-
    completion entry point and once stepped round by round through
    :func:`~repro.simulation.session.open_session` with an ``observe()``
    before every ``step()`` (the environment's access pattern) — and
    reports the per-round wall ratio as ``session_overhead``.  The two
    histories must agree on measurements and payout: the session is the
    same kernel, so any drift is a bug, and any overhead beyond ~1.1x
    means the session shell (snapshot building, cache bookkeeping) has
    started costing real time.
    """
    from repro.obs.profiler import ResourceProfiler
    from repro.simulation import SimulationConfig, open_session, simulate

    dims = ENGINE_SCALES[scale]
    config = SimulationConfig(
        n_users=dims["n_users"],
        n_tasks=dims["n_tasks"],
        rounds=dims["rounds"],
        area_side=dims["area_side"],
        budget=dims["budget"],
        deadline_range=(dims["rounds"], dims["rounds"]),
        user_time_budget=600.0,
        selector="greedy",
        mechanism="on-demand",
        stream_rounds=True,
        engine="batched",
        seed=seed,
    )
    profiler = ResourceProfiler(interval=0.05).start()
    try:
        started = time.perf_counter()
        direct = simulate(config)
        direct_wall = time.perf_counter() - started
        started = time.perf_counter()
        with open_session(config) as session:
            while not session.finished:
                session.observe()
                session.step()
            stepped = session.result()
        session_wall = time.perf_counter() - started
    finally:
        profiler.stop()
    assert direct.total_measurements == stepped.total_measurements, (
        f"session drifted from simulate(): {direct.total_measurements} "
        f"vs {stepped.total_measurements} measurements"
    )
    assert abs(direct.total_paid - stepped.total_paid) < 1e-9, (
        f"session drifted from simulate(): paid {direct.total_paid} "
        f"vs {stepped.total_paid}"
    )
    return {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "bench": "env",
        "n_users": config.n_users,
        "n_tasks": config.n_tasks,
        "rounds": config.rounds,
        "seed": seed,
        "simulate_rounds_per_second": (
            direct.rounds_played / direct_wall
        ),
        "session_rounds_per_second": (
            stepped.rounds_played / session_wall
        ),
        "session_overhead": (
            (session_wall / max(1, stepped.rounds_played))
            / (direct_wall / max(1, direct.rounds_played))
        ),
        "peak_rss_mb": _peak_rss_mb(profiler),
        "total_measurements": direct.total_measurements,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench",
                        choices=("selector", "engine", "scenario", "dynamics",
                                 "obs", "env"),
                        default="selector",
                        help="selector = DP microbench (default); "
                             "engine = scalar vs batched round throughput; "
                             "scenario = one named preset end to end "
                             "(wall/rounds-per-second/peak-RSS); "
                             "dynamics = churn-on vs churn-off throughput "
                             "of an open-world preset")
    parser.add_argument("--scale", choices=("full", "tiny"), default="full",
                        help="tiny = a seconds-long CI smoke run")
    parser.add_argument("--scenario", default="city-2k", metavar="NAME",
                        help="preset for --bench scenario (default city-2k)")
    parser.add_argument("--engine-workers", type=int, default=None, metavar="N",
                        help="also time the sharded select phase with N "
                             "worker processes (engine/scenario benches)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_selectors.json"),
                        help="trajectory file to append to")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if the speedup falls below this")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--obs-store", default=None, metavar="DIR",
                        help="also ingest the entry into a run-observatory "
                             "store (see 'repro obs')")
    args = parser.parse_args(argv)

    if args.bench == "engine":
        entry = run_engine(
            seed=args.seed, workers=args.engine_workers,
            **ENGINE_SCALES[args.scale],
        )
    elif args.bench == "scenario":
        entry = run_scenario(
            args.scenario, seed=args.seed, workers=args.engine_workers
        )
    elif args.bench == "dynamics":
        scenario = (
            args.scenario if args.scenario != "city-2k" else "task-stream-2k"
        )
        entry = run_dynamics(
            scenario, seed=args.seed, scale=args.scale,
            workers=args.engine_workers,
        )
    elif args.bench == "obs":
        entry = run_obs(scale=args.scale, seed=args.seed)
    elif args.bench == "env":
        entry = run_env(scale=args.scale, seed=args.seed)
    elif args.scale == "tiny":
        entry = run(n_tasks=12, instances=5, repeats=2, seed=args.seed)
    else:
        entry = run(n_tasks=20, instances=30, repeats=3, seed=args.seed)
    entry["scale"] = args.scale

    out = Path(args.out)
    trajectory = json.loads(out.read_text()) if out.exists() else []
    trajectory.append(entry)
    out.write_text(json.dumps(trajectory, indent=2) + "\n")

    # Provenance next to the numbers: which tree, interpreter, and host
    # produced the entry (never a reason to fail the bench itself).
    from repro.obs.manifest import build_manifest, write_manifest  # noqa: E402

    manifest_path = write_manifest(
        build_manifest(
            base_seed=args.seed,
            command="python benchmarks/perf_smoke.py "
                    f"--bench {args.bench} --scale {args.scale} "
                    f"--seed {args.seed}",
            bench=args.bench,
            scale=args.scale,
            n_tasks=entry["n_tasks"],
            instances=entry.get("instances", entry.get("n_users")),
        ),
        out,
    )
    print(f"wrote manifest: {manifest_path}")

    if args.obs_store:
        from repro.obs.store import ingest_bench_trajectory  # noqa: E402
        from repro.obs.store import RunStore

        store = RunStore(args.obs_store)
        created = ingest_bench_trajectory(store, out)
        print(
            f"recorded in store {store.root}: {len(created)} new runs "
            f"({len(store)} total)"
        )

    if args.bench == "engine":
        speedup = entry["engine_speedup"]
        sharded = (
            f", sharded({entry['shard_workers']}w) "
            f"{entry['sharded_rounds_per_second']:.2f} rounds/s"
            if "sharded_rounds_per_second" in entry
            else ""
        )
        print(
            f"{entry['n_users']} users x {entry['n_tasks']} tasks x "
            f"{entry['rounds']} rounds: "
            f"scalar {entry['scalar_rounds_per_second']:.2f} rounds/s, "
            f"batched {entry['batched_rounds_per_second']:.2f} rounds/s"
            f"{sharded} -> {speedup:.1f}x "
            f"(peak RSS {entry['peak_rss_mb']:.0f} MiB)"
        )
    elif args.bench == "scenario":
        speedup = None
        workers_note = (
            f" ({entry['shard_workers']} workers)"
            if "shard_workers" in entry
            else ""
        )
        print(
            f"{entry['scenario']}{workers_note}: {entry['n_users']} users x "
            f"{entry['n_tasks']} tasks x {entry['rounds']} rounds "
            f"[{entry['distance_dtype']}] in {entry['wall_seconds']:.1f}s "
            f"({entry['rounds_per_second']:.2f} rounds/s, "
            f"peak RSS {entry['peak_rss_mb']:.0f} MiB, "
            f"{entry['total_measurements']} measurements)"
        )
    elif args.bench == "dynamics":
        speedup = None
        workers_note = (
            f" ({entry['shard_workers']} workers)"
            if "shard_workers" in entry
            else ""
        )
        print(
            f"{entry['scenario']}{workers_note}: "
            f"churn {entry['churn_rounds_per_second']:.2f} rounds/s vs "
            f"closed {entry['baseline_rounds_per_second']:.2f} rounds/s "
            f"-> per-round overhead {entry['dynamics_overhead']:.2f}x "
            f"(peak RSS {entry['peak_rss_mb']:.0f} MiB, "
            f"{entry['total_measurements']} measurements)"
        )
    elif args.bench == "obs":
        speedup = None
        print(
            f"{entry['n_users']} users x {entry['n_tasks']} tasks x "
            f"{entry['rounds']} rounds: "
            f"plain {entry['plain_rounds_per_second']:.2f} rounds/s vs "
            f"live {entry['live_rounds_per_second']:.2f} rounds/s "
            f"-> per-round overhead {entry['obs_overhead']:.2f}x "
            f"(peak RSS {entry['peak_rss_mb']:.0f} MiB, "
            f"{entry['total_measurements']} measurements)"
        )
    elif args.bench == "env":
        speedup = None
        print(
            f"{entry['n_users']} users x {entry['n_tasks']} tasks x "
            f"{entry['rounds']} rounds: "
            f"simulate {entry['simulate_rounds_per_second']:.2f} rounds/s vs "
            f"session {entry['session_rounds_per_second']:.2f} rounds/s "
            f"-> per-round overhead {entry['session_overhead']:.2f}x "
            f"(peak RSS {entry['peak_rss_mb']:.0f} MiB, "
            f"{entry['total_measurements']} measurements)"
        )
    else:
        speedup = entry["speedup"]
        print(
            f"{entry['n_tasks']} tasks x {entry['instances']} instances: "
            f"reference {entry['reference_ms_per_call']:.2f} ms/call, "
            f"vectorized {entry['vectorized_ms_per_call']:.2f} ms/call "
            f"-> {speedup:.1f}x"
        )
    print(f"recorded in {out}")
    if args.min_speedup is not None and speedup is None:
        print(
            "NOTE: --min-speedup has no meaning for --bench scenario "
            "(no reference engine is timed); ignoring",
            file=sys.stderr,
        )
        return 0
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x below the "
            f"{args.min_speedup:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
