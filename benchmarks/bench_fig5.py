"""Regenerate Fig. 5: DP vs greedy task selection.

(a) average profit per user at round 2 vs number of users;
(b) boxplot of the per-user profit difference (DP minus greedy).

Expected shape: DP dominates greedy at every user count, every per-user
difference is >= 0 (DP is exactly optimal per instance), and both curves
fall as users grow (more users -> lower demand -> lower rewards).
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.analysis.shape import dominates
from repro.experiments.fig5 import fig5a, fig5b


def test_fig5a(regenerate):
    result = regenerate(lambda: fig5a(repetitions=bench_reps()))
    assert dominates(
        result.series_by_label("dp"), result.series_by_label("greedy"),
        tolerance=1e-9,
    )


def test_fig5b(regenerate):
    result = regenerate(lambda: fig5b(repetitions=bench_reps()))
    minimum = result.series_by_label("minimum")
    assert all(point.mean >= -1e-9 for point in minimum.points)
