"""Regenerate the DESIGN.md §5 ablation studies.

Not paper panels — these quantify the design choices the paper fixes
without justification: the number of demand levels, the three demand
factors, the AHP weight method, and the mobility assumption.
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.experiments import ablations


def test_ablation_levels(regenerate):
    result = regenerate(lambda: ablations.level_count_ablation(
        repetitions=bench_reps()
    ))
    assert result.metadata["variants"] == ["N=2", "N=5", "N=10", "level-free"]


def test_ablation_factors(regenerate):
    result = regenerate(lambda: ablations.factor_ablation(
        repetitions=bench_reps()
    ))
    coverage = result.series_by_label("coverage_pct")
    # The full demand indicator should never trail a dropped-factor
    # variant by a wide margin on coverage.
    full = coverage.points[0].mean
    assert all(full >= p.mean - 5.0 for p in coverage.points)


def test_ablation_mobility(regenerate):
    result = regenerate(lambda: ablations.mobility_ablation(
        repetitions=bench_reps()
    ))
    completeness = result.series_by_label("completeness_pct")
    # Headline result is mobility-insensitive: all variants within 15 pts.
    means = [p.mean for p in completeness.points]
    assert max(means) - min(means) < 15.0


def test_ablation_heterogeneity(regenerate):
    result = regenerate(lambda: ablations.heterogeneity_ablation(
        repetitions=bench_reps()
    ))
    coverage = result.series_by_label("coverage_pct")
    # The mechanism must not collapse under a heterogeneous crowd.
    assert all(p.mean >= 95.0 for p in coverage.points)


def test_ablation_adaptive(regenerate):
    result = regenerate(lambda: ablations.adaptive_budget_ablation(
        repetitions=bench_reps()
    ))
    completeness = result.series_by_label("completeness_pct")
    variants = result.metadata["variants"]
    by_variant = dict(zip(variants, [p.mean for p in completeness.points]))
    # Recycling the unspent budget must not hurt completeness.
    assert by_variant["adaptive@40u"] >= by_variant["on-demand@40u"] - 2.0


def test_ablation_arrivals(regenerate):
    result = regenerate(lambda: ablations.arrivals_ablation(
        repetitions=bench_reps()
    ))
    coverage = result.series_by_label("coverage_pct")
    variants = result.metadata["variants"]
    by_variant = dict(zip(variants, [p.mean for p in coverage.points]))
    # The dynamic mechanism's edge must grow when tasks arrive mid-campaign.
    assert by_variant["on-demand/staggered"] > by_variant["fixed/staggered"]


def test_ablation_weights(regenerate):
    result = regenerate(lambda: ablations.weight_method_ablation(
        repetitions=bench_reps()
    ))
    completeness = result.series_by_label("completeness_pct")
    means = [p.mean for p in completeness.points]
    # Column-normalisation vs eigenvector weights: near-identical outcomes.
    assert abs(means[0] - means[1]) < 10.0
