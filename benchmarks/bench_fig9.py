"""Regenerate Fig. 9: participation balance and platform welfare.

Expected shape: (a) on-demand has the lowest variance of measurements
(best balance, despite the highest average in Fig. 8(a)); (b) on-demand
pays the least per measurement, decreasing with more users.
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.analysis.shape import dominates
from repro.experiments.fig9 import fig9a, fig9b


def test_fig9a(regenerate):
    result = regenerate(lambda: fig9a(repetitions=bench_reps()))
    on_demand = result.series_by_label("on-demand")
    assert dominates(result.series_by_label("fixed"), on_demand)
    assert dominates(result.series_by_label("steered"), on_demand)


def test_fig9b(regenerate):
    result = regenerate(lambda: fig9b(repetitions=bench_reps()))
    on_demand = result.series_by_label("on-demand")
    assert dominates(result.series_by_label("fixed"), on_demand)
    assert dominates(result.series_by_label("steered"), on_demand)
    means = on_demand.means
    assert means[-1] < means[0]
