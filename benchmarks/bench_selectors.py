"""Selector benchmarks: runtime and profit gap, DP vs greedy vs 2-opt.

The paper motivates the greedy by the DP's O(m^2 2^m) cost (Theorems
2-3).  These benches measure what that trade actually buys on instances
drawn from the paper's own round-2 distribution: per-call latency for
each solver and the share of the optimal profit greedy/2-opt capture.
"""

import numpy as np
from conftest import RESULTS_DIR

from repro.geometry.point import Point
from repro.io.tables import render_table
from repro.selection import (
    CandidateTask,
    TaskSelectionProblem,
    make_selector,
)


def random_problem(rng, n_candidates, budget=1800.0):
    """An instance shaped like one user's round: uniform tasks, Eq. 7 prices."""
    positions = rng.uniform(-1800.0, 1800.0, size=(n_candidates, 2))
    rewards = rng.choice([0.5, 1.0, 1.5, 2.0, 2.5], size=n_candidates)
    candidates = [
        CandidateTask(task_id=i, location=Point(float(x), float(y)), reward=float(r))
        for i, ((x, y), r) in enumerate(zip(positions, rewards))
    ]
    return TaskSelectionProblem.build(
        origin=Point(0.0, 0.0), candidates=candidates,
        max_distance=budget, cost_per_meter=0.002,
    )


def _problems(count=20, n_candidates=20, seed=0):
    rng = np.random.default_rng(seed)
    return [random_problem(rng, n_candidates) for _ in range(count)]


def test_dp_selector_speed(benchmark):
    problems = _problems()
    dp = make_selector("dp")

    def solve_all():
        return [dp.select(p) for p in problems]

    selections = benchmark(solve_all)
    assert all(s.distance <= 1800.0 + 1e-6 for s in selections)


def test_reference_dp_selector_speed(benchmark):
    """The scalar DP the vectorized one replaced — the speedup baseline."""
    problems = _problems()
    reference = make_selector("reference-dp")
    selections = benchmark(lambda: [reference.select(p) for p in problems])
    assert all(s.distance <= 1800.0 + 1e-6 for s in selections)


def test_branch_and_bound_selector_speed(benchmark):
    problems = _problems()
    bnb = make_selector("branch-and-bound")
    selections = benchmark(lambda: [bnb.select(p) for p in problems])
    assert all(s.distance <= 1800.0 + 1e-6 for s in selections)


def test_greedy_selector_speed(benchmark):
    problems = _problems()
    greedy = make_selector("greedy")
    selections = benchmark(lambda: [greedy.select(p) for p in problems])
    assert all(s.distance <= 1800.0 + 1e-6 for s in selections)


def test_two_opt_selector_speed(benchmark):
    problems = _problems()
    two_opt = make_selector("greedy-2opt")
    selections = benchmark(lambda: [two_opt.select(p) for p in problems])
    assert all(s.distance <= 1800.0 + 1e-6 for s in selections)


def test_profit_gap_report(benchmark):
    """Greedy and 2-opt profit as a fraction of the DP optimum."""
    problems = _problems(count=40)
    dp = make_selector("dp")
    greedy = make_selector("greedy")
    two_opt = make_selector("greedy-2opt")

    def gaps():
        rows = []
        for problem in problems:
            optimal = dp.select(problem).profit
            if optimal <= 0:
                continue
            rows.append(
                (optimal, greedy.select(problem).profit, two_opt.select(problem).profit)
            )
        return rows

    rows = benchmark.pedantic(gaps, rounds=1, iterations=1)
    optima = np.array([r[0] for r in rows])
    greedy_ratio = float(np.mean([r[1] / r[0] for r in rows]))
    two_opt_ratio = float(np.mean([r[2] / r[0] for r in rows]))
    table = render_table(
        ["solver", "mean profit", "share of optimum"],
        [
            ["dp (optimal)", float(optima.mean()), 1.0],
            ["greedy-2opt", float(np.mean([r[2] for r in rows])), two_opt_ratio],
            ["greedy", float(np.mean([r[1] for r in rows])), greedy_ratio],
        ],
        precision=3,
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "selector_profit_gap.txt").write_text(table + "\n")
    assert 0.5 <= greedy_ratio <= 1.0 + 1e-9
    assert greedy_ratio - 1e-9 <= two_opt_ratio <= 1.0 + 1e-9
