"""Regenerate Fig. 7: overall completeness before deadlines.

Expected shape: on-demand dominates both baselines at every user count
and approaches 100 %; the baselines plateau below it.
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.analysis.shape import dominates, final_value
from repro.experiments.fig7 import fig7a, fig7b


def test_fig7a(regenerate):
    result = regenerate(lambda: fig7a(repetitions=bench_reps()))
    on_demand = result.series_by_label("on-demand")
    assert dominates(on_demand, result.series_by_label("fixed"))
    assert dominates(on_demand, result.series_by_label("steered"))
    assert final_value(on_demand) >= 95.0


def test_fig7b(regenerate):
    result = regenerate(lambda: fig7b(repetitions=bench_reps()))
    on_demand = result.series_by_label("on-demand")
    assert dominates(on_demand, result.series_by_label("fixed"))
    assert dominates(on_demand, result.series_by_label("steered"))
