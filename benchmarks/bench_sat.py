"""Regenerate the SAT-vs-WST comparison (extension, DESIGN.md §5).

Expected shape: demand-aware WST matches or beats the central greedy on
completeness (pricing, not control, closes the gap); fixed-reward WST
trails both; SAT has zero redundant contributions by construction.
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.experiments.sat_comparison import sat_vs_wst


def test_sat_vs_wst_completeness(regenerate):
    result = regenerate(lambda: sat_vs_wst(repetitions=bench_reps()))
    on_demand = result.series_by_label("wst-on-demand")
    fixed = result.series_by_label("wst-fixed")
    for point_on_demand, point_fixed in zip(on_demand.points, fixed.points):
        assert point_on_demand.mean > point_fixed.mean


def test_sat_vs_wst_coverage(regenerate):
    result = regenerate(
        lambda: sat_vs_wst(repetitions=bench_reps(), metric="coverage")
    )
    sat = result.series_by_label("sat-greedy")
    assert all(point.mean >= 99.0 for point in sat.points)
