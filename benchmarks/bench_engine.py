"""Engine throughput: full paper-scale simulations per mechanism/selector.

Not a paper figure — this is the bench that keeps the simulator honest
as the experiment harness sweeps hundreds of runs.
"""

import pytest

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, simulate


@pytest.mark.parametrize("mechanism", ["on-demand", "fixed", "steered"])
def test_full_run(benchmark, mechanism):
    """One full 100-user, 20-task, 15-round simulation."""
    seeds = iter(range(10_000))

    def run():
        return simulate(SimulationConfig(
            n_users=100, mechanism=mechanism, seed=next(seeds)
        ))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.rounds_played >= 1


def test_single_round_step(benchmark):
    """Per-round cost: reward update + 100 selections + uploads."""
    engines = iter(
        SimulationEngine(SimulationConfig(n_users=100, seed=s)) for s in range(10_000)
    )
    record = benchmark.pedantic(
        lambda: next(engines).step(), rounds=5, iterations=1
    )
    assert record.round_no == 1


def test_greedy_vs_dp_engine(benchmark):
    """Full run with the greedy selector (the large-scale configuration)."""
    seeds = iter(range(10_000))

    def run():
        return simulate(SimulationConfig(
            n_users=140, selector="greedy", seed=next(seeds)
        ))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.rounds_played >= 1
