"""Regenerate the extension panels (DESIGN.md §5, EXPERIMENTS.md 'beyond').

- platform welfare by mechanism (the Section III-B objective directly),
- reward dynamics (what each mechanism offers round by round),
- the budget sweep (how much budget a completeness level costs).
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.analysis.shape import dominates, is_monotonic
from repro.experiments.reward_dynamics import reward_dynamics
from repro.experiments.sweeps import budget_sweep
from repro.experiments.welfare import welfare_by_mechanism


def test_welfare(regenerate):
    result = regenerate(lambda: welfare_by_mechanism(repetitions=bench_reps()))
    on_demand = result.series_by_label("on-demand")
    assert dominates(on_demand, result.series_by_label("fixed"))
    assert dominates(on_demand, result.series_by_label("steered"))


def test_reward_dynamics(regenerate):
    result = regenerate(lambda: reward_dynamics(repetitions=bench_reps()))
    steered = result.series_by_label("steered").means
    # Steered opens at its ceiling and collapses immediately (per-task
    # offers only decay; the survivor mean can wiggle later as the active
    # set changes, so the claim is about the opening rounds).
    assert steered[0] == max(steered)
    assert steered[1] < 0.6 * steered[0]
    # On-demand keeps offering competitive prices mid-campaign, which is
    # why it is the only mechanism still buying data then (Fig. 8(b)).
    on_demand = result.series_by_label("on-demand").means
    mid = slice(4, 13)
    assert sum(on_demand[mid]) > sum(steered[mid])


def test_budget_sweep(regenerate):
    result = regenerate(lambda: budget_sweep(repetitions=bench_reps()))
    completeness = result.series_by_label("completeness_pct").means
    # More budget never buys less completeness (within noise).
    assert is_monotonic(completeness, increasing=True, tolerance=3.0)
