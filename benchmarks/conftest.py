"""Shared machinery for the benchmark harness.

Every bench regenerates one paper panel (DESIGN.md §4), times it with
pytest-benchmark, prints the paper-style rows, and persists them under
``benchmarks/results/`` so the numbers survive pytest's output capture.

Scale: ``REPRO_BENCH_REPS`` repetitions per configuration (default 5;
the paper uses 100 — export ``REPRO_BENCH_REPS=100`` for a full-fidelity
regeneration, which takes on the order of an hour).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.series import ExperimentResult
from repro.io.results import save_result
from repro.io.tables import render_experiment

RESULTS_DIR = Path(__file__).parent / "results"


def bench_reps(default: int = 5) -> int:
    """Repetitions per bench configuration (env ``REPRO_BENCH_REPS``)."""
    raw = os.environ.get("REPRO_BENCH_REPS")
    if raw is None:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"REPRO_BENCH_REPS must be >= 1, got {value}")
    return value


def report(result: ExperimentResult, precision: int = 2) -> None:
    """Print the panel rows and persist them under benchmarks/results/."""
    text = render_experiment(result, precision=precision)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    save_result(result, RESULTS_DIR / f"{result.experiment_id}.json")


@pytest.fixture
def regenerate(benchmark):
    """Time one panel regeneration and report its rows.

    Usage::

        def test_fig6a(regenerate):
            regenerate(lambda: fig6a(repetitions=bench_reps()))
    """

    def run(factory, precision: int = 2) -> ExperimentResult:
        result = benchmark.pedantic(factory, rounds=1, iterations=1)
        report(result, precision=precision)
        return result

    return run
