"""Regenerate Tables I-III and benchmark the AHP weight computation."""

from pathlib import Path

from conftest import RESULTS_DIR

from repro.core.ahp import example_comparison_matrix
from repro.experiments.tables import all_tables
from repro.io.tables import render_table


def test_tables(benchmark):
    tables = benchmark.pedantic(all_tables, rounds=5, iterations=1)
    lines = []
    for table in tables:
        lines.append(f"{table.table_id}: {table.title}")
        lines.append(render_table(table.header, table.rows, precision=3))
        lines.append("")
    text = "\n".join(lines)
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    Path(RESULTS_DIR / "tables.txt").write_text(text)
    # Pin the paper's weight vector on the way out.
    weights = [row[-1] for row in tables[1].rows]
    assert weights == [0.648, 0.23, 0.122]


def test_ahp_weights_speed(benchmark):
    """Both weight methods on the Table I matrix (micro-benchmark)."""
    matrix = example_comparison_matrix()

    def both():
        return (
            matrix.weights("column-normalization"),
            matrix.weights("eigenvector"),
            matrix.consistency_ratio(),
        )

    column, eigen, ratio = benchmark(both)
    assert abs(float(column.sum()) - 1.0) < 1e-9
    assert abs(float(eigen.sum()) - 1.0) < 1e-9
    assert ratio < 0.1
