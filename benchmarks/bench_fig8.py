"""Regenerate Fig. 8: number of measurements.

Expected shape: (a) on-demand collects the most measurements per task,
approaching the required 20; (b) steered spikes highest in round 1,
fixed holds up relatively better in rounds 2-3, and from round 4 only
the on-demand mechanism keeps collecting.
"""

from conftest import bench_reps, regenerate as _regenerate  # noqa: F401

from repro.analysis.shape import dominates, final_value
from repro.experiments.fig8 import fig8a, fig8b


def test_fig8a(regenerate):
    result = regenerate(lambda: fig8a(repetitions=bench_reps()))
    on_demand = result.series_by_label("on-demand")
    assert dominates(on_demand, result.series_by_label("fixed"))
    assert dominates(on_demand, result.series_by_label("steered"))
    assert final_value(on_demand) >= 19.0


def test_fig8b(regenerate):
    result = regenerate(lambda: fig8b(repetitions=bench_reps()), precision=1)
    first = {label: result.series_by_label(label).point_at(1).mean
             for label in result.labels}
    assert first["steered"] >= max(first["on-demand"], first["fixed"])

    def late(label):
        return sum(p.mean for p in result.series_by_label(label).points if p.x >= 4)

    assert late("on-demand") > late("fixed")
    assert late("on-demand") > late("steered")
