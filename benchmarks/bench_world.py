"""Substrate micro-benchmarks: world generation and neighbour counting.

Not paper panels — these watch the hot paths under the experiment
harness: every repetition generates a world, and every round rebuilds a
grid index to count each task's neighbouring users (the X3 factor).
"""

import numpy as np

from repro.geometry.grid_index import GridIndex
from repro.geometry.point import Point
from repro.simulation.config import SimulationConfig
from repro.world.generator import default_generator


def test_uniform_world_generation(benchmark):
    generator = default_generator(n_users=140)
    seeds = iter(np.random.Generator(np.random.PCG64(s)) for s in range(10_000))
    world = benchmark(lambda: generator.uniform(next(seeds)))
    assert len(world.users) == 140


def test_clustered_world_generation(benchmark):
    generator = default_generator(n_users=140)
    seeds = iter(np.random.Generator(np.random.PCG64(s)) for s in range(10_000))
    world = benchmark(lambda: generator.clustered(next(seeds)))
    assert len(world.tasks) == 20


def test_grid_index_round(benchmark):
    """One round's X3 computation: build index + query all 20 tasks."""
    rng = np.random.default_rng(0)
    users = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (140, 2))]
    tasks = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (20, 2))]

    def round_counts():
        index = GridIndex(users, cell_size=500.0)
        return index.counts_for(tasks, 500.0)

    counts = benchmark(round_counts)
    assert len(counts) == 20


def test_problem_building(benchmark):
    """Per-user Eq. 1 instance construction at paper scale."""
    from repro.simulation.engine import SimulationEngine

    engine = SimulationEngine(SimulationConfig(n_users=100, seed=0))
    engine.step()

    problems = benchmark(engine.build_problems)
    assert len(problems) == 100
