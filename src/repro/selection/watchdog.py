"""A wall-clock watchdog around any selector, with graceful degradation.

The exact DP of Eq. 11–12 is :math:`O(m^2 2^m)` in the worst case; the
label-setting pruning makes the *paper's* instances fast, but a
pathological geometry (dense, high-reward, huge travel budget) can still
blow up — and one such user instance would hang an entire 100-repetition
campaign.  :class:`TimeBoundedSelector` bounds every ``select`` call by
a wall-clock deadline and degrades to the paper's own greedy solver on
breach, so a campaign slows down instead of hanging, and the degradation
is *recorded* (per round, in
:attr:`~repro.simulation.events.RoundRecord.selector_fallbacks`) so
experiments can report how often exactness was sacrificed.

The inner call runs on a daemon worker thread; on timeout the worker is
abandoned (Python cannot preempt it) and its eventual result discarded.
That costs one stranded thread per breach — acceptable for the rare
pathological instance this guards against, and the only portable way to
bound arbitrary selector code.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from repro.obs.log import get_logger
from repro.resilience.errors import ConfigError, SelectorTimeout
from repro.selection.base import Selection, Selector
from repro.selection.greedy import GreedySelector
from repro.selection.problem import TaskSelectionProblem

log = get_logger("selection.watchdog")

#: Sentinel distinguishing "use the default greedy fallback" from
#: "no fallback — raise" (which callers request with ``fallback=None``).
_DEFAULT_FALLBACK = object()


class TimeBoundedSelector(Selector):
    """Enforce a wall-clock deadline on an inner selector's ``select``.

    On breach (or, optionally, on an inner crash) the fallback solver
    answers instead and the degradation is counted; with
    ``fallback=None`` the breach raises
    :class:`~repro.resilience.errors.SelectorTimeout` and an inner crash
    propagates.

    Args:
        inner: the guarded selector — an instance, or a registry name
            resolved via :func:`~repro.selection.factory.make_selector`.
        timeout: wall-clock deadline per ``select`` call, in seconds.
        fallback: the degradation solver (default: the paper's greedy);
            ``None`` disables degradation and turns breaches into errors.
        catch_errors: also degrade when the inner selector *raises*
            (ignored when ``fallback`` is None).

    Determinism note: the wrapped pipeline stays deterministic as long
    as no deadline is breached; a breach makes the outcome depend on
    machine speed, which is precisely why it is surfaced in the round
    records rather than hidden.
    """

    name = "time-bounded"

    def __init__(
        self,
        inner: Union[Selector, str] = "dp",
        timeout: float = 1.0,
        fallback=_DEFAULT_FALLBACK,
        catch_errors: bool = True,
    ):
        if isinstance(inner, str):
            from repro.selection.registry import SELECTORS

            inner = SELECTORS.create(inner)
        if timeout <= 0:
            raise ConfigError(
                f"selector timeout must be positive seconds, got {timeout}"
            )
        self.inner = inner
        self.timeout = float(timeout)
        self.fallback: Optional[Selector] = (
            GreedySelector() if fallback is _DEFAULT_FALLBACK else fallback
        )
        self.catch_errors = catch_errors
        #: degradations since construction (timeouts + caught crashes)
        self.total_fallbacks = 0
        #: timeouts specifically (subset of total_fallbacks)
        self.total_timeouts = 0
        self._round_fallbacks = 0

    # -- Selector interface ---------------------------------------------

    def select(self, problem: TaskSelectionProblem) -> Selection:
        outcome: dict = {}

        def work() -> None:
            try:
                outcome["result"] = self.inner.select(problem)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                outcome["error"] = exc

        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        worker.join(self.timeout)

        if worker.is_alive():
            self.total_timeouts += 1
            if self.fallback is None:
                raise SelectorTimeout(
                    f"{type(self.inner).__name__} exceeded its "
                    f"{self.timeout:g}s deadline on a {problem.size}-task "
                    f"instance and no fallback is configured"
                )
            log.warning(
                "selector deadline breached; degrading to fallback solver",
                extra={
                    "selector": type(self.inner).__name__,
                    "fallback": type(self.fallback).__name__,
                    "timeout_s": self.timeout,
                    "problem_size": problem.size,
                    "total_timeouts": self.total_timeouts,
                },
            )
            return self._degrade(problem)
        if "error" in outcome:
            if self.fallback is None or not self.catch_errors:
                raise outcome["error"]
            log.warning(
                "selector crashed; degrading to fallback solver",
                extra={
                    "selector": type(self.inner).__name__,
                    "fallback": type(self.fallback).__name__,
                    "problem_size": problem.size,
                    "error": repr(outcome["error"]),
                },
            )
            return self._degrade(problem)
        return outcome["result"]

    def _degrade(self, problem: TaskSelectionProblem) -> Selection:
        self.total_fallbacks += 1
        self._round_fallbacks += 1
        return self.fallback.select(problem)

    # -- engine hook -----------------------------------------------------

    def consume_round_fallbacks(self) -> int:
        """Degradations since the last call (the engine drains this once
        per round into the :class:`RoundRecord`)."""
        count = self._round_fallbacks
        self._round_fallbacks = 0
        return count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TimeBoundedSelector(inner={self.inner!r}, "
            f"timeout={self.timeout}, fallback={self.fallback!r})"
        )
