"""Exhaustive task selection — the correctness oracle for small instances.

Enumerates every subset of candidates and every visit order of each
subset, keeping the best feasible profit.  Factorial in the instance
size, so it refuses instances beyond ``max_tasks`` (default 8: 8! x 2^8
≈ 10M orders is already seconds).  Used by the property tests to verify
that the DP selector is exactly optimal and that greedy never beats it.
"""

from __future__ import annotations

from itertools import permutations
from typing import Optional, Tuple

from repro.selection.base import Selection, Selector
from repro.selection.problem import TaskSelectionProblem


class BruteForceSelector(Selector):
    """Optimal-by-enumeration solver for Eq. 1 (test oracle).

    Args:
        max_tasks: hard size limit; larger instances raise instead of
            silently taking hours.
        min_profit: same rational-user threshold as the other solvers.
    """

    name = "brute-force"

    def __init__(self, max_tasks: int = 8, min_profit: float = 0.0):
        if max_tasks < 1:
            raise ValueError(f"max_tasks must be >= 1, got {max_tasks}")
        self.max_tasks = max_tasks
        self.min_profit = min_profit

    def select(self, problem: TaskSelectionProblem) -> Selection:
        if problem.size > self.max_tasks:
            raise ValueError(
                f"brute force refuses {problem.size} tasks (limit {self.max_tasks})"
            )
        best: Optional[Tuple[float, Selection]] = None
        indices = range(problem.size)
        # Enumerate orders directly: every non-empty subset appears as the
        # set of elements of some permutation prefix, so permutations of
        # all sizes cover the whole subset lattice.
        for size in range(1, problem.size + 1):
            for order in permutations(indices, size):
                if not problem.is_feasible(order):
                    continue
                selection = problem.evaluate(order)
                if selection.profit <= self.min_profit:
                    continue
                if best is None or selection.profit > best[0] + 1e-12:
                    best = (selection.profit, selection)
        if best is None:
            return Selection.empty()
        return best[1]
