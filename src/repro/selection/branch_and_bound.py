"""Exact branch-and-bound task selection (an alternative to the DP).

Depth-first search over partial paths with two lossless prunes:

- **feasibility** — a task whose direct leg from the current path end
  exceeds the remaining travel budget can never appear anywhere in the
  subtree (path distances only grow, and by the triangle inequality any
  indirect route to it is at least as long), so it is dropped from the
  subtree's candidate set;
- **optimistic bound** — the best any completion of the current path can
  achieve is the current profit plus the *full rewards* of every task
  still feasible from here (pretending travel to them is free).  If that
  bound cannot beat the incumbent, the subtree is cut.

Children are explored best-marginal-profit-first so a strong incumbent
appears early.  The result is exactly optimal — the property tests pit it
against both the DP and the brute-force oracle — and on round-shaped
instances it explores a small fraction of the DP's state space, at the
cost of an exponential worst case without the DP's memoisation.
"""

from __future__ import annotations

from typing import List, Optional

from repro.selection.base import Selection, Selector
from repro.selection.problem import TaskSelectionProblem


class BranchAndBoundSelector(Selector):
    """Optimal Eq. 1 solver via bounded DFS (module docstring).

    Args:
        min_profit: the rational-user threshold; selections must beat it.
        max_nodes: safety valve on explored nodes.  When exhausted the
            incumbent (best selection found so far) is returned — still
            feasible, possibly sub-optimal; the default is far above
            anything round-shaped instances reach.
    """

    name = "branch-and-bound"

    def __init__(self, min_profit: float = 0.0, max_nodes: int = 2_000_000):
        if max_nodes < 1:
            raise ValueError(f"max_nodes must be >= 1, got {max_nodes}")
        self.min_profit = min_profit
        self.max_nodes = max_nodes

    def select(self, problem: TaskSelectionProblem) -> Selection:
        if problem.size == 0:
            return Selection.empty()
        search = _Search(problem, self.min_profit, self.max_nodes)
        order = search.run()
        if order is None:
            return Selection.empty()
        return problem.evaluate(order)


class _Search:
    """One DFS invocation's mutable state."""

    def __init__(self, problem: TaskSelectionProblem, min_profit: float, max_nodes: int):
        self.matrix = problem.distance_matrix
        self.rewards = problem.rewards
        self.budget = problem.max_distance + 1e-9
        self.cost_rate = problem.cost_per_meter
        self.size = problem.size
        self.best_profit = min_profit
        self.best_order: Optional[List[int]] = None
        self.nodes_left = max_nodes

    def run(self) -> Optional[List[int]]:
        self._dfs(node=0, visited=0, distance=0.0, reward=0.0, order=[])
        return self.best_order

    def _dfs(
        self, node: int, visited: int, distance: float, reward: float,
        order: List[int],
    ) -> None:
        if self.nodes_left <= 0:
            return
        self.nodes_left -= 1

        profit = reward - self.cost_rate * distance
        if profit > self.best_profit:
            self.best_profit = profit
            self.best_order = list(order)

        remaining = self.budget - distance
        row = self.matrix[node]
        # Feasible children and the optimistic bound in one pass.
        children = []
        optimistic = profit
        for candidate in range(self.size):
            if visited & (1 << candidate):
                continue
            leg = float(row[candidate + 1])
            if leg > remaining:
                continue
            optimistic += float(self.rewards[candidate])
            children.append((float(self.rewards[candidate]) - self.cost_rate * leg,
                             candidate, leg))
        if optimistic <= self.best_profit or not children:
            return
        children.sort(reverse=True)
        for _gain, candidate, leg in children:
            order.append(candidate)
            self._dfs(
                node=candidate + 1,
                visited=visited | (1 << candidate),
                distance=distance + leg,
                reward=reward + float(self.rewards[candidate]),
                order=order,
            )
            order.pop()
