"""The task-selector registry: every solver, addressable by short name.

Mirrors :mod:`repro.core.mechanisms.registry`; the CLI and experiment
configs refer to selectors by these names.  The :data:`SELECTORS`
registry is the blessed construction surface
(``SELECTORS.create(name, **kwargs)`` / ``SELECTORS.available()``); the
legacy :mod:`repro.selection.factory` module is a deprecated shim that
re-exports these names.
"""

from __future__ import annotations

from repro.registry import Registry
from repro.selection.base import Selector
from repro.selection.branch_and_bound import BranchAndBoundSelector
from repro.selection.brute_force import BruteForceSelector
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.greedy import GreedySelector
from repro.selection.reference_dp import ReferenceDPSelector
from repro.selection.two_opt import GreedyTwoOptSelector
from repro.selection.watchdog import TimeBoundedSelector

#: The task-selector registry (the blessed construction surface).
SELECTORS: Registry[Selector] = Registry("selector")
for _cls in (
    DynamicProgrammingSelector,
    ReferenceDPSelector,
    BranchAndBoundSelector,
    GreedySelector,
    GreedyTwoOptSelector,
    BruteForceSelector,
    TimeBoundedSelector,
):
    SELECTORS.register(_cls)

#: Registered selector names in presentation order.
SELECTOR_NAMES = SELECTORS.available()
