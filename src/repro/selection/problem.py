"""The per-user, per-round task-selection problem instance.

This is the travel graph of Theorem 1: node 0 is the user's current
location, nodes 1..m are the candidate task locations, edge weights are
Euclidean travel distances, and node weights are the round's rewards.
The constructor prunes tasks that can never be on a feasible path
(direct distance beyond the travel budget), which is lossless, and
precomputes the full distance matrix once so solvers do no per-pair
geometry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.distances import pairwise_distances
from repro.geometry.point import Point
from repro.selection.base import CandidateTask, Selection


@dataclass(frozen=True)
class TaskSelectionProblem:
    """One user's Eq. 1 instance for one round.

    Args:
        origin: the user's current location (path start; node 0).
        candidates: the selectable tasks after pruning.
        max_distance: the travel-distance budget ``speed * time_budget`` (m).
        cost_per_meter: movement cost in $/m.
        distance_matrix: ``(m+1, m+1)`` distances; row/col 0 is the origin.

    Build via :meth:`build` — the constructor trusts its inputs.
    """

    origin: Point
    candidates: Tuple[CandidateTask, ...]
    max_distance: float
    cost_per_meter: float
    distance_matrix: np.ndarray

    @classmethod
    def build(
        cls,
        origin: Point,
        candidates: Sequence[CandidateTask],
        max_distance: float,
        cost_per_meter: float,
    ) -> "TaskSelectionProblem":
        """Construct the instance, pruning unreachable candidates.

        A task whose *direct* distance from the origin exceeds
        ``max_distance`` cannot appear on any feasible path (every path
        to it is at least that long by the triangle inequality), so
        dropping it preserves the optimum exactly.

        Raises:
            ValueError: for a negative budget or cost rate, or duplicate
                candidate task ids.
        """
        if max_distance < 0:
            raise ValueError(f"max_distance must be non-negative, got {max_distance}")
        if cost_per_meter < 0:
            raise ValueError(
                f"cost_per_meter must be non-negative, got {cost_per_meter}"
            )
        ids = [c.task_id for c in candidates]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate candidate task ids: {sorted(ids)}")
        reachable = [
            c for c in candidates if origin.distance_to(c.location) <= max_distance
        ]
        points = [origin] + [c.location for c in reachable]
        matrix = pairwise_distances(points)
        return cls(
            origin=origin,
            candidates=tuple(reachable),
            max_distance=float(max_distance),
            cost_per_meter=float(cost_per_meter),
            distance_matrix=matrix,
        )

    # -- structure ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of candidate tasks m (after pruning)."""
        return len(self.candidates)

    @property
    def rewards(self) -> np.ndarray:
        """Candidate rewards as an array aligned with ``candidates``."""
        return np.asarray([c.reward for c in self.candidates], dtype=float)

    def restricted_to(self, indices: Sequence[int]) -> "TaskSelectionProblem":
        """A sub-problem over a subset of candidate *indices* (0-based).

        Used by the DP selector to cap instance size: it keeps the
        highest-potential candidates and solves exactly on those.
        """
        index_list = sorted(set(indices))
        if any(i < 0 or i >= self.size for i in index_list):
            raise ValueError(f"candidate indices out of range: {indices}")
        keep = [0] + [i + 1 for i in index_list]  # matrix rows incl. origin
        sub_matrix = self.distance_matrix[np.ix_(keep, keep)]
        return TaskSelectionProblem(
            origin=self.origin,
            candidates=tuple(self.candidates[i] for i in index_list),
            max_distance=self.max_distance,
            cost_per_meter=self.cost_per_meter,
            distance_matrix=sub_matrix,
        )

    # -- evaluation helpers ---------------------------------------------------

    def path_distance(self, order: Sequence[int]) -> float:
        """Distance of the origin-anchored path visiting candidate *indices* in order."""
        dist = 0.0
        prev = 0
        for idx in order:
            node = idx + 1
            dist += float(self.distance_matrix[prev, node])
            prev = node
        return dist

    def evaluate(self, order: Sequence[int]) -> Selection:
        """Build the :class:`Selection` for a visit order of candidate indices.

        Raises:
            ValueError: for duplicate or out-of-range indices.
        """
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate candidate indices in order: {order}")
        if any(i < 0 or i >= self.size for i in order):
            raise ValueError(f"candidate indices out of range: {order}")
        distance = self.path_distance(order)
        reward = float(sum(self.candidates[i].reward for i in order))
        return Selection(
            task_ids=tuple(self.candidates[i].task_id for i in order),
            distance=distance,
            reward=reward,
            cost=distance * self.cost_per_meter,
        )

    def is_feasible(self, order: Sequence[int]) -> bool:
        """Whether a visit order respects the travel budget (with float slack)."""
        return self.path_distance(order) <= self.max_distance + 1e-9

    def path_points(self, task_ids: Sequence[int]) -> List[Point]:
        """Locations of the given *task ids* in order (for the mobility policy).

        Raises:
            ValueError: for an id that is not among the candidates.
        """
        by_id = {c.task_id: c.location for c in self.candidates}
        try:
            return [by_id[task_id] for task_id in task_ids]
        except KeyError as exc:
            raise ValueError(f"task id {exc.args[0]} is not a candidate") from None
