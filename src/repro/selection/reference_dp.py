"""The scalar (pure-Python) exact DP — kept as the equivalence oracle.

This is the original ``DynamicProgrammingSelector`` implementation:
budget-pruned label-setting over ``(mask, last)`` states with a
``Dict[int, List[float]]`` state store, expanded one Python loop
iteration at a time.  The production selector in
:mod:`repro.selection.dp` computes the same recurrence with batched
numpy layers; this module preserves the loop-level formulation so the
vectorized rewrite can be property-tested against it (and both against
the brute-force enumerator) forever.

Two micro-fixes over the historical version, neither changing results:

- frontier membership is tracked in a set alongside the list (the old
  ``if mask not in frontier`` scanned the list, turning the seed loop
  quadratic), and
- mask rewards propagate incrementally (child reward = parent reward +
  the extending task's reward) instead of re-summing the bits of every
  mask from scratch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.selection.base import Selection, Selector
from repro.selection.problem import TaskSelectionProblem


class ReferenceDPSelector(Selector):
    """Scalar Eq. 11-12 solver (the vectorized selector's test oracle).

    Args:
        max_exact_tasks: largest candidate count solved exactly; bigger
            instances are restricted to that many highest-potential
            candidates first (identical capping rule to the production
            selector, so the two stay comparable on large instances).
        min_profit: selections must beat this profit to be worth leaving
            home; the paper's rational user uses 0.
    """

    name = "reference-dp"

    def __init__(self, max_exact_tasks: int = 18, min_profit: float = 0.0):
        if max_exact_tasks < 1:
            raise ValueError(f"max_exact_tasks must be >= 1, got {max_exact_tasks}")
        self.max_exact_tasks = max_exact_tasks
        self.min_profit = min_profit

    def select(self, problem: TaskSelectionProblem) -> Selection:
        if problem.size == 0:
            return Selection.empty()
        problem = self._capped(problem)
        order = self._best_order(problem)
        if order is None:
            return Selection.empty()
        return problem.evaluate(order)

    # -- candidate capping -------------------------------------------------

    def _capped(self, problem: TaskSelectionProblem) -> TaskSelectionProblem:
        if problem.size <= self.max_exact_tasks:
            return problem
        direct = problem.distance_matrix[0, 1:]
        potential = problem.rewards - problem.cost_per_meter * direct
        keep = np.argsort(-potential)[: self.max_exact_tasks]
        return problem.restricted_to([int(i) for i in keep])

    # -- the DP itself -----------------------------------------------------------

    def _best_order(self, problem: TaskSelectionProblem) -> Optional[List[int]]:
        """The profit-optimal feasible visit order, or None to sit out.

        States are ``(mask, last)`` with ``mask`` a bitmask over candidate
        indices and ``last`` the index of the final task on the path.
        ``dist[mask][last]`` is the shortest such path from the origin
        (the paper's ``dp[l][j]``); parents reconstruct the visit order.
        """
        m = problem.size
        matrix = problem.distance_matrix
        rewards = problem.rewards
        budget = problem.max_distance + 1e-9
        cost_rate = problem.cost_per_meter

        # dist[mask] is a list over last-index 0..m-1 (np.inf = unreachable).
        dist: Dict[int, List[float]] = {}
        parent: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # reward_of[mask] is maintained incrementally as masks are first
        # reached: child reward = parent reward + the new task's reward.
        reward_of: Dict[int, float] = {0: 0.0}

        # Seed: single-task paths straight from the origin.
        frontier: List[int] = []
        seen_frontier = set()
        for j in range(m):
            d0 = float(matrix[0, j + 1])
            if d0 <= budget:
                mask = 1 << j
                dist.setdefault(mask, [np.inf] * m)[j] = d0
                parent[(mask, j)] = (0, -1)
                reward_of[mask] = float(rewards[j])
                if mask not in seen_frontier:
                    seen_frontier.add(mask)
                    frontier.append(mask)

        best_profit = self.min_profit
        best_state: Tuple[int, int] = (0, -1)

        # Expand layer by layer (masks in a frontier all have equal popcount).
        while frontier:
            next_frontier: List[int] = []
            seen_next = set()
            for mask in frontier:
                dists = dist[mask]
                total_reward = reward_of[mask]
                for last in range(m):
                    d = dists[last]
                    if not np.isfinite(d):
                        continue
                    profit = total_reward - cost_rate * d
                    if profit > best_profit:
                        best_profit = profit
                        best_state = (mask, last)
                    # Extend to every task not yet on the path.
                    row = matrix[last + 1]
                    for nxt in range(m):
                        bit = 1 << nxt
                        if mask & bit:
                            continue
                        nd = d + float(row[nxt + 1])
                        if nd > budget:
                            continue
                        nmask = mask | bit
                        slot = dist.get(nmask)
                        if slot is None:
                            slot = [np.inf] * m
                            dist[nmask] = slot
                            reward_of[nmask] = total_reward + float(rewards[nxt])
                        if nd < slot[nxt]:
                            slot[nxt] = nd
                            parent[(nmask, nxt)] = (mask, last)
                            if nmask not in seen_next:
                                seen_next.add(nmask)
                                next_frontier.append(nmask)
            frontier = next_frontier

        if best_state[0] == 0:
            return None
        return self._reconstruct(best_state, parent)

    @staticmethod
    def _reconstruct(
        state: Tuple[int, int], parent: Dict[Tuple[int, int], Tuple[int, int]]
    ) -> List[int]:
        order: List[int] = []
        mask, last = state
        while mask:
            order.append(last)
            mask, last = parent[(mask, last)]
        order.reverse()
        return order
