"""Greedy + 2-opt: an extension selector between greedy and exact DP.

The paper stops at greedy for large instances.  A classical cheap
improvement is 2-opt on the visit order: reversing a segment of an
origin-anchored open path never changes *which* tasks are performed,
only the travel distance, so every improvement strictly increases
profit and frees budget.  :class:`GreedyTwoOptSelector` alternates

1. the paper's greedy construction,
2. 2-opt re-ordering of the selected path,
3. another greedy pass that tries to spend the freed budget on
   additional tasks,

until a fixed point.  The selector bench (``benchmarks/bench_selectors.py``)
quantifies how much of the greedy-to-DP profit gap this closes.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.selection.base import Selection, Selector
from repro.selection.greedy import GreedySelector
from repro.selection.problem import TaskSelectionProblem


def improve_order(problem: TaskSelectionProblem, order: Sequence[int]) -> List[int]:
    """2-opt improve an origin-anchored open path over candidate indices.

    Repeatedly reverses the sub-path ``order[i:j]`` whenever that shortens
    the total distance, until no reversal helps.  For an *open* path the
    distance delta of reversing ``[i, j)`` is::

        d(prev_i, node_{j-1}) + d(node_i, next_j) - d(prev_i, node_i) - d(node_{j-1}, next_j)

    where the segment after the path end contributes nothing.

    Returns a new order with distance <= the input order's distance.
    """
    order = list(order)
    if len(order) < 2:
        return order
    matrix = problem.distance_matrix

    def node(k: int) -> int:
        """Matrix index of the k-th path position (-1 means the origin)."""
        return 0 if k < 0 else order[k] + 1

    improved = True
    while improved:
        improved = False
        n = len(order)
        for i in range(n - 1):
            for j in range(i + 2, n + 1):
                # Reverse order[i:j]; positions i-1 and j are the fixed ends.
                before = float(matrix[node(i - 1), node(i)])
                after = float(matrix[node(i - 1), node(j - 1)])
                if j < n:
                    before += float(matrix[node(j - 1), node(j)])
                    after += float(matrix[node(i), node(j)])
                if after < before - 1e-12:
                    order[i:j] = reversed(order[i:j])
                    improved = True
    return order


class GreedyTwoOptSelector(Selector):
    """Greedy construction with 2-opt improvement and re-insertion passes.

    Args:
        max_rounds: safety bound on improve/extend alternations (each
            alternation strictly increases profit, so this rarely binds).
        min_step_profit: forwarded to the inner greedy.
    """

    name = "greedy-2opt"

    def __init__(self, max_rounds: int = 10, min_step_profit: float = 0.0):
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.max_rounds = max_rounds
        self._greedy = GreedySelector(min_step_profit=min_step_profit)
        self.min_step_profit = min_step_profit

    def select(self, problem: TaskSelectionProblem) -> Selection:
        selection = self._greedy.select(problem)
        if selection.is_empty:
            return selection
        id_to_index = {c.task_id: i for i, c in enumerate(problem.candidates)}
        order = [id_to_index[t] for t in selection.task_ids]

        for _ in range(self.max_rounds):
            order = improve_order(problem, order)
            extended = self._extend(problem, order)
            if extended == order:
                break
            order = extended
        return problem.evaluate(order)

    def _extend(self, problem: TaskSelectionProblem, order: List[int]) -> List[int]:
        """Greedy append pass from the end of the improved path."""
        matrix = problem.distance_matrix
        rewards = problem.rewards
        cost_rate = problem.cost_per_meter
        budget = problem.max_distance + 1e-9
        order = list(order)
        chosen = set(order)
        traveled = problem.path_distance(order)
        current = order[-1] + 1 if order else 0

        while True:
            best_idx = -1
            best_gain = self.min_step_profit
            row = matrix[current]
            for j in range(problem.size):
                if j in chosen:
                    continue
                leg = float(row[j + 1])
                if traveled + leg > budget:
                    continue
                gain = float(rewards[j]) - cost_rate * leg
                if gain > best_gain:
                    best_gain = gain
                    best_idx = j
            if best_idx < 0:
                return order
            order.append(best_idx)
            chosen.add(best_idx)
            traveled += float(matrix[current, best_idx + 1])
            current = best_idx + 1


def order_distance_gap(problem: TaskSelectionProblem, order: Sequence[int]) -> float:
    """Distance saved by 2-opt on ``order`` (diagnostic used in benches)."""
    original = problem.path_distance(order)
    improved = problem.path_distance(improve_order(problem, order))
    return original - improved
