"""Shared types for the task-selection solvers.

A solver consumes a :class:`~repro.selection.problem.TaskSelectionProblem`
and produces a :class:`Selection`: the ordered tasks to visit plus the
resulting distance/reward/cost accounting.  Solvers never touch world
objects directly — the engine translates tasks into plain
:class:`CandidateTask` records first, which keeps the solvers pure and
easy to test in isolation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple, TYPE_CHECKING

from repro.geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.selection.problem import TaskSelectionProblem


@dataclass(frozen=True)
class CandidateTask:
    """One selectable task as the solver sees it: id, location, price."""

    task_id: int
    location: Point
    reward: float

    def __post_init__(self) -> None:
        if self.reward < 0:
            raise ValueError(f"reward must be non-negative, got {self.reward}")


@dataclass(frozen=True)
class Selection:
    """The outcome of one user's task selection for one round.

    Args:
        task_ids: the selected task ids in *visit order*.
        distance: total travel distance of the origin-anchored path (m).
        reward: sum of the selected tasks' rewards ($).
        cost: movement cost ($) — ``distance * cost_per_meter``.
    """

    task_ids: Tuple[int, ...]
    distance: float
    reward: float
    cost: float

    def __post_init__(self) -> None:
        if self.distance < 0 or self.reward < 0 or self.cost < 0:
            raise ValueError(
                f"distance/reward/cost must be non-negative, got "
                f"{self.distance}/{self.reward}/{self.cost}"
            )
        if len(set(self.task_ids)) != len(self.task_ids):
            raise ValueError(f"duplicate task ids in selection: {self.task_ids}")

    @property
    def profit(self) -> float:
        """The user's profit :math:`P = \\sum r_t - C` (Eq. 1 objective)."""
        return self.reward - self.cost

    @property
    def is_empty(self) -> bool:
        return not self.task_ids

    def __len__(self) -> int:
        return len(self.task_ids)

    @classmethod
    def empty(cls) -> "Selection":
        """The sit-out selection: travel nothing, earn nothing.

        Returns a per-class singleton — the instance is frozen and the
        engine asks for it once per non-participating user per round,
        which at city scale is hundreds of thousands of constructions a
        round for a value that never varies.
        """
        cached = cls.__dict__.get("_EMPTY")
        if cached is None:
            cached = cls(task_ids=(), distance=0.0, reward=0.0, cost=0.0)
            cls._EMPTY = cached
        return cached


class Selector(abc.ABC):
    """A task-selection algorithm.

    Implementations must be deterministic functions of the problem: the
    engine relies on replayability for seeded experiments.
    """

    #: registry name, used in experiment rows and the CLI
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, problem: "TaskSelectionProblem") -> Selection:
        """Return the tasks to perform (possibly :meth:`Selection.empty`).

        Contract (checked by the property tests):
          - ``distance <= problem.max_distance`` (time-budget feasibility),
          - the reported distance/reward/cost match the returned order,
          - a rational user: ``profit > 0`` or the selection is empty.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
