"""Distributed task selection: Section V of the paper.

Each round, each user solves (Eq. 1)

.. math::
    \\max_{S} \\; \\sum_{t \\in S} r_t - C(S)
    \\quad \\text{s.t.} \\quad \\Gamma_S \\le B_u

where :math:`C(S)` is the movement cost of the shortest origin-anchored
path through the selected task locations and :math:`\\Gamma_S` the
corresponding travel time.  The problem is NP-hard (orienteering,
Theorem 1), so the package offers:

- :class:`~repro.selection.dp.DynamicProgrammingSelector` — exact bitmask
  DP over (subset, last-task) states (the paper's Eq. 11–12), explored
  label-setting style so subsets unreachable within the travel budget are
  never expanded, with each cardinality layer expanded as one batch of
  numpy arrays (the hot path of every simulated round).
- :class:`~repro.selection.reference_dp.ReferenceDPSelector` — the same
  recurrence as a pure-Python loop; the vectorized selector's
  equivalence oracle.
- :class:`~repro.selection.greedy.GreedySelector` — the paper's
  :math:`O(m^2)` marginal-profit greedy.
- :class:`~repro.selection.two_opt.GreedyTwoOptSelector` — extension:
  greedy + 2-opt path improvement + opportunistic re-insertion.
- :class:`~repro.selection.brute_force.BruteForceSelector` — exhaustive
  permutation search, the test oracle for small instances.
"""

from repro.selection.base import CandidateTask, Selection, Selector
from repro.selection.problem import TaskSelectionProblem
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.reference_dp import ReferenceDPSelector
from repro.selection.greedy import GreedySelector
from repro.selection.brute_force import BruteForceSelector
from repro.selection.branch_and_bound import BranchAndBoundSelector
from repro.selection.two_opt import GreedyTwoOptSelector, improve_order
from repro.selection.watchdog import TimeBoundedSelector
from repro.selection.registry import SELECTORS, SELECTOR_NAMES
from repro.selection.factory import make_selector

__all__ = [
    "CandidateTask",
    "Selection",
    "Selector",
    "TaskSelectionProblem",
    "DynamicProgrammingSelector",
    "ReferenceDPSelector",
    "GreedySelector",
    "BruteForceSelector",
    "BranchAndBoundSelector",
    "GreedyTwoOptSelector",
    "TimeBoundedSelector",
    "improve_order",
    "make_selector",
    "SELECTORS",
    "SELECTOR_NAMES",
]
