"""The paper's greedy task selection (Section V-B).

"We use the profit provided by the candidate tasks as a criteria, which
is calculated as the reward of the task minus the cost of the movement
from the current location to the location of the task.  Thus, each
mobile user will greedily select the task which can mostly increase the
total profit at each step within the traveling time/distance budget
until no satisfied task can be found."

Complexity is :math:`O(m^2)` (Theorem 3): at most m steps, each scanning
at most m candidates.
"""

from __future__ import annotations

from typing import List

from repro.selection.base import Selection, Selector
from repro.selection.problem import TaskSelectionProblem


class GreedySelector(Selector):
    """Marginal-profit greedy solver for Eq. 1.

    Args:
        min_step_profit: a step is "satisfying" only if it increases the
            total profit by more than this (the paper's rational user
            requires strictly positive marginal profit; 0 by default).
    """

    name = "greedy"

    def __init__(self, min_step_profit: float = 0.0):
        self.min_step_profit = min_step_profit

    def select(self, problem: TaskSelectionProblem) -> Selection:
        if problem.size == 0:
            return Selection.empty()
        matrix = problem.distance_matrix
        rewards = problem.rewards
        cost_rate = problem.cost_per_meter
        budget = problem.max_distance + 1e-9

        order: List[int] = []
        chosen = [False] * problem.size
        current = 0  # node index: 0 = origin, j+1 = candidate j
        traveled = 0.0

        while True:
            best_idx = -1
            best_gain = self.min_step_profit
            row = matrix[current]
            for j in range(problem.size):
                if chosen[j]:
                    continue
                leg = float(row[j + 1])
                if traveled + leg > budget:
                    continue
                gain = float(rewards[j]) - cost_rate * leg
                if gain > best_gain:
                    best_gain = gain
                    best_idx = j
            if best_idx < 0:
                break
            order.append(best_idx)
            chosen[best_idx] = True
            traveled += float(matrix[current, best_idx + 1])
            current = best_idx + 1

        if not order:
            return Selection.empty()
        return problem.evaluate(order)
