"""Selector registry: build a selector from its short name.

Mirrors :mod:`repro.core.mechanisms.factory`; the CLI and experiment
configs refer to selectors by these names.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.selection.base import Selector
from repro.selection.branch_and_bound import BranchAndBoundSelector
from repro.selection.brute_force import BruteForceSelector
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.greedy import GreedySelector
from repro.selection.reference_dp import ReferenceDPSelector
from repro.selection.two_opt import GreedyTwoOptSelector
from repro.selection.watchdog import TimeBoundedSelector

_REGISTRY: Dict[str, Type[Selector]] = {
    DynamicProgrammingSelector.name: DynamicProgrammingSelector,
    ReferenceDPSelector.name: ReferenceDPSelector,
    GreedySelector.name: GreedySelector,
    GreedyTwoOptSelector.name: GreedyTwoOptSelector,
    BruteForceSelector.name: BruteForceSelector,
    BranchAndBoundSelector.name: BranchAndBoundSelector,
    TimeBoundedSelector.name: TimeBoundedSelector,
}

#: Registered selector names in presentation order.
SELECTOR_NAMES = (
    "dp", "reference-dp", "branch-and-bound", "greedy", "greedy-2opt",
    "brute-force", "time-bounded",
)


def make_selector(name: str, **kwargs) -> Selector:
    """Instantiate a selector by registry name, forwarding keyword args.

    Raises:
        ValueError: for an unknown name (message lists the valid ones).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown selector {name!r}; valid: {valid}") from None
    return cls(**kwargs)
