"""Selector registry: build a selector from its short name.

Mirrors :mod:`repro.core.mechanisms.factory`; the CLI and experiment
configs refer to selectors by these names.  The blessed surface is the
:data:`SELECTORS` registry (``SELECTORS.create(name, **kwargs)`` /
``SELECTORS.available()``); :func:`make_selector` remains as a
deprecated shim with the old call signature.
"""

from __future__ import annotations

import warnings

from repro.registry import Registry
from repro.selection.base import Selector
from repro.selection.branch_and_bound import BranchAndBoundSelector
from repro.selection.brute_force import BruteForceSelector
from repro.selection.dp import DynamicProgrammingSelector
from repro.selection.greedy import GreedySelector
from repro.selection.reference_dp import ReferenceDPSelector
from repro.selection.two_opt import GreedyTwoOptSelector
from repro.selection.watchdog import TimeBoundedSelector

#: The task-selector registry (the blessed construction surface).
SELECTORS: Registry[Selector] = Registry("selector")
for _cls in (
    DynamicProgrammingSelector,
    ReferenceDPSelector,
    BranchAndBoundSelector,
    GreedySelector,
    GreedyTwoOptSelector,
    BruteForceSelector,
    TimeBoundedSelector,
):
    SELECTORS.register(_cls)

#: Registered selector names in presentation order.
SELECTOR_NAMES = SELECTORS.available()


def make_selector(name: str, **kwargs) -> Selector:
    """Deprecated alias for ``SELECTORS.create(name, **kwargs)``.

    Kept for one release so existing call sites keep working; new code
    should use :data:`SELECTORS` (or ``repro.api.create_selector``).

    Raises:
        ValueError: for an unknown name (message lists the valid ones).
    """
    warnings.warn(
        "make_selector() is deprecated; use SELECTORS.create(name, ...) "
        "from repro.selection.factory (or repro.api.create_selector)",
        DeprecationWarning,
        stacklevel=2,
    )
    return SELECTORS.create(name, **kwargs)
