"""Deprecated shim over :mod:`repro.selection.registry`.

The registry itself moved to :mod:`repro.selection.registry` (also
re-exported by :mod:`repro.selection`); this module stays importable
for one more release so old ``from repro.selection.factory import
SELECTORS`` call sites keep working, and :func:`make_selector` keeps
the legacy call signature behind a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.selection.base import Selector
from repro.selection.registry import SELECTOR_NAMES, SELECTORS

__all__ = ["SELECTORS", "SELECTOR_NAMES", "make_selector"]


def make_selector(name: str, **kwargs) -> Selector:
    """Deprecated alias for ``SELECTORS.create(name, **kwargs)``.

    Kept for one release so existing call sites keep working; new code
    should use :data:`SELECTORS` (or ``repro.api.create_selector``).

    Raises:
        ValueError: for an unknown name (message lists the valid ones).
    """
    warnings.warn(
        "make_selector() is deprecated; use SELECTORS.create(name, ...) "
        "from repro.selection (or repro.api.create_selector)",
        DeprecationWarning,
        stacklevel=2,
    )
    return SELECTORS.create(name, **kwargs)
