"""Exact dynamic-programming task selection (Section V-A of the paper).

The paper's recurrence (Eq. 12) fills the full ``2^m x (m+1)`` matrix
``dp[subset][last]`` = shortest origin-anchored path visiting ``subset``
and ending at ``last``.  We compute the same values but *label-setting*
style: states are expanded layer by layer (by subset cardinality) and a
state is expanded only if its path length is within the travel budget.
Any super-path of an infeasible path is infeasible (distances are
non-negative), so the pruning is lossless — with realistic budgets the
explored state count collapses from :math:`2^m` to the few thousand
subsets actually reachable.

Instance-size cap: the exact DP is still exponential in the worst case,
so instances with more than ``max_exact_tasks`` reachable candidates are
first restricted to the ``max_exact_tasks`` candidates with the highest
direct-profit potential (reward minus the cost of walking straight to
the task).  With the paper's Section VI constants the cap almost never
binds; tests cover both regimes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.selection.base import Selection, Selector
from repro.selection.problem import TaskSelectionProblem


class DynamicProgrammingSelector(Selector):
    """Optimal Eq. 1 solver via budget-pruned bitmask DP.

    Args:
        max_exact_tasks: largest candidate count solved exactly; bigger
            instances are restricted to that many highest-potential
            candidates first (see module docstring).
        min_profit: selections must beat this profit to be worth leaving
            home; the paper's rational user uses 0.
    """

    name = "dp"

    def __init__(self, max_exact_tasks: int = 18, min_profit: float = 0.0):
        if max_exact_tasks < 1:
            raise ValueError(f"max_exact_tasks must be >= 1, got {max_exact_tasks}")
        self.max_exact_tasks = max_exact_tasks
        self.min_profit = min_profit

    def select(self, problem: TaskSelectionProblem) -> Selection:
        if problem.size == 0:
            return Selection.empty()
        problem = self._capped(problem)
        order = self._best_order(problem)
        if order is None:
            return Selection.empty()
        return problem.evaluate(order)

    # -- candidate capping -------------------------------------------------

    def _capped(self, problem: TaskSelectionProblem) -> TaskSelectionProblem:
        if problem.size <= self.max_exact_tasks:
            return problem
        direct = problem.distance_matrix[0, 1:]
        potential = problem.rewards - problem.cost_per_meter * direct
        keep = np.argsort(-potential)[: self.max_exact_tasks]
        return problem.restricted_to([int(i) for i in keep])

    # -- the DP itself -----------------------------------------------------------

    def _best_order(self, problem: TaskSelectionProblem) -> Optional[List[int]]:
        """The profit-optimal feasible visit order, or None to sit out.

        States are ``(mask, last)`` with ``mask`` a bitmask over candidate
        indices and ``last`` the index of the final task on the path.
        ``dist[mask][last]`` is the shortest such path from the origin
        (the paper's ``dp[l][j]``); parents reconstruct the visit order.
        """
        m = problem.size
        matrix = problem.distance_matrix
        rewards = problem.rewards
        budget = problem.max_distance + 1e-9
        cost_rate = problem.cost_per_meter

        # dist[mask] is a list over last-index 0..m-1 (np.inf = unreachable).
        dist: Dict[int, List[float]] = {}
        parent: Dict[Tuple[int, int], Tuple[int, int]] = {}

        # Seed: single-task paths straight from the origin.
        frontier: List[int] = []
        for j in range(m):
            d0 = float(matrix[0, j + 1])
            if d0 <= budget:
                mask = 1 << j
                dist.setdefault(mask, [np.inf] * m)[j] = d0
                parent[(mask, j)] = (0, -1)
                if mask not in frontier:
                    frontier.append(mask)

        best_profit = self.min_profit
        best_state: Tuple[int, int] = (0, -1)
        reward_of_mask: Dict[int, float] = {0: 0.0}

        def mask_reward(mask: int) -> float:
            cached = reward_of_mask.get(mask)
            if cached is None:
                cached = float(
                    sum(rewards[j] for j in range(m) if mask & (1 << j))
                )
                reward_of_mask[mask] = cached
            return cached

        # Expand layer by layer (masks in a frontier all have equal popcount).
        while frontier:
            next_frontier: List[int] = []
            seen_next = set()
            for mask in frontier:
                dists = dist[mask]
                total_reward = mask_reward(mask)
                for last in range(m):
                    d = dists[last]
                    if not np.isfinite(d):
                        continue
                    profit = total_reward - cost_rate * d
                    if profit > best_profit:
                        best_profit = profit
                        best_state = (mask, last)
                    # Extend to every task not yet on the path.
                    row = matrix[last + 1]
                    for nxt in range(m):
                        bit = 1 << nxt
                        if mask & bit:
                            continue
                        nd = d + float(row[nxt + 1])
                        if nd > budget:
                            continue
                        nmask = mask | bit
                        slot = dist.get(nmask)
                        if slot is None:
                            slot = [np.inf] * m
                            dist[nmask] = slot
                        if nd < slot[nxt]:
                            slot[nxt] = nd
                            parent[(nmask, nxt)] = (mask, last)
                            if nmask not in seen_next:
                                seen_next.add(nmask)
                                next_frontier.append(nmask)
            frontier = next_frontier

        if best_state[0] == 0:
            return None
        return self._reconstruct(best_state, parent)

    @staticmethod
    def _reconstruct(
        state: Tuple[int, int], parent: Dict[Tuple[int, int], Tuple[int, int]]
    ) -> List[int]:
        order: List[int] = []
        mask, last = state
        while mask:
            order.append(last)
            mask, last = parent[(mask, last)]
        order.reverse()
        return order
