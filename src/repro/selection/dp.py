"""Exact dynamic-programming task selection (Section V-A of the paper).

The paper's recurrence (Eq. 12) fills the full ``2^m x (m+1)`` matrix
``dp[subset][last]`` = shortest origin-anchored path visiting ``subset``
and ending at ``last``.  We compute the same values *label-setting*
style — states are expanded layer by layer (by subset cardinality) and a
state is expanded only if its path length is within the travel budget;
any super-path of an infeasible path is infeasible (distances are
non-negative), so the pruning is lossless — and, since this is the
engine's hottest loop, each cardinality layer is expanded as one batch
of numpy arrays instead of per-state Python iteration:

- a layer is ``(masks, dist)`` with ``masks`` the sorted int64 bitmasks
  of that cardinality and ``dist`` the ``(n_masks, m)`` matrix of
  shortest path lengths per last-task (``inf`` = state unreachable);
- extension is a batched min-plus product of ``dist`` with the
  task-to-task distance matrix (one broadcasted ``minimum`` per last
  index), masked by membership and budget;
- mask rewards are propagated incrementally (child mask reward = parent
  mask reward + the extending task's reward), so no popcounts and no
  per-mask bit loops ever run.

A pure-Python formulation of the same recurrence is preserved as
:class:`~repro.selection.reference_dp.ReferenceDPSelector` and the
property tests hold the two (and the brute-force oracle) to identical
profits on randomized instances.

Instance-size cap: the exact DP is still exponential in the worst case,
so instances with more than ``max_exact_tasks`` reachable candidates are
first restricted to the ``max_exact_tasks`` candidates with the highest
direct-profit potential (reward minus the cost of walking straight to
the task).  With the paper's Section VI constants the cap almost never
binds; tests cover both regimes.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.selection.base import Selection, Selector
from repro.selection.problem import TaskSelectionProblem


class DynamicProgrammingSelector(Selector):
    """Optimal Eq. 1 solver via budget-pruned, layer-vectorized bitmask DP.

    Args:
        max_exact_tasks: largest candidate count solved exactly; bigger
            instances are restricted to that many highest-potential
            candidates first (see module docstring).
        min_profit: selections must beat this profit to be worth leaving
            home; the paper's rational user uses 0.

    Attributes:
        total_states_expanded: finite ``(mask, last)`` states scored over
            the selector's lifetime (the DP work metric surfaced in
            :class:`~repro.simulation.perf.PerfStats`).
    """

    name = "dp"

    def __init__(self, max_exact_tasks: int = 18, min_profit: float = 0.0):
        if max_exact_tasks < 1:
            raise ValueError(f"max_exact_tasks must be >= 1, got {max_exact_tasks}")
        self.max_exact_tasks = max_exact_tasks
        self.min_profit = min_profit
        self.total_states_expanded = 0
        self._states_since_drain = 0

    def select(self, problem: TaskSelectionProblem) -> Selection:
        if problem.size == 0:
            return Selection.empty()
        problem = self._capped(problem)
        order = self._best_order(problem)
        if order is None:
            return Selection.empty()
        return problem.evaluate(order)

    # -- observability -----------------------------------------------------

    def consume_states_expanded(self) -> int:
        """States expanded since the last call (drained by the engine
        into each round's :class:`~repro.simulation.perf.PerfStats`)."""
        count = self._states_since_drain
        self._states_since_drain = 0
        return count

    def _count_states(self, count: int) -> None:
        self.total_states_expanded += count
        self._states_since_drain += count

    # -- candidate capping -------------------------------------------------

    def _capped(self, problem: TaskSelectionProblem) -> TaskSelectionProblem:
        if problem.size <= self.max_exact_tasks:
            return problem
        direct = problem.distance_matrix[0, 1:]
        potential = problem.rewards - problem.cost_per_meter * direct
        keep = np.argsort(-potential)[: self.max_exact_tasks]
        return problem.restricted_to([int(i) for i in keep])

    # -- the DP itself -----------------------------------------------------------

    def _best_order(self, problem: TaskSelectionProblem) -> Optional[List[int]]:
        """The profit-optimal feasible visit order, or None to sit out.

        States are ``(mask, last)``; ``dist[row(mask), last]`` is the
        shortest origin-anchored path visiting exactly ``mask`` and
        ending at ``last`` (the paper's ``dp[l][j]``).  Because the
        parent subset of ``(mask, last)`` is uniquely ``mask`` without
        ``last``'s bit, extending a whole layer never needs a
        min-reduction across parent masks — one scatter per layer builds
        the next one.
        """
        m = problem.size
        matrix = np.asarray(problem.distance_matrix, dtype=float)
        rewards = np.asarray(problem.rewards, dtype=float)
        budget = problem.max_distance + 1e-9
        cost_rate = problem.cost_per_meter

        task_matrix = np.ascontiguousarray(matrix[1:, 1:])  # (m, m)
        bits = np.left_shift(np.int64(1), np.arange(m, dtype=np.int64))

        # Seed layer: single-task paths straight from the origin.  Each
        # state is scored as it is created, so no layer is ever re-scanned.
        direct = matrix[0, 1:]
        seed = np.nonzero(direct <= budget)[0]
        if seed.size == 0:
            return None
        masks = bits[seed]  # ascending, since bit index grows
        dist = np.full((seed.size, m), np.inf)
        dist[np.arange(seed.size), seed] = direct[seed]
        mask_rewards = rewards[seed].copy()
        self._count_states(int(seed.size))

        layers = [(masks, dist)]
        best_profit = self.min_profit
        best = None  # (layer index, mask, last)

        seed_profits = mask_rewards - cost_rate * direct[seed]
        top = int(np.argmax(seed_profits))
        if seed_profits[top] > best_profit:
            best_profit = float(seed_profits[top])
            best = (0, int(masks[top]), int(seed[top]))

        # Chunk the (rows, m, m) min-plus temporary to ~16 MB so dense
        # layers with tens of thousands of masks stay memory-bounded.
        chunk = max(1, 2_000_000 // (m * m))

        for depth in range(1, m):
            # Batched extension: ext[s, nxt] = min over last of
            # dist[s, last] + d(last, nxt) — one broadcasted min-plus
            # product per chunk of parent states.
            rows = masks.size
            ext = np.empty((rows, m))
            for start in range(0, rows, chunk):
                block = dist[start : start + chunk]
                ext[start : start + chunk] = (
                    block[:, :, None] + task_matrix[None, :, :]
                ).min(axis=1)

            # Keep extensions within budget that do not revisit a task
            # (<= budget also rejects inf, i.e. unreachable parents).
            valid = ext <= budget
            valid &= (masks[:, None] & bits[None, :]) == 0
            src, nxt = np.nonzero(valid)
            if src.size == 0:
                break
            ext_vals = ext[src, nxt]
            # Incremental reward propagation: child mask reward = parent
            # mask reward + the extending task's reward — no popcounts.
            state_rewards = mask_rewards[src] + rewards[nxt]
            self._count_states(int(src.size))

            profits = state_rewards - cost_rate * ext_vals
            top = int(np.argmax(profits))
            if profits[top] > best_profit:
                best_profit = float(profits[top])
                best = (depth, int(masks[src[top]] | bits[nxt[top]]), int(nxt[top]))

            # The parent of (nmask, nxt) is uniquely (nmask & ~bit(nxt)),
            # so each (nmask, nxt) pair appears exactly once: scattering
            # into the next layer's dist needs no duplicate resolution.
            unique_masks, inverse = np.unique(
                masks[src] | bits[nxt], return_inverse=True
            )
            next_dist = np.full((unique_masks.size, m), np.inf)
            next_dist[inverse, nxt] = ext_vals
            next_rewards = np.empty(unique_masks.size)
            next_rewards[inverse] = state_rewards

            masks, dist, mask_rewards = unique_masks, next_dist, next_rewards
            layers.append((masks, dist))

        if best is None:
            return None
        return self._reconstruct(best, layers, task_matrix)

    @staticmethod
    def _reconstruct(best, layers, task_matrix) -> List[int]:
        """Walk parents from the best state back to the origin.

        No parent pointers are stored: at layer L the parent of
        ``(mask, last)`` is ``(mask without last, plast)`` for the
        ``plast`` minimizing ``dist[parent, plast] + d(plast, last)`` —
        the same expression the forward pass minimized, so the argmin
        recovers a shortest path exactly.
        """
        depth, mask, last = best
        order = [last]
        for layer in range(depth, 0, -1):
            parent_masks, parent_dist = layers[layer - 1]
            mask = mask & ~(1 << last)
            row = int(np.searchsorted(parent_masks, mask))
            plast = int(np.argmin(parent_dist[row] + task_matrix[:, last]))
            order.append(plast)
            last = plast
        order.reverse()
        return order
