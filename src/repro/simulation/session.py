"""Stepwise simulation sessions: drive the round kernel interactively.

:func:`repro.api.simulate` plays a run to completion; a
:class:`SimulationSession` opens the *same* engine and hands control of
the round loop to the caller::

    with open_session(scenario="paper-2018") as session:
        while not session.finished:
            obs = session.observe()          # read-only round snapshot
            session.step()                   # play exactly one round
        result = session.result()

Stepping with no actions replays :meth:`SimulationEngine.run_rounds`
verbatim — the histories are bit-identical to ``simulate()`` (the
session tests pin this at :class:`RoundRecord` level across the scalar,
batched, and sharded engines).  Passing an *incentive action* to
:meth:`SimulationSession.step` mutates the mechanism's knobs (AHP
weights, the Eq. 7 ladder step :math:`\\lambda`, the level partition)
before the round is priced, which is the substrate the
:mod:`repro.envs` Gymnasium-style environment trains policies on.

The session is a thin orchestration shell: all simulation state lives in
the engine; the session adds the action boundary, read-only
observations, and lifecycle (``close()`` releases sharded engines'
shared memory and is safe to call mid-run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.mechanisms.policy import IncentiveAction, apply_incentive_action
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import RoundObserver, make_engine
from repro.simulation.events import RoundRecord, SimulationResult


@dataclass(frozen=True)
class TaskSnapshot:
    """One task's public state at an observation boundary."""

    task_id: int
    deadline: int
    received: int
    required: int

    @property
    def progress(self) -> float:
        return min(1.0, self.received / self.required)


@dataclass(frozen=True)
class SessionObservation:
    """Read-only snapshot of the world between rounds.

    Everything a pricing policy may legitimately condition on — the
    platform's own view (Fig. 1): budget state, task progress, the
    prices and demand factors the mechanism *would* publish next round.
    Building one never advances the simulation and never consumes
    randomness; observing twice returns equal snapshots.
    """

    round_no: int
    rounds_total: int
    finished: bool
    n_users: int
    n_active_tasks: int
    n_published_tasks: int
    budget: float
    total_paid: float
    completeness: float
    published_rewards: Dict[int, float]
    demands: Dict[int, float]
    tasks: Tuple[TaskSnapshot, ...]

    @property
    def budget_remaining(self) -> float:
        return self.budget - self.total_paid


class SimulationSession:
    """An open, steppable simulation over any of the repro engines.

    Args:
        config: the full parameterisation (engine choice included).
        workers: shard count for the batched engine (forwarded to
            :func:`~repro.simulation.engine.make_engine`).
        observers: round observers, exactly as :class:`SimulationEngine`
            takes them (e.g. the events-JSONL
            :class:`~repro.io.events.RoundStreamWriter`).
        tracer: optional span tracer, forwarded to the engine.
        cancel: optional cancellation token, forwarded to the engine.

    The session owns its engine: :meth:`close` tears it down (releasing
    shared-memory shards for ``workers>=2`` engines) and is idempotent;
    the class is also a context manager.
    """

    def __init__(
        self,
        config: SimulationConfig,
        *,
        workers: Optional[int] = None,
        observers: Sequence[RoundObserver] = (),
        tracer=None,
        cancel=None,
    ):
        kwargs = {"observers": observers}
        if workers is not None:
            kwargs["workers"] = workers
        if tracer is not None:
            kwargs["tracer"] = tracer
        if cancel is not None:
            kwargs["cancel"] = cancel
        self.engine = make_engine(config, **kwargs)
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def config(self) -> SimulationConfig:
        return self.engine.config

    @property
    def finished(self) -> bool:
        """Whether the underlying simulation has no rounds left."""
        return self.engine.finished

    @property
    def current_round(self) -> int:
        """The 1-based round :meth:`step` would play next."""
        return self.engine.current_round

    def close(self) -> None:
        """Release engine resources (idempotent, safe mid-run).

        For sharded engines this unlinks the shared-memory blocks and
        joins the worker processes; stepping afterwards raises.
        """
        if self._closed:
            return
        self._closed = True
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "SimulationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- observe / step / result ----------------------------------------

    def observe(self) -> SessionObservation:
        """Snapshot the world as the next round's pricing would see it.

        Pure read: repeated calls return equal snapshots (the price map
        comes from the engine's per-round cache, so observing is not a
        second mechanism evaluation).  On a finished session the price
        and demand maps are empty — there is no next round to price.
        """
        self._require_open()
        engine = self.engine
        world = engine.world
        if engine.finished:
            prices: Dict[int, float] = {}
            demands: Dict[int, float] = {}
        else:
            prices = engine.published_rewards()
            raw = getattr(engine.mechanism, "last_demands", None)
            demands = dict(raw) if raw else {}
        tasks = world.tasks
        completeness = (
            sum(t.progress for t in tasks) / len(tasks) if tasks else 1.0
        )
        return SessionObservation(
            round_no=engine.current_round,
            rounds_total=engine.config.rounds,
            finished=engine.finished,
            n_users=len(world.users),
            n_active_tasks=len(engine.active_tasks()),
            n_published_tasks=len(engine.published_tasks()),
            budget=engine.config.budget,
            total_paid=engine._cumulative_paid,
            completeness=completeness,
            published_rewards=prices,
            demands=demands,
            tasks=tuple(
                TaskSnapshot(
                    task_id=t.task_id,
                    deadline=t.deadline,
                    received=t.received,
                    required=t.required_measurements,
                )
                for t in tasks
            ),
        )

    def step(self, action: IncentiveAction = None) -> RoundRecord:
        """Play exactly one round, optionally retuning the mechanism first.

        Args:
            action: an incentive action mapping (see
                :func:`~repro.core.mechanisms.policy.apply_incentive_action`)
                applied to the engine's mechanism *before* the round is
                priced, or None for a plain kernel step.  ``step(None)``
                in a loop is bit-identical to ``simulate()``.

        Returns:
            the finished round's :class:`RoundRecord`.

        Raises:
            RuntimeError: if the session is closed or already finished.
            ValueError: for a malformed action (nothing is stepped).
        """
        self._require_open()
        engine = self.engine
        if action:
            engine._ensure_mechanism()
            applied = apply_incentive_action(engine.mechanism, action)
            if applied:
                # observe() may already have priced the upcoming round;
                # the retuned mechanism must reprice it.
                engine._price_cache = None
                engine._problems_cache = None
        return engine.step()

    def run(
        self, actions: Optional[Iterable[IncentiveAction]] = None
    ) -> SimulationResult:
        """Play every remaining round.

        With ``actions=None`` this delegates straight to the engine's
        run-to-completion shell (tracer span and all) — exactly what
        ``simulate()`` does.  With an action iterable, each remaining
        round consumes one action (``None`` entries step plainly); the
        iterable may end early, after which rounds step unactioned.
        """
        self._require_open()
        if actions is None:
            return self.engine.run()
        iterator = iter(actions)
        while not self.finished:
            self.engine.cancel.raise_if_cancelled()
            self.step(next(iterator, None))
        return self.engine.result

    def result(self) -> SimulationResult:
        """The accumulated result (valid mid-run: rounds played so far)."""
        return self.engine.result


def open_session(
    config: SimulationConfig,
    *,
    workers: Optional[int] = None,
    observers: Sequence[RoundObserver] = (),
    tracer=None,
    cancel=None,
) -> SimulationSession:
    """Open a stepwise session over ``config``'s engine.

    The session-level counterpart of
    :func:`~repro.simulation.engine.simulate`: same engine dispatch,
    same observers, but the caller drives the round loop.  See
    :class:`SimulationSession`.
    """
    return SimulationSession(
        config,
        workers=workers,
        observers=observers,
        tracer=tracer,
        cancel=cancel,
    )
