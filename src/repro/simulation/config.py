"""The full parameterisation of one simulation run.

Defaults reproduce the paper's Section VI setup exactly where the paper
states a value, and DESIGN.md §3 documents the choices where it does not
(per-user time budget, neighbour radius, mobility, steered scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.dynamics.processes import DynamicsSpec
from repro.geometry.region import RectRegion
from repro.resilience.errors import ConfigError
from repro.world.generator import WorldGenerator


@dataclass(frozen=True)
class SimulationConfig:
    """Every knob of one simulation run.

    Args:
        n_users: number of mobile users (the paper sweeps 40–140).
        n_tasks: number of sensing tasks m (paper: 20).
        area_side: side of the square deployment area in meters (paper: 3000).
        required_measurements: measurements per task :math:`\\varphi` (paper: 20).
        deadline_range: inclusive deadline range in rounds (paper: [5, 15]).
        rounds: the simulated horizon in rounds (paper plots up to 15).
        budget: platform reward budget B in $ (paper: 1000).
        reward_step: the per-level increment :math:`\\lambda` in $ (paper: 0.5).
        level_count: number of demand levels N (paper: 5).
        neighbour_radius: the R of the X3 factor in meters (DESIGN.md §3).
        user_speed: walking speed in m/s (paper: 2).
        cost_per_meter: movement cost in $/m (paper: 0.002).
        user_time_budget: per-round time budget in seconds (DESIGN.md §3).
        heterogeneity: relative spread of per-user speed/cost/time budget
            (0 = the paper's identical users; see
            :class:`~repro.world.generator.WorldGenerator`).
        release_range: inclusive range of task release rounds ((1, 1) =
            the paper's everything-at-round-1; wider ranges stagger task
            arrivals, see :class:`~repro.world.generator.WorldGenerator`).
        participation_rate: probability that a given user is available in
            a given round (1.0 = the paper's always-available crowd).
            Unavailable users neither select nor perform tasks that round
            but still count as potential neighbours for the X3 factor —
            the platform sees phones, not intentions.
        mechanism: incentive mechanism registry name.
        mechanism_kwargs: extra constructor arguments for the mechanism.
        selector: task-selection registry name ("dp" or "greedy" in the paper).
        selector_kwargs: extra constructor arguments for the selector.
        mobility: mobility policy registry name.
        layout: world layout, "uniform" (paper) or "clustered".
        engine: simulation engine variant — "scalar" (the reference
            per-user loop) or "batched" (vectorized demand/pricing and
            batched mobility for large worlds; bit-identical results).
        distance_dtype: precision of the batched engine's chunked
            distance pipeline — "float64" (default, bit-identical to the
            scalar engine) or "float32" (half the memory traffic at
            city scale; reachability decisions within the float32 error
            band are re-decided in float64 so candidate sets never flip
            on precision).  "float32" requires ``engine="batched"``.
        arrival: task arrival stream — "static" (all releases drawn from
            ``release_range``, the paper's setup), "poisson" (release
            rounds from a truncated Poisson process across the horizon)
            or "burst" (a background trickle plus one release spike).
        arrival_kwargs: knobs of the arrival stream (e.g. ``rate`` for
            "poisson"; ``round``/``fraction`` for "burst"); see
            :mod:`repro.world.arrivals`.
        population: optional tuple of population-group specs (mappings)
            describing a heterogeneous crowd: each group names a
            ``fraction`` of the users, a ``mobility`` policy, and
            optional ``speed`` / ``time_budget`` / ``cost_per_meter``
            values or ``[low, high]`` uniform ranges.  Empty (default)
            keeps the paper's homogeneous population; see
            :mod:`repro.world.population`.
        dynamics: open-world knobs (see :class:`~repro.dynamics.
            processes.DynamicsSpec`): ``user_arrival_rate`` /
            ``user_departure_rate`` (Poisson churn),
            ``task_arrival_rate`` / ``task_deadline_range`` (mid-run
            task publication), ``deadline_renewal_prob`` /
            ``max_deadline_renewals`` (deadline extension lotteries).
            The empty mapping (default) is the closed world and is
            bit-identical to runs predating this field — no extra
            randomness is consumed.
        completeness_basis: which tasks count in the completeness
            denominator — ``"all"`` (default: every task, the paper's
            Fig. 7 definition) or ``"exclude-expired"`` (tasks that
            expired unmet are dropped from the denominator, the
            open-world convention where renewable deadlines make
            expiry a scheduling outcome rather than a failure).
        stream_rounds: when True the engine does not retain per-round
            records in :class:`SimulationResult` (observers still see
            every record as it finishes, so a JSONL stream writer keeps
            the full history on disk); totals and summary metrics stay
            available.  Bounds memory on 50k-user runs.
        seed: root seed for all random streams.
        selector_timeout: optional wall-clock deadline (seconds) on every
            ``Selector.select`` call.  When set, the engine wraps the
            configured selector in a
            :class:`~repro.selection.watchdog.TimeBoundedSelector` that
            degrades to the greedy solver on breach and records the
            degradation count in each round record.  None (the default)
            runs the selector unguarded, exactly as before.
    """

    n_users: int = 100
    n_tasks: int = 20
    area_side: float = 3000.0
    required_measurements: int = 20
    deadline_range: Tuple[int, int] = (5, 15)
    rounds: int = 15
    budget: float = 1000.0
    reward_step: float = 0.5
    level_count: int = 5
    neighbour_radius: float = 500.0
    user_speed: float = 2.0
    cost_per_meter: float = 0.002
    user_time_budget: float = 900.0
    heterogeneity: float = 0.0
    release_range: Tuple[int, int] = (1, 1)
    participation_rate: float = 1.0
    mechanism: str = "on-demand"
    mechanism_kwargs: Dict[str, Any] = field(default_factory=dict)
    selector: str = "dp"
    selector_kwargs: Dict[str, Any] = field(default_factory=dict)
    mobility: str = "follow-path"
    layout: str = "uniform"
    engine: str = "scalar"
    distance_dtype: str = "float64"
    arrival: str = "static"
    arrival_kwargs: Dict[str, Any] = field(default_factory=dict)
    population: Tuple[Dict[str, Any], ...] = ()
    dynamics: Dict[str, Any] = field(default_factory=dict)
    completeness_basis: str = "all"
    stream_rounds: bool = False
    seed: int = 0
    selector_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        """Eager validation: every nonsensical knob dies here, at
        construction, with a :class:`ConfigError` naming the field and
        the accepted range — never ten frames deep in the engine."""
        if self.n_users < 1:
            raise ConfigError(
                f"n_users must be >= 1, got {self.n_users} "
                f"(a crowdsensing system needs a crowd)"
            )
        if self.n_tasks < 1:
            raise ConfigError(
                f"n_tasks must be >= 1, got {self.n_tasks} "
                f"(nothing to sense, nothing to simulate)"
            )
        if self.rounds < 1:
            raise ConfigError(f"rounds must be >= 1, got {self.rounds}")
        if self.area_side <= 0:
            raise ConfigError(f"area_side must be positive, got {self.area_side}")
        if self.required_measurements < 1:
            raise ConfigError(
                f"required_measurements must be >= 1, "
                f"got {self.required_measurements}"
            )
        if self.budget <= 0:
            raise ConfigError(
                f"budget must be positive, got {self.budget} "
                f"(the platform cannot pay rewards from an empty purse)"
            )
        if self.reward_step <= 0:
            raise ConfigError(
                f"reward_step must be positive, got {self.reward_step}"
            )
        if self.level_count < 1:
            raise ConfigError(f"level_count must be >= 1, got {self.level_count}")
        if self.neighbour_radius <= 0:
            raise ConfigError(
                f"neighbour_radius must be positive, got {self.neighbour_radius}"
            )
        if self.user_speed <= 0:
            raise ConfigError(f"user_speed must be positive, got {self.user_speed}")
        if self.cost_per_meter < 0:
            raise ConfigError(
                f"cost_per_meter must be non-negative, got {self.cost_per_meter}"
            )
        if self.user_time_budget <= 0:
            raise ConfigError(
                f"user_time_budget must be positive, got {self.user_time_budget}"
            )
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ConfigError(
                f"heterogeneity must be in [0, 1), got {self.heterogeneity}"
            )
        if not 0.0 < self.participation_rate <= 1.0:
            raise ConfigError(
                f"participation_rate must be in (0, 1], got "
                f"{self.participation_rate} (0 would mean nobody ever works; "
                f"lower it only as far as your smallest viable crowd)"
            )
        if self.layout not in ("uniform", "clustered"):
            raise ConfigError(
                f"layout must be 'uniform' or 'clustered', got {self.layout!r}"
            )
        if self.engine not in ("scalar", "batched"):
            raise ConfigError(
                f"engine must be 'scalar' or 'batched', got {self.engine!r}"
            )
        if self.distance_dtype not in ("float64", "float32"):
            raise ConfigError(
                f"distance_dtype must be 'float64' or 'float32', "
                f"got {self.distance_dtype!r}"
            )
        if self.distance_dtype == "float32" and self.engine != "batched":
            raise ConfigError(
                "distance_dtype='float32' requires engine='batched' (the "
                "scalar reference engine always computes in float64; a "
                "silently ignored dtype would make runs incomparable)"
            )
        if self.arrival not in ("static", "poisson", "burst"):
            raise ConfigError(
                f"arrival must be 'static', 'poisson' or 'burst', "
                f"got {self.arrival!r}"
            )
        for group in self.population:
            if not isinstance(group, dict) or "name" not in group:
                raise ConfigError(
                    f"each population group must be a mapping with a 'name', "
                    f"got {group!r}"
                )
        low, high = self.deadline_range
        if low < 1 or high < low:
            raise ConfigError(
                f"bad deadline_range {self.deadline_range}: need "
                f"1 <= low <= high (rounds are 1-based; an inverted range "
                f"usually means the tuple is backwards)"
            )
        release_low, release_high = self.release_range
        if release_low < 1 or release_high < release_low:
            raise ConfigError(
                f"bad release_range {self.release_range}: need "
                f"1 <= low <= high"
            )
        if self.dynamics:
            # Eager, named validation of the open-world knobs (raises
            # ConfigError for unknown keys / out-of-range rates).
            DynamicsSpec.from_mapping(self.dynamics)
        if self.completeness_basis not in ("all", "exclude-expired"):
            raise ConfigError(
                f"completeness_basis must be 'all' or 'exclude-expired', "
                f"got {self.completeness_basis!r}"
            )
        if self.selector_timeout is not None and self.selector_timeout <= 0:
            raise ConfigError(
                f"selector_timeout must be positive seconds (or None to "
                f"disable the watchdog), got {self.selector_timeout}"
            )

    # -- derived helpers ---------------------------------------------------

    @property
    def region(self) -> RectRegion:
        return RectRegion.square(self.area_side)

    @property
    def total_required_measurements(self) -> int:
        """:math:`\\sum_i \\varphi_i` for the Eq. 9 base-reward derivation."""
        return self.n_tasks * self.required_measurements

    def world_generator(self) -> WorldGenerator:
        """The :class:`WorldGenerator` implied by this config."""
        return WorldGenerator(
            region=self.region,
            n_tasks=self.n_tasks,
            n_users=self.n_users,
            required_measurements=self.required_measurements,
            deadline_range=self.deadline_range,
            user_speed=self.user_speed,
            user_cost_per_meter=self.cost_per_meter,
            user_time_budget=self.user_time_budget,
            heterogeneity=self.heterogeneity,
            release_range=self.release_range,
            arrival=self.arrival,
            arrival_kwargs=dict(self.arrival_kwargs),
            horizon=self.rounds,
            population=tuple(self.population),
        )

    def with_overrides(self, **changes: Any) -> "SimulationConfig":
        """A copy of this config with fields replaced (sweep helper).

        Raises:
            ValueError: when a key does not name a config field — a typo
                in a sweep would otherwise be silently absorbed into a
                confusing ``dataclasses.replace`` traceback.
        """
        valid = {f.name for f in fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise ValueError(
                f"unknown SimulationConfig field(s) {', '.join(map(repr, unknown))}; "
                f"valid fields: {', '.join(sorted(valid))}"
            )
        return replace(self, **changes)

    def mechanism_arguments(self) -> Dict[str, Any]:
        """Constructor kwargs for the configured mechanism.

        Demand-driven mechanisms receive the budget/step/level/radius
        knobs from the config; the steered baseline takes none of those,
        so only explicit ``mechanism_kwargs`` reach it.
        """
        demand_driven = (
            "on-demand",
            "fixed",
            "proportional",
            "adaptive",
            "omg-online",
            "incentme",
            "policy",
        )
        if self.mechanism in demand_driven:
            from repro.core.levels import DemandLevels

            base: Dict[str, Any] = {
                "budget": self.budget,
                "step": self.reward_step,
                "levels": DemandLevels(self.level_count),
            }
            if self.mechanism in (
                "on-demand", "proportional", "adaptive", "incentme", "policy"
            ):
                base["neighbour_radius"] = self.neighbour_radius
            if self.mechanism == "omg-online":
                base["horizon"] = self.rounds
        else:
            base = {}
        base.update(self.mechanism_kwargs)
        return base
