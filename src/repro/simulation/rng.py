"""Named random streams with reproducible seeding.

Every source of randomness in a simulation gets its own named
:class:`numpy.random.Generator`, all derived from one root seed via
:class:`numpy.random.SeedSequence`.  This guarantees:

- the same root seed always reproduces the same simulation, and
- changing how one component consumes randomness (e.g. the mobility
  policy draws an extra waypoint) cannot perturb any other component.

Experiment repetitions use :func:`child_seed` so repetition i of
experiment "fig6a" is deterministic given the experiment's base seed,
independent of how many repetitions run or in what order.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

#: The streams a simulation consumes, in spawn order (order is part of
#: the reproducibility contract — do not reorder; appending is safe
#: because SeedSequence children are derived by index).
STREAM_NAMES = (
    "world",
    "mechanism",
    "arrival",
    "mobility",
    "participation",
    "dynamics",
)


def spawn_streams(
    seed: int, names: Sequence[str] = STREAM_NAMES
) -> Dict[str, np.random.Generator]:
    """Spawn one independent generator per name from a root seed.

    Raises:
        ValueError: for duplicate stream names.
    """
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate stream names: {names}")
    root = np.random.SeedSequence(seed)
    children = root.spawn(len(names))
    return {
        name: np.random.Generator(np.random.PCG64(child))
        for name, child in zip(names, children)
    }


def child_seed(base_seed: int, index: int) -> int:
    """A stable derived seed for repetition ``index`` of an experiment.

    Uses SeedSequence's entropy mixing rather than ad-hoc arithmetic so
    nearby (base, index) pairs do not produce correlated streams.

    Raises:
        ValueError: for a negative repetition index.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    mixed = np.random.SeedSequence([base_seed, index]).generate_state(1)[0]
    return int(mixed)
