"""Lightweight performance counters for the round loop.

One :class:`PerfStats` is attached to every
:class:`~repro.simulation.events.RoundRecord` (field ``perf``) so a run
carries its own execution profile: how much shared per-round work the
problem cache saved, how many DP states the selector expanded, and how
much wall time selection cost.  The counters are observability, not
physics — they never influence the simulation, and serializers may drop
them (old event logs load with ``perf=None``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional


@dataclass
class PerfStats:
    """Execution counters for one round (or, merged, for a whole run).

    Args:
        problem_cache_hits: per-user Eq. 1 instances served by slicing
            the shared per-round matrices (reward vector, task-to-task
            distance block) instead of rebuilding them from geometry.
        problem_cache_misses: shared per-round constructions performed
            (one per round in the WST mode; 0 when a coordinator runs).
        price_cache_hits: repeated price-map requests for the same round
            answered from the engine's cache instead of re-running the
            mechanism (and its grid-index neighbour counting).
        dp_states_expanded: ``(mask, last)`` DP states scored by the
            exact selector this round (0 for non-DP selectors).
        selector_calls: ``Selector.select`` invocations this round.
        selector_wall_time: wall-clock seconds spent inside
            ``Selector.select`` this round.
    """

    problem_cache_hits: int = 0
    problem_cache_misses: int = 0
    price_cache_hits: int = 0
    dp_states_expanded: int = 0
    selector_calls: int = 0
    selector_wall_time: float = 0.0

    def add(self, other: "PerfStats") -> "PerfStats":
        """Accumulate ``other`` into this instance (returns self)."""
        self.problem_cache_hits += other.problem_cache_hits
        self.problem_cache_misses += other.problem_cache_misses
        self.price_cache_hits += other.price_cache_hits
        self.dp_states_expanded += other.dp_states_expanded
        self.selector_calls += other.selector_calls
        self.selector_wall_time += other.selector_wall_time
        return self

    @classmethod
    def merged(cls, parts: Iterable[Optional["PerfStats"]]) -> "PerfStats":
        """Sum of all non-None stats (e.g. over a run's rounds)."""
        total = cls()
        for part in parts:
            if part is not None:
                total.add(part)
        return total

    @property
    def cache_hit_rate(self) -> float:
        """Problem-cache hits / (hits + misses), 0.0 when idle."""
        attempts = self.problem_cache_hits + self.problem_cache_misses
        return self.problem_cache_hits / attempts if attempts else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping (used by the event-log serializer)."""
        return {
            "problem_cache_hits": self.problem_cache_hits,
            "problem_cache_misses": self.problem_cache_misses,
            "price_cache_hits": self.price_cache_hits,
            "dp_states_expanded": self.dp_states_expanded,
            "selector_calls": self.selector_calls,
            "selector_wall_time": self.selector_wall_time,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PerfStats":
        """Inverse of :meth:`as_dict`; unknown keys are ignored."""
        return cls(
            problem_cache_hits=int(payload.get("problem_cache_hits", 0)),
            problem_cache_misses=int(payload.get("problem_cache_misses", 0)),
            price_cache_hits=int(payload.get("price_cache_hits", 0)),
            dp_states_expanded=int(payload.get("dp_states_expanded", 0)),
            selector_calls=int(payload.get("selector_calls", 0)),
            selector_wall_time=float(payload.get("selector_wall_time", 0.0)),
        )
