"""The sharded select phase: fan one round's Eq. 1 solves across processes.

At city scale the select phase dominates the round: every participant
solves an independent :class:`TaskSelectionProblem`, and independence is
exactly what makes the phase shardable.  The pool partitions the round's
participants into contiguous shards, ships each shard to a worker
process, and merges the per-user :class:`Selection` objects back in
world order.  Because each user's selection depends only on that user's
position/budget and the shared round state — never on another user's
selection — the merged sequence is **bit-identical to the single-process
batched path at every worker count** (pinned by the determinism tests).

Data movement is kept off the per-round path:

- the *static* world state — user budgets/costs/ids, task locations/ids,
  and the all-tasks distance matrix — is written once into
  ``multiprocessing.shared_memory`` blocks at pool construction,
- user *positions* live in a shared block too: the engine's persistent
  position array is re-bound onto it, so the parent's in-place move
  updates are visible to workers with zero copying,
- only the round-varying scraps travel by pickle: active-task row
  indices, the price vector, contributor pairs, and each shard's
  participant rows.

Workers rebuild lightweight task/user proxies over the shared arrays and
run the exact :class:`~repro.simulation.batch.BatchedRoundProblems`
pipeline the parent would, with the same configured selector (shipped
once, pickled, at pool start).  Perf partials (selector calls/wall time,
latency histogram, watchdog fallbacks, DP states) come back with each
shard and are folded into the parent's round accounting, with the
problem-cache counters normalised to single-process semantics (one miss
per round, one hit per participant) so perf records do not vary with the
worker count.

The pool prefers the ``fork`` start method (cheap on Linux; the workers
inherit the interpreter state) and falls back to ``spawn`` where fork is
unavailable.  Workers unregister the inherited shared-memory blocks from
their ``resource_tracker`` so a worker exit never unlinks blocks the
parent still owns (bpo-39959).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.obs.metrics import Histogram
from repro.obs.trace import NULL_TRACER, TraceContext, TraceShardWriter
from repro.resilience.errors import ConfigError
from repro.selection import Selection


@dataclass(frozen=True)
class _ShardTask:
    """The slice of a :class:`SensingTask` the select phase reads."""

    task_id: int
    location: Point
    contributors: frozenset


@dataclass(frozen=True)
class _ShardUser:
    """The slice of a :class:`MobileUser` the select phase reads."""

    user_id: int
    location: Point
    max_travel_distance: float
    cost_per_meter: float


#: Worker-process state built once by :func:`_worker_init`.
_STATE: Optional[dict] = None

#: Shared-memory block keys, in the order they are allocated.
_BLOCKS = (
    "positions",
    "budgets",
    "costs",
    "user_ids",
    "task_locs",
    "task_ids",
    "task_matrix",
)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach an existing block without adopting its lifetime.

    On this interpreter (3.9+) attach-only ``SharedMemory`` does not
    register with the resource tracker, so the parent keeps sole
    ownership — the worker must *not* unregister (fork workers share
    the parent's tracker process; unregistering here would strip the
    parent's own registration, see bpo-39959's history).
    """
    return shared_memory.SharedMemory(name=name)


def _attach_blocks(specs: Dict[str, Tuple[str, tuple, str]]) -> Tuple[dict, dict]:
    """Attach every block in ``specs``; return (blocks, arrays)."""
    blocks = {}
    arrays = {}
    for key in _BLOCKS:
        name, shape, dtype = specs[key]
        shm = _attach(name)
        blocks[key] = shm
        arrays[key] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    return blocks, arrays


def _worker_init(payload: dict) -> None:
    """Build the per-worker state: shared views + the selector.

    When the owning process carries a :class:`TraceContext` (a job
    supervised under the live-operations layer), every pool worker
    opens its own per-process trace shard — ``shard-<pid>.trace.jsonl``
    in the job's trace directory — and records one span per shard
    solve, streamed to disk as it finishes.
    """
    global _STATE
    blocks, arrays = _attach_blocks(payload["blocks"])
    tracer = NULL_TRACER
    trace_env = payload.get("trace")
    if trace_env:
        ctx = TraceContext.from_env(trace_env)
        if ctx is not None:
            name = f"shard-{os.getpid()}"
            shard_ctx = ctx.child(name, parent_span_id="select")
            tracer = TraceShardWriter(
                shard_ctx.shard_path(), metadata=shard_ctx.metadata()
            )
    _STATE = {
        "blocks": blocks,
        "arrays": arrays,
        "generation": payload["generation"],
        "selector": pickle.loads(payload["selector"]),
        "dtype": np.dtype(payload["dtype"]),
        "chunk_elements": payload["chunk_elements"],
        "chunk_bytes": payload["chunk_bytes"],
        "tracer": tracer,
    }


def _worker_select(job: dict) -> Tuple[List[Selection], dict]:
    """Solve one shard: selections for ``job['rows']``, plus partials."""
    state = _STATE
    if job["generation"] != state["generation"]:
        # The parent re-published the world (open-world churn): drop the
        # stale views and re-attach the job's generation.  The parent
        # may already have unlinked the old blocks — POSIX keeps the
        # memory alive until this close, which cannot fail the round.
        for shm in state["blocks"].values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - close is best effort
                pass
        state["blocks"], state["arrays"] = _attach_blocks(job["blocks"])
        state["generation"] = job["generation"]
    arrays = state["arrays"]
    active_rows = np.asarray(job["active_rows"], dtype=np.int64)
    contributors: List[Set[int]] = [set() for _ in range(len(active_rows))]
    for pos, user_id in zip(job["contrib_task"], job["contrib_user"]):
        contributors[int(pos)].add(int(user_id))
    task_locs = arrays["task_locs"]
    task_ids = arrays["task_ids"]
    tasks = [
        _ShardTask(
            task_id=int(task_ids[row]),
            location=Point(float(task_locs[row, 0]), float(task_locs[row, 1])),
            contributors=frozenset(contributors[i]),
        )
        for i, row in enumerate(active_rows.tolist())
    ]
    prices = {
        task.task_id: float(price) for task, price in zip(tasks, job["prices"])
    }
    # Imported here (not at module top) so spawn-mode workers pay the
    # import once in the initializer-adjacent first call, and to avoid
    # an import cycle with batch.py.
    from repro.simulation.batch import BatchedRoundProblems

    problems = BatchedRoundProblems(
        tasks,
        prices,
        chunk_elements=state["chunk_elements"],
        dtype=state["dtype"],
        chunk_bytes=state["chunk_bytes"],
        task_matrix=arrays["task_matrix"],
        task_rows=active_rows,
    )
    rows = np.asarray(job["rows"], dtype=np.int64)
    positions = arrays["positions"]
    budgets = arrays["budgets"]
    costs = arrays["costs"]
    user_ids = arrays["user_ids"]
    users = [
        _ShardUser(
            user_id=int(user_ids[row]),
            location=Point(float(positions[row, 0]), float(positions[row, 1])),
            max_travel_distance=float(budgets[row]),
            cost_per_meter=float(costs[row]),
        )
        for row in rows.tolist()
    ]
    selector = state["selector"]
    tracer = state.get("tracer", NULL_TRACER)
    latency = Histogram()
    selections: List[Selection] = []
    calls = 0
    wall = 0.0
    with tracer.span(
        "shard-select", cat="shard", users=len(users), tasks=len(tasks)
    ):
        for user, problem in problems.iter_problems(
            users, origins=positions[rows], budgets=budgets[rows]
        ):
            if problem.size == 0:
                selections.append(Selection.empty())
                continue
            started = perf_counter()
            selection = selector.select(problem)
            elapsed = perf_counter() - started
            calls += 1
            wall += elapsed
            latency.observe(elapsed)
            selections.append(selection)
    consume = getattr(selector, "consume_round_fallbacks", None)
    fallbacks = consume() if consume is not None else 0
    states = 0
    for candidate in (selector, getattr(selector, "inner", None)):
        consume = getattr(candidate, "consume_states_expanded", None)
        if consume is not None:
            states = consume()
            break
    return selections, {
        "selector_calls": calls,
        "selector_wall_time": wall,
        "fallbacks": fallbacks,
        "dp_states": states,
        "hist_bucket_counts": latency.bucket_counts,
        "hist_count": latency.count,
        "hist_sum": latency.sum,
        "hist_min": latency.min,
        "hist_max": latency.max,
    }


class ShardedSelectionPool:
    """A process pool running the batched engine's select phase in shards.

    Args:
        engine: the owning :class:`BatchedSimulationEngine` (its world,
            position/budget arrays and task geometry are shared with the
            workers).
        workers: worker process count (>= 2; 1 would just be the
            in-process path with IPC overhead).

    Raises:
        ConfigError: for a worker count below 2 or a selector that
            cannot be pickled to the workers.
    """

    def __init__(self, engine, workers: int):
        if workers < 2:
            raise ConfigError(
                f"a sharded select phase needs workers >= 2, got {workers} "
                f"(use workers=1 for the in-process batched path)"
            )
        self.engine = engine
        self.workers = int(workers)
        try:
            selector_bytes = pickle.dumps(engine.selector)
        except Exception as exc:
            raise ConfigError(
                f"workers={workers} requires a picklable selector (each "
                f"worker process runs its own copy); pickling "
                f"{type(engine.selector).__name__} failed: {exc}"
            ) from exc
        self._shms: List[shared_memory.SharedMemory] = []
        self._generation = 0
        self._publish_world()
        # Hand the owning process's trace context (if any) to the pool
        # explicitly: fork children would inherit the environment anyway,
        # but spawn children would not.
        trace_ctx = TraceContext.from_env()
        payload = {
            "blocks": self._block_specs,
            "generation": self._generation,
            "selector": selector_bytes,
            "dtype": str(engine._dtype),
            "chunk_elements": engine.chunk_elements,
            "chunk_bytes": engine.chunk_bytes,
            "trace": trace_ctx.to_env() if trace_ctx is not None else None,
        }
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context("spawn")
        self._executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(payload,),
        )
        self._closed = False

    def _publish_world(self) -> None:
        """Copy the engine's world state into fresh shared blocks.

        The engine's live position/budget/matrix arrays are re-bound
        onto the blocks, so the parent's in-place updates stay visible
        to workers with zero per-round copying (and the task matrix is
        not held twice).
        """
        engine = self.engine
        users = engine.world.users
        tasks = engine.world.tasks
        self._block_specs: Dict[str, Tuple[str, tuple, str]] = {}
        positions = self._share("positions", engine._positions)
        budgets = self._share("budgets", engine._budgets)
        self._share(
            "costs",
            np.asarray([u.cost_per_meter for u in users], dtype=float),
        )
        self._share(
            "user_ids", np.asarray([u.user_id for u in users], dtype=np.int64)
        )
        self._share(
            "task_locs",
            np.asarray(
                [(t.location.x, t.location.y) for t in tasks], dtype=float
            ).reshape(len(tasks), 2),
        )
        self._share(
            "task_ids", np.asarray([t.task_id for t in tasks], dtype=np.int64)
        )
        matrix = self._share("task_matrix", engine._task_geometry())
        engine._positions = positions
        engine._budgets = budgets
        engine._full_task_matrix = matrix

    def refresh(self) -> None:
        """Re-publish the shared blocks after open-world churn.

        The world's shapes changed (users left/joined, tasks appeared),
        so every block is re-shared under a bumped generation; each
        worker re-attaches lazily when its next job's generation tag
        does not match.  The previous generation's blocks are unlinked
        right away — POSIX keeps them alive for any worker still
        holding the old mapping until it closes them.
        """
        old = self._shms
        self._shms = []
        self._publish_world()
        self._generation += 1
        for shm in old:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - double-close safety
                pass

    def _share(self, key: str, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a fresh shared block; return the view."""
        array = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        self._shms.append(shm)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        self._block_specs[key] = (shm.name, array.shape, str(array.dtype))
        return view

    # -- the round-level entry point ------------------------------------

    def collect(
        self,
        active: Sequence,
        prices: Dict[int, float],
        available: set,
    ) -> List[Tuple[object, Selection]]:
        """The sharded equivalent of ``_collect_selections``.

        Returns one ``(user, selection)`` per user in world order —
        exactly what the in-process path returns, merged from the
        shards' world-ordered partitions.
        """
        engine = self.engine
        users = engine.world.users
        if len(available) == len(users):
            rows = np.arange(len(users), dtype=np.int64)
            full = True
        else:
            rows = np.asarray(
                [i for i, u in enumerate(users) if u.user_id in available],
                dtype=np.int64,
            )
            full = False
        active_rows = np.asarray(
            [engine._task_row_of[t.task_id] for t in active], dtype=np.int64
        )
        price_vector = np.asarray(
            [prices[t.task_id] for t in active], dtype=float
        )
        contrib_task: List[int] = []
        contrib_user: List[int] = []
        for pos, task in enumerate(active):
            for user_id in task.contributors:
                contrib_task.append(pos)
                contrib_user.append(user_id)
        base = {
            "active_rows": active_rows,
            "prices": price_vector,
            "contrib_task": np.asarray(contrib_task, dtype=np.int64),
            "contrib_user": np.asarray(contrib_user, dtype=np.int64),
            "generation": self._generation,
            "blocks": self._block_specs,
        }
        futures = [
            self._executor.submit(_worker_select, {**base, "rows": shard})
            for shard in np.array_split(rows, self.workers)
        ]
        merged: List[Selection] = []
        for future in futures:
            # Futures resolve in shard order (not completion order) so
            # the merge is deterministic; the wait loop keeps honouring
            # the engine's cancellation token.
            while True:
                try:
                    selections, partials = future.result(timeout=0.25)
                except concurrent.futures.TimeoutError:
                    engine.cancel.raise_if_cancelled()
                    continue
                break
            merged.extend(selections)
            self._fold_partials(partials)
        # Single-process cache accounting: one shared construction per
        # round, one assembled problem per participant — independent of
        # the worker count.
        engine._perf.problem_cache_misses += 1
        engine._perf.problem_cache_hits += len(rows)
        if full:
            return list(zip(users, merged))
        by_row = dict(zip(rows.tolist(), merged))
        empty = Selection.empty()
        return [
            (user, by_row.get(i, empty)) for i, user in enumerate(users)
        ]

    def _fold_partials(self, partials: dict) -> None:
        """Fold one shard's perf/latency partials into the round's."""
        engine = self.engine
        engine._perf.selector_calls += partials["selector_calls"]
        engine._perf.selector_wall_time += partials["selector_wall_time"]
        engine._perf.dp_states_expanded += partials["dp_states"]
        engine._shard_fallbacks += partials["fallbacks"]
        if partials["hist_count"]:
            latency = engine._metrics.histogram("selector_seconds")
            for i, count in enumerate(partials["hist_bucket_counts"]):
                latency.bucket_counts[i] += count
            latency.count += partials["hist_count"]
            latency.sum += partials["hist_sum"]
            if latency.min is None or partials["hist_min"] < latency.min:
                latency.min = partials["hist_min"]
            if latency.max is None or partials["hist_max"] > latency.max:
                latency.max = partials["hist_max"]

    # -- lifetime -------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` already ran (shared blocks unlinked)."""
        return self._closed

    def close(self) -> None:
        """Shut the workers down and release the shared blocks.

        The engine's live arrays are copied back onto private memory
        first, so a closed pool leaves the engine fully usable (on the
        in-process path).
        """
        if self._closed:
            return
        self._closed = True
        engine = self.engine
        engine._positions = np.array(engine._positions)
        engine._budgets = np.array(engine._budgets)
        if engine._full_task_matrix is not None:
            engine._full_task_matrix = np.array(engine._full_task_matrix)
        self._executor.shutdown(wait=True, cancel_futures=True)
        for shm in self._shms:
            try:
                shm.close()
                shm.unlink()
            except Exception:  # pragma: no cover - double-close safety
                pass
        self._shms = []
