"""The round-based crowdsensing simulation engine (Fig. 1 of the paper).

A simulation wires together one world, one incentive mechanism, and one
task-selection algorithm, then plays the paper's loop for a fixed round
horizon: *reward update → task publish → per-user task selection →
travel & data upload → demand recalculation*.

- :class:`~repro.simulation.config.SimulationConfig` — every knob of the
  Section VI setup, preloaded with the paper's constants.
- :class:`~repro.simulation.engine.SimulationEngine` — the loop itself.
- :mod:`~repro.simulation.events` — the structured per-round history the
  metrics suite consumes.
- :mod:`~repro.simulation.rng` — named, independently seeded random
  streams so repetitions are reproducible and mechanisms/selection/
  mobility noise never alias.
"""

from repro.simulation.config import SimulationConfig
from repro.simulation.engine import SimulationEngine, make_engine, simulate
from repro.simulation.events import (
    MeasurementEvent,
    RejectedContribution,
    UserRoundRecord,
    RoundRecord,
    SimulationResult,
    round_fingerprint,
    result_fingerprint,
)
from repro.simulation.session import (
    SessionObservation,
    SimulationSession,
    TaskSnapshot,
    open_session,
)
from repro.simulation.perf import PerfStats
from repro.simulation.rng import spawn_streams, child_seed
from repro.simulation.round_cache import RoundProblems
from repro.simulation.observers import ProgressPrinter, BudgetLedger, CoverageTracker

__all__ = [
    "PerfStats",
    "RoundProblems",
    "SimulationConfig",
    "SimulationEngine",
    "make_engine",
    "simulate",
    "MeasurementEvent",
    "RejectedContribution",
    "UserRoundRecord",
    "RoundRecord",
    "SimulationResult",
    "round_fingerprint",
    "result_fingerprint",
    "SimulationSession",
    "SessionObservation",
    "TaskSnapshot",
    "open_session",
    "spawn_streams",
    "child_seed",
    "ProgressPrinter",
    "BudgetLedger",
    "CoverageTracker",
]
