"""Shared per-round construction of the users' Eq. 1 instances.

Before this cache existed the engine called
:meth:`~repro.selection.problem.TaskSelectionProblem.build` once per
user per round, and every call recomputed the same task-to-task distance
block and re-read the same price map — O(users x tasks^2) geometry per
round for values that depend only on the round, not the user.

:class:`RoundProblems` computes the round-invariant parts once:

- the active-task reward vector and :class:`CandidateTask` records,
- the ``(n_tasks, n_tasks)`` task-to-task distance matrix,
- the task locations as one ``(n_tasks, 2)`` array,

and assembles each user's problem by *slicing*: pick the user's eligible
candidates, compute only the origin-to-task row, and paste the shared
distance block.  The result is **bit-identical** to what ``build`` would
return — the same float expressions evaluate in the same order, the
pruning rule still uses ``Point.distance_to`` (``math.hypot``, which is
not bitwise ``np.sqrt(dx^2+dy^2)``), and the matrix entries come from
the same elementwise pipeline as
:func:`~repro.geometry.distances.pairwise_distances` — so seeded runs
replay exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.selection.base import CandidateTask
from repro.selection.problem import TaskSelectionProblem
from repro.simulation.perf import PerfStats
from repro.world.task import SensingTask
from repro.world.user import MobileUser


class RoundProblems:
    """One round's shared selection-problem state, sliced per user.

    Args:
        tasks: the round's published tasks, in engine order.
        prices: the mechanism's price per task id (every task priced —
            the engine validates before constructing this cache).
        stats: optional :class:`PerfStats` receiving one cache miss for
            the shared construction and one hit per user problem built.
    """

    def __init__(
        self,
        tasks: Sequence[SensingTask],
        prices: Dict[int, float],
        stats: "PerfStats" = None,
        task_matrix: np.ndarray = None,
    ):
        self.tasks: List[SensingTask] = list(tasks)
        self._stats = stats
        n = len(self.tasks)
        self.locations = np.asarray(
            [(t.location.x, t.location.y) for t in self.tasks], dtype=float
        ).reshape(n, 2)
        self.rewards = np.asarray(
            [prices[t.task_id] for t in self.tasks], dtype=float
        )
        if task_matrix is not None:
            # A caller-precomputed matrix (the batched engine caches the
            # all-tasks matrix across rounds; every entry depends only
            # on its two endpoints, so slices of it are bit-identical to
            # a fresh active-set build).
            if task_matrix.ndim != 2 or task_matrix.shape[0] != task_matrix.shape[1]:
                raise ValueError(
                    f"task_matrix must be square, got shape {task_matrix.shape}"
                )
            self.task_matrix = task_matrix
        else:
            self.task_matrix = self._build_task_matrix()
        self.candidates = tuple(
            CandidateTask(
                task_id=task.task_id,
                location=task.location,
                reward=float(self.rewards[i]),
            )
            for i, task in enumerate(self.tasks)
        )
        if stats is not None:
            stats.problem_cache_misses += 1

    def _build_task_matrix(self) -> np.ndarray:
        """The ``(n, n)`` task-to-task distance matrix.

        Same arithmetic as ``geometry.distances.pairwise_distances`` —
        diff, square, one add, sqrt — written per coordinate and in
        place so no ``(n, n, 2)`` temporary is materialised.  The sum
        over the 2-wide axis is a single correctly-rounded add either
        way, so the entries are bit-identical to the stacked pipeline.
        """
        n = len(self.tasks)
        if not n:
            return np.empty((0, 0), dtype=float)
        dx = self.locations[:, 0, None] - self.locations[None, :, 0]
        dy = self.locations[:, 1, None] - self.locations[None, :, 1]
        np.multiply(dx, dx, out=dx)
        np.multiply(dy, dy, out=dy)
        np.add(dx, dy, out=dx)
        return np.sqrt(dx, out=dx)

    def problem_for(self, user: MobileUser) -> TaskSelectionProblem:
        """The user's Eq. 1 instance, assembled from the shared state.

        Candidate eligibility (user has not already contributed) and
        reachability pruning (direct distance within the travel budget,
        decided with ``Point.distance_to`` exactly as ``build`` does)
        stay per-user; everything else is sliced.
        """
        origin = user.location
        max_distance = float(user.max_travel_distance)
        keep: List[int] = []
        for index, task in enumerate(self.tasks):
            if user.user_id in task.contributors:
                continue
            if origin.distance_to(task.location) <= max_distance:
                keep.append(index)

        if keep:
            idx = np.asarray(keep, dtype=int)
            diff = self.locations[idx] - (origin.x, origin.y)
            origin_row = np.sqrt((diff**2).sum(axis=1))
            k = len(keep)
            matrix = np.empty((k + 1, k + 1), dtype=float)
            matrix[0, 0] = 0.0
            matrix[0, 1:] = origin_row
            matrix[1:, 0] = origin_row
            matrix[1:, 1:] = self.task_matrix[np.ix_(idx, idx)]
            candidates = tuple(self.candidates[i] for i in keep)
        else:
            matrix = np.zeros((1, 1), dtype=float)
            candidates = ()

        if self._stats is not None:
            self._stats.problem_cache_hits += 1
        return TaskSelectionProblem(
            origin=origin,
            candidates=candidates,
            max_distance=max_distance,
            cost_per_meter=float(user.cost_per_meter),
            distance_matrix=matrix,
        )
