"""Ready-made round observers for the simulation engine.

The engine accepts any callable taking a
:class:`~repro.simulation.events.RoundRecord`; these are the ones the
examples and the CLI use:

- :class:`ProgressPrinter` — one status line per round, for watching a
  long run.
- :class:`BudgetLedger` — a running platform ledger (paid this round,
  cumulative, remaining budget) that raises the moment a budget breach
  would occur, turning the Eq. 8 guarantee into a live assertion.
- :class:`CoverageTracker` — running coverage per round, the live
  version of :func:`repro.metrics.coverage_by_round`.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Set, TextIO

from repro.simulation.events import RoundRecord


class ProgressPrinter:
    """Prints one compact line per finished round.

    Args:
        stream: where to write (default stdout).
        prefix: optional tag shown on every line (e.g. the mechanism name).
    """

    def __init__(self, stream: Optional[TextIO] = None, prefix: str = ""):
        self.stream = stream if stream is not None else sys.stdout
        self.prefix = prefix

    def __call__(self, record: RoundRecord) -> None:
        tag = f"{self.prefix} " if self.prefix else ""
        self.stream.write(
            f"{tag}round {record.round_no:>2}: "
            f"{record.measurement_count:>4} measurements, "
            f"{record.participating_users:>4} active users, "
            f"{len(record.completed_task_ids)} completed, "
            f"{len(record.expired_task_ids)} expired, "
            f"${record.total_paid:.2f} paid\n"
        )


class BudgetLedger:
    """A running platform ledger with a hard budget assertion.

    Args:
        budget: the platform budget B; a round that would push the
            cumulative payout past it raises immediately (the engine's
            Eq. 8 accounting makes this unreachable — the ledger is the
            tripwire proving it stays that way).
    """

    def __init__(self, budget: float):
        if budget <= 0:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = budget
        self.paid_by_round: List[float] = []

    @property
    def total_paid(self) -> float:
        return sum(self.paid_by_round)

    @property
    def remaining(self) -> float:
        return self.budget - self.total_paid

    def __call__(self, record: RoundRecord) -> None:
        self.paid_by_round.append(record.total_paid)
        if self.total_paid > self.budget + 1e-9:
            raise RuntimeError(
                f"budget breach at round {record.round_no}: paid "
                f"{self.total_paid:.2f} of {self.budget:.2f}"
            )


class CoverageTracker:
    """Tracks cumulative coverage as the run unfolds.

    Args:
        n_tasks: total number of tasks in the world (the denominator).
    """

    def __init__(self, n_tasks: int):
        if n_tasks < 1:
            raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
        self.n_tasks = n_tasks
        self._covered: Set[int] = set()
        self.by_round: List[float] = []

    @property
    def coverage(self) -> float:
        return len(self._covered) / self.n_tasks

    def __call__(self, record: RoundRecord) -> None:
        for event in record.measurements:
            self._covered.add(event.task_id)
        self.by_round.append(self.coverage)
