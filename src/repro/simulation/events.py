"""Structured simulation history: what happened, round by round.

The engine emits one :class:`RoundRecord` per simulated round; a full
run is a :class:`SimulationResult`.  The metrics suite
(:mod:`repro.metrics`) is a pure function of these records plus the
final world state — nothing in the engine computes a metric, which keeps
the measurement definitions in one reviewable place.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.dynamics.processes import WorldEvent
from repro.obs.metrics import MetricsRegistry
from repro.simulation.perf import PerfStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.config import SimulationConfig
    from repro.world.generator import World


@dataclass(frozen=True)
class MeasurementEvent:
    """One accepted measurement: who sensed what, when, for how much."""

    round_no: int
    task_id: int
    user_id: int
    reward: float


@dataclass(frozen=True)
class RejectedContribution:
    """A user reached a task but the measurement was not accepted.

    This is the WST redundancy drawback from Section II: the task filled
    up (or expired) after the user committed to its path.  The user's
    travel cost is already sunk; no reward is paid.
    """

    round_no: int
    task_id: int
    user_id: int
    reason: str


@dataclass(frozen=True)
class UserRoundRecord:
    """One user's round: the selection it made and what it got."""

    round_no: int
    user_id: int
    selected_task_ids: Tuple[int, ...]
    distance: float
    reward: float
    cost: float

    @property
    def profit(self) -> float:
        return self.reward - self.cost

    @property
    def participated(self) -> bool:
        """Whether the user left home at all this round."""
        return bool(self.selected_task_ids)


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one sensing round.

    Args:
        round_no: 1-based round number.
        published_rewards: the mechanism's price per active task id.
        user_records: one record per user (including sit-outs).
        measurements: accepted measurements, in acceptance order.
        rejections: contributions that arrived too late.
        completed_task_ids: tasks that reached :math:`\\varphi` this round.
        expired_task_ids: tasks whose deadline passed at the end of this round.
        selector_fallbacks: how many Eq. 1 instances this round were
            answered by the watchdog's fallback solver instead of the
            configured one (0 unless a
            :class:`~repro.selection.watchdog.TimeBoundedSelector`
            breached its deadline — the degradation-rate signal).
        perf: execution counters for the round (cache hits/misses, DP
            states expanded, selector wall time) — observability only;
            None in replays of event logs written before the counters
            existed.
        metrics: the round's metrics-registry snapshot (measurement
            acceptance/rejection counters, payout, budget-remaining
            gauge, demand-level distribution, selector-latency
            histogram; see :mod:`repro.obs.metrics`) — observability
            only; None in replays of event logs written before the
            registry existed.
        dynamics: the open-world events applied around this round
            (arrivals/departures/publications before it played, renewals
            and expiries after) — always empty for closed-world runs,
            so their serialised records are unchanged byte for byte.
    """

    round_no: int
    published_rewards: Dict[int, float]
    user_records: Tuple[UserRoundRecord, ...]
    measurements: Tuple[MeasurementEvent, ...]
    rejections: Tuple[RejectedContribution, ...]
    completed_task_ids: Tuple[int, ...]
    expired_task_ids: Tuple[int, ...]
    selector_fallbacks: int = 0
    perf: Optional[PerfStats] = None
    metrics: Optional[MetricsRegistry] = None
    dynamics: Tuple[WorldEvent, ...] = ()

    @property
    def measurement_count(self) -> int:
        return len(self.measurements)

    @property
    def total_paid(self) -> float:
        """Rewards the platform paid out this round."""
        return sum(event.reward for event in self.measurements)

    @property
    def participating_users(self) -> int:
        return sum(1 for record in self.user_records if record.participated)


@dataclass
class RunTotals:
    """Streaming accumulator: everything the metrics suite needs from a
    run whose per-round records were not retained in memory.

    The engine :meth:`absorb`\\ s each finished :class:`RoundRecord` into
    this and then drops it (observers — e.g. a JSONL stream writer —
    still saw the full record), so a 50k-user run holds O(tasks + users)
    state instead of O(rounds x users)."""

    rounds_played: int = 0
    total_measurements: int = 0
    total_paid: float = 0.0
    total_selector_fallbacks: int = 0
    measurements_by_task: Dict[int, int] = field(default_factory=dict)
    perf: PerfStats = field(default_factory=PerfStats)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def absorb(self, record: RoundRecord) -> None:
        self.rounds_played += 1
        self.total_measurements += record.measurement_count
        self.total_paid += record.total_paid
        self.total_selector_fallbacks += record.selector_fallbacks
        for event in record.measurements:
            self.measurements_by_task[event.task_id] = (
                self.measurements_by_task.get(event.task_id, 0) + 1
            )
        if record.perf is not None:
            self.perf = PerfStats.merged((self.perf, record.perf))
        if record.metrics is not None:
            self.metrics = MetricsRegistry.merged((self.metrics, record.metrics))


@dataclass
class SimulationResult:
    """A finished run: the config, the final world, and the history.

    The history is either the full per-round record list (``rounds``,
    the default) or — for memory-bounded streaming runs — the
    :class:`RunTotals` accumulator (``totals``), in which case
    ``rounds`` stays empty and per-round accessors raise."""

    config: "SimulationConfig"
    world: "World"
    rounds: List[RoundRecord] = field(default_factory=list)
    totals: Optional[RunTotals] = None

    def absorb(self, record: RoundRecord) -> None:
        """Fold a finished round into :attr:`totals` without keeping it."""
        if self.totals is None:
            self.totals = RunTotals(
                measurements_by_task={t.task_id: 0 for t in self.world.tasks}
            )
        self.totals.absorb(record)

    @property
    def streamed(self) -> bool:
        """Whether per-round records were dropped after aggregation."""
        return self.totals is not None

    @property
    def rounds_played(self) -> int:
        if self.totals is not None:
            return self.totals.rounds_played
        return len(self.rounds)

    @property
    def total_measurements(self) -> int:
        if self.totals is not None:
            return self.totals.total_measurements
        return sum(record.measurement_count for record in self.rounds)

    @property
    def total_paid(self) -> float:
        """Total platform payout over the whole run (must respect Eq. 8)."""
        if self.totals is not None:
            return self.totals.total_paid
        return sum(record.total_paid for record in self.rounds)

    @property
    def total_selector_fallbacks(self) -> int:
        """Watchdog degradations over the whole run (0 = fully exact)."""
        if self.totals is not None:
            return self.totals.total_selector_fallbacks
        return sum(record.selector_fallbacks for record in self.rounds)

    def perf_totals(self) -> PerfStats:
        """All rounds' perf counters merged into one :class:`PerfStats`."""
        if self.totals is not None:
            return self.totals.perf
        return PerfStats.merged(record.perf for record in self.rounds)

    def metrics_totals(self) -> MetricsRegistry:
        """All rounds' metric snapshots merged, in round order.

        Counters and histograms sum; gauges keep the last round's value
        (so ``budget_remaining`` ends at the run's final figure).
        """
        if self.totals is not None:
            return self.totals.metrics
        return MetricsRegistry.merged(record.metrics for record in self.rounds)

    def round(self, round_no: int) -> RoundRecord:
        """The record for a 1-based round number.

        Raises:
            IndexError: if that round was not played (e.g. early stop),
                or if the run streamed its rounds instead of keeping them.
        """
        if self.totals is not None:
            raise IndexError(
                f"round {round_no} not retained: this run streamed its "
                f"records (config.stream_rounds) — read them back from "
                f"the events JSONL instead"
            )
        if not 1 <= round_no <= len(self.rounds):
            raise IndexError(
                f"round {round_no} not played (history has {len(self.rounds)})"
            )
        return self.rounds[round_no - 1]

    def measurements_by_task(self) -> Dict[int, int]:
        """Accepted measurement counts per task over the whole run."""
        counts: Dict[int, int] = {task.task_id: 0 for task in self.world.tasks}
        if self.totals is not None:
            counts.update(self.totals.measurements_by_task)
            return counts
        for record in self.rounds:
            for event in record.measurements:
                counts[event.task_id] += 1
        return counts

    def user_profits(self, round_no: int = None) -> List[float]:
        """Per-user profit, either for one round or the whole run.

        Args:
            round_no: restrict to one 1-based round; None sums all rounds.
                Per-round profits require retained rounds (non-streaming).
        """
        if round_no is not None:
            return [r.profit for r in self.round(round_no).user_records]
        if self.totals is not None:
            # Users accumulate rewards/costs in place; for streamed runs
            # the final world state is the whole-run ledger.
            return [u.total_profit for u in self.world.users]
        totals: Dict[int, float] = {u.user_id: 0.0 for u in self.world.users}
        for record in self.rounds:
            for user_record in record.user_records:
                # Users who departed mid-run (open world) appear in
                # early records but not the final roster; skip them.
                if user_record.user_id in totals:
                    totals[user_record.user_id] += user_record.profit
        return [totals[u.user_id] for u in self.world.users]


def _canonical_round(record: RoundRecord) -> Dict:
    """The deterministic content of a round, as plain JSON-able data.

    Includes exactly the fields two bit-identical runs must agree on;
    excludes ``perf`` and ``metrics``, which carry wall-clock timings
    and therefore differ between identical replays.
    """
    return {
        "round_no": record.round_no,
        "published_rewards": [
            [task_id, record.published_rewards[task_id]]
            for task_id in sorted(record.published_rewards)
        ],
        "user_records": [
            [r.round_no, r.user_id, list(r.selected_task_ids),
             r.distance, r.reward, r.cost]
            for r in record.user_records
        ],
        "measurements": [
            [m.round_no, m.task_id, m.user_id, m.reward]
            for m in record.measurements
        ],
        "rejections": [
            [r.round_no, r.task_id, r.user_id, r.reason]
            for r in record.rejections
        ],
        "completed_task_ids": list(record.completed_task_ids),
        "expired_task_ids": list(record.expired_task_ids),
        "selector_fallbacks": record.selector_fallbacks,
        "dynamics": [
            [e.kind, e.round_no, e.subject_id,
             [[key, value] for key, value in e.payload]]
            for e in record.dynamics
        ],
    }


def round_fingerprint(record: RoundRecord) -> str:
    """A sha256 hex digest of the round's deterministic content.

    Two rounds fingerprint equal iff every decision the simulation made
    — prices, selections, uploads, expiries, open-world events — was
    identical; perf counters and metric snapshots (which embed wall
    times) are excluded.  This is the equality the session/engine
    bit-identity guarantee is stated in.
    """
    payload = json.dumps(
        _canonical_round(record),
        separators=(",", ":"),
        default=repr,  # exotic dynamics payload values hash via repr
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def result_fingerprint(result: SimulationResult) -> str:
    """A sha256 hex digest of a whole run's deterministic history.

    Chains :func:`round_fingerprint` over the retained rounds plus the
    run's headline totals, so it works for streamed results too (where
    per-round records were dropped and only totals remain).
    """
    digest = hashlib.sha256()
    for record in result.rounds:
        digest.update(round_fingerprint(record).encode("ascii"))
    totals = json.dumps(
        {
            "rounds_played": result.rounds_played,
            "total_measurements": result.total_measurements,
            "total_paid": result.total_paid,
            "total_selector_fallbacks": result.total_selector_fallbacks,
            "measurements_by_task": [
                [task_id, count]
                for task_id, count in sorted(
                    result.measurements_by_task().items()
                )
            ],
        },
        separators=(",", ":"),
    )
    digest.update(totals.encode("utf-8"))
    return digest.hexdigest()


def merge_user_records(
    records: Sequence[UserRoundRecord],
) -> Dict[int, Tuple[float, float]]:
    """Aggregate (reward, cost) per user over a batch of records."""
    merged: Dict[int, Tuple[float, float]] = {}
    for record in records:
        reward, cost = merged.get(record.user_id, (0.0, 0.0))
        merged[record.user_id] = (reward + record.reward, cost + record.cost)
    return merged
