"""The batched engine path: vectorised rounds for large worlds.

The scalar engine's per-round cost at scale is dominated by problem
construction: :meth:`RoundProblems.problem_for` runs an O(tasks) python
loop (``math.hypot`` + a set lookup per task) for every user — ~10M
interpreter iterations per round at 10k users x 1k tasks.  This module
replaces that with chunked numpy:

- one ``(chunk, tasks)`` origin-to-task distance matrix per user chunk,
  computed with the exact elementwise pipeline ``RoundProblems`` uses
  (diff, square, sum, sqrt — add/multiply/sqrt are correctly rounded, so
  the entries are bit-identical to the per-user rows),
- a boolean reachability mask against each user's travel budget, with
  any distance within :data:`BOUNDARY_TOL` of the budget re-decided by
  ``Point.distance_to`` (``math.hypot``) exactly as the scalar pruning
  rule does — the sqrt pipeline and hypot can disagree only in the last
  ulp, far inside the tolerance band,
- per-user problems assembled only for users with candidates; users with
  none get :meth:`Selection.empty` without a selector call (selectors
  return the empty selection for empty problems — pinned by the solver
  contract tests).

The batched engine also flips the mechanism's vectorised pricing path
on (``mechanism.batched``) and inherits the engine's single post-upload
mobility pass.  Histories are **bit-identical** to the scalar engine for
the same config and seed — pinned by ``tests/simulation/test_batch.py``.

Memory stays bounded: distance chunks are sized by
:attr:`BatchedSimulationEngine.chunk_elements` (~16 MB of float64 by
default) and dropped as soon as a chunk's problems are built, so a
50k-user round never materialises the full user-by-task matrix.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.selection import Selection
from repro.selection.problem import TaskSelectionProblem
from repro.simulation.engine import SimulationEngine
from repro.simulation.round_cache import RoundProblems
from repro.world.task import SensingTask
from repro.world.user import MobileUser

#: Distances this close to a user's travel budget are re-decided with
#: ``Point.distance_to`` so the sqrt-pipeline/``math.hypot`` last-ulp
#: disagreement can never flip a reachability decision.
BOUNDARY_TOL = 1e-6


class BatchedRoundProblems(RoundProblems):
    """Round-problem construction over user chunks instead of users.

    Extends :class:`RoundProblems` with :meth:`iter_problems`: the same
    per-user :class:`TaskSelectionProblem` objects ``problem_for`` would
    build, produced from chunked ``(users, tasks)`` distance matrices.
    ``problem_for`` itself still works (it is inherited), so paired
    experiments that freeze a round keep functioning on this class.
    """

    def __init__(
        self,
        tasks: Sequence[SensingTask],
        prices: Dict[int, float],
        stats=None,
        chunk_elements: int = 2_000_000,
    ):
        super().__init__(tasks, prices, stats=stats)
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
        self.chunk_elements = chunk_elements

    def iter_problems(
        self, users: Sequence[MobileUser]
    ) -> Iterator[Tuple[MobileUser, TaskSelectionProblem]]:
        """Yield ``(user, problem)`` for each user, in the given order."""
        n_tasks = len(self.tasks)
        if n_tasks == 0:
            for user in users:
                yield user, self._assemble(user, [], None)
            return
        chunk_size = max(1, self.chunk_elements // n_tasks)
        contributors = [task.contributors for task in self.tasks]
        for start in range(0, len(users), chunk_size):
            chunk = users[start:start + chunk_size]
            origins = np.asarray(
                [(u.location.x, u.location.y) for u in chunk], dtype=float
            ).reshape(len(chunk), 2)
            budgets = np.asarray(
                [u.max_travel_distance for u in chunk], dtype=float
            )
            # Same arithmetic as RoundProblems.problem_for — diff,
            # square, one add, sqrt — written per coordinate so no
            # (chunk, tasks, 2) temporary is materialised.  dx*dx+dy*dy
            # is the scalar pipeline's sum over the 2-wide axis (a
            # single correctly-rounded add either way), and (a-b)^2 is
            # exact under negation, so origin-minus-task equals the
            # scalar task-minus-origin rows bitwise.
            dx = origins[:, 0, None] - self.locations[None, :, 0]
            dy = origins[:, 1, None] - self.locations[None, :, 1]
            np.multiply(dx, dx, out=dx)
            np.multiply(dy, dy, out=dy)
            np.add(dx, dy, out=dx)
            distances = np.sqrt(dx, out=dx)
            del dy
            reach = distances <= budgets[:, None]
            near = np.abs(distances - budgets[:, None]) <= BOUNDARY_TOL
            for row in np.nonzero(near.any(axis=1))[0].tolist():
                origin, budget = chunk[row].location, budgets[row]
                for col in np.nonzero(near[row])[0].tolist():
                    reach[row, col] = (
                        origin.distance_to(self.tasks[col].location) <= budget
                    )
            # One nonzero over the whole chunk instead of one per user;
            # rows come out ascending, columns ascending within a row —
            # the same candidate order problem_for produces.
            rows, cols = np.nonzero(reach)
            bounds = np.searchsorted(rows, np.arange(len(chunk) + 1))
            any_contributors = any(contributors)
            for row, user in enumerate(chunk):
                span = cols[bounds[row]:bounds[row + 1]].tolist()
                if any_contributors:
                    user_id = user.user_id
                    keep = [c for c in span if user_id not in contributors[c]]
                else:
                    keep = span
                yield user, self._assemble(user, keep, distances[row])

    def _assemble(
        self,
        user: MobileUser,
        keep: List[int],
        distance_row,
    ) -> TaskSelectionProblem:
        """Build one user's problem from precomputed distances.

        Mirrors the tail of :meth:`RoundProblems.problem_for` exactly;
        the origin row is sliced from the chunk matrix instead of being
        recomputed (same pipeline, bit-identical values).
        """
        if keep:
            idx = np.asarray(keep, dtype=int)
            origin_row = distance_row[idx]
            k = len(keep)
            matrix = np.empty((k + 1, k + 1), dtype=float)
            matrix[0, 0] = 0.0
            matrix[0, 1:] = origin_row
            matrix[1:, 0] = origin_row
            matrix[1:, 1:] = self.task_matrix[idx[:, None], idx]
            candidates = tuple(self.candidates[i] for i in keep)
        else:
            matrix = np.zeros((1, 1), dtype=float)
            candidates = ()
        if self._stats is not None:
            self._stats.problem_cache_hits += 1
        return TaskSelectionProblem(
            origin=user.location,
            candidates=candidates,
            max_distance=float(user.max_travel_distance),
            cost_per_meter=float(user.cost_per_meter),
            distance_matrix=matrix,
        )


class BatchedSimulationEngine(SimulationEngine):
    """The scalar engine with the vectorised per-round hot paths.

    Differences from :class:`SimulationEngine` — none of them visible in
    the produced history:

    - problems come from :class:`BatchedRoundProblems` chunks,
    - users with zero candidates skip the selector call entirely,
    - mechanisms exposing a ``batched`` flag price rounds through their
      vectorised Eq. 2–7 path (grid-index neighbour counts included).
    """

    #: float64 elements per distance chunk (~16 MB at the default).
    chunk_elements = 2_000_000

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if hasattr(self.mechanism, "batched"):
            self.mechanism.batched = True

    def _round_problems(self, active, prices) -> BatchedRoundProblems:
        cached = self._problems_cache
        if cached is not None and cached[0] == self._next_round:
            return cached[1]
        problems = BatchedRoundProblems(
            active, prices, stats=self._perf, chunk_elements=self.chunk_elements
        )
        self._problems_cache = (self._next_round, problems)
        return problems

    def _collect_selections(
        self,
        active: List[SensingTask],
        prices: Dict[int, float],
        available: set,
    ) -> List[Tuple[MobileUser, Selection]]:
        tracer = self.tracer
        problems = self._round_problems(active, prices)
        latency = self._metrics.histogram("selector_seconds")
        participants = [u for u in self.world.users if u.user_id in available]
        by_id: Dict[int, Selection] = {}
        for count, (user, problem) in enumerate(
            problems.iter_problems(participants)
        ):
            # Same cancellation contract as the scalar loop: poll at a
            # bounded stride so a 50k-user round stops within a grace
            # period instead of at the round boundary only.
            if count % self.CANCEL_CHECK_EVERY == 0:
                self.cancel.raise_if_cancelled()
            if problem.size == 0:
                # Selectors answer empty problems with the empty
                # selection (solver contract); skip the call.
                by_id[user.user_id] = Selection.empty()
                continue
            if tracer.enabled:
                with tracer.span(
                    "select-user", cat="selector",
                    user=user.user_id, tasks=problem.size,
                ):
                    started = perf_counter()
                    selection = self.selector.select(problem)
                    elapsed = perf_counter() - started
            else:
                started = perf_counter()
                selection = self.selector.select(problem)
                elapsed = perf_counter() - started
            self._perf.selector_wall_time += elapsed
            self._perf.selector_calls += 1
            latency.observe(elapsed)
            by_id[user.user_id] = selection
        return [
            (user, by_id.get(user.user_id, Selection.empty()))
            for user in self.world.users
        ]
