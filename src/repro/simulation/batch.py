"""The batched engine path: vectorised rounds for large worlds.

The scalar engine's per-round cost at scale is dominated by problem
construction: :meth:`RoundProblems.problem_for` runs an O(tasks) python
loop (``math.hypot`` + a set lookup per task) for every user — ~10M
interpreter iterations per round at 10k users x 1k tasks.  This module
replaces that with chunked numpy:

- one ``(chunk, tasks)`` origin-to-task distance matrix per user chunk,
  computed with the exact elementwise pipeline ``RoundProblems`` uses
  (diff, square, sum, sqrt — add/multiply/sqrt are correctly rounded, so
  the float64 entries are bit-identical to the per-user rows),
- a boolean reachability mask against each user's travel budget, with
  any distance within the boundary tolerance of the budget re-decided by
  ``Point.distance_to`` (``math.hypot``) exactly as the scalar pruning
  rule does — the sqrt pipeline and hypot can disagree only in the last
  ulp, far inside the tolerance band,
- per-user problems assembled only for users with candidates; users with
  none get :meth:`Selection.empty` without a selector call (selectors
  return the empty selection for empty problems — pinned by the solver
  contract tests).

**Precision.** The chunk pipeline runs in a configurable dtype
(``SimulationConfig.distance_dtype``).  float64 (the default) is
bit-identical to the scalar engine.  float32 halves the distance-matrix
memory traffic — the right trade at city scale — and widens the
reachability recheck band to :func:`float32_boundary_tol` so every
decision the reduced precision could flip is re-decided in float64:
candidate sets are identical to the float64 pipeline's (pinned by
tests), only the low-order bits of the matrix entries differ.

**Scale.** At 50k+ users three further costs dominate, each handled
here (see docs/architecture.md "Scaling"):

- the mechanism's per-round grid rebuild for Eq. 5 neighbour counts —
  replaced by an :class:`~repro.geometry.grid_index.
  IncrementalNeighbourCounter` fed from the engine's own move loop,
- the per-round task-to-task distance matrix — computed once over *all*
  world tasks (task locations never change) and sliced per round via a
  row mapping instead of rebuilt,
- the per-chunk position/budget gathering — answered from persistent
  per-world arrays maintained in place as users move.

With ``workers > 1`` the select phase fans out across a process pool
over shared-memory arrays (:mod:`repro.simulation.shard`); results are
bit-identical at every worker count.

Memory stays bounded: distance chunks are sized by
:attr:`BatchedSimulationEngine.chunk_bytes` (~16 MB per chunk in either
dtype — the element count adapts to the dtype's width) and dropped as
soon as a chunk's problems are built, so a city-scale round never
materialises the full user-by-task matrix.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.grid_index import IncrementalNeighbourCounter
from repro.selection import Selection
from repro.selection.problem import TaskSelectionProblem
from repro.simulation.engine import SimulationEngine
from repro.simulation.round_cache import RoundProblems
from repro.world.task import SensingTask
from repro.world.user import MobileUser

#: Distances this close to a user's travel budget are re-decided with
#: ``Point.distance_to`` so the sqrt-pipeline/``math.hypot`` last-ulp
#: disagreement can never flip a reachability decision.
BOUNDARY_TOL = 1e-6

#: Per-chunk byte budget of the distance pipeline.  The chunk *element*
#: count is derived from this per dtype, so float32 chunks hold twice
#: the rows in the same footprint instead of silently halving it.
DEFAULT_CHUNK_BYTES = 16 << 20

#: Safety factor (in float32 ulps of the dominant magnitude) bounding
#: how far a float32 distance can sit from its float64 value: coordinate
#: rounding contributes ~2 ulps of the coordinate magnitude, the
#: diff/square/sum pipeline a few more, and sqrt halves relative error.
#: 32 ulps covers the worst case with an order of magnitude to spare.
_F32_GUARD = 32.0 * float(np.finfo(np.float32).eps)


def float32_boundary_tol(coordinate_scale: float, budget_scale: float) -> float:
    """The reachability recheck band for the float32 pipeline (meters).

    Any |d32 - budget| inside this band is re-decided in float64; the
    band bounds |d32 - d64| + |budget32 - budget64|, so a float32
    reach decision outside it always agrees with the float64 one.
    """
    return BOUNDARY_TOL + _F32_GUARD * (
        abs(coordinate_scale) + abs(budget_scale)
    )


class BatchedRoundProblems(RoundProblems):
    """Round-problem construction over user chunks instead of users.

    Extends :class:`RoundProblems` with :meth:`iter_problems`: the same
    per-user :class:`TaskSelectionProblem` objects ``problem_for`` would
    build, produced from chunked ``(users, tasks)`` distance matrices.
    ``problem_for`` itself still works (it is inherited, with the row
    mapping applied), so paired experiments that freeze a round keep
    functioning on this class.

    Args:
        tasks: the round's published tasks, in engine order.
        prices: the mechanism's price per task id.
        stats: optional :class:`PerfStats` (see :class:`RoundProblems`).
        chunk_elements: elements per distance chunk; ``None`` (default)
            derives the count from ``chunk_bytes`` and ``dtype``.
        dtype: the distance pipeline precision — ``np.float64``
            (bit-identical to the scalar engine) or ``np.float32``
            (reachability boundary re-decided in float64).
        chunk_bytes: per-chunk byte budget when ``chunk_elements`` is
            not given (default ~16 MB regardless of dtype).
        task_matrix: optional precomputed distance matrix.  May cover a
            superset of ``tasks`` (e.g. the engine's all-tasks matrix),
            in which case ``task_rows`` maps each task's position in
            ``tasks`` to its row in the matrix.
        task_rows: the row mapping for ``task_matrix`` (identity when
            omitted).
    """

    def __init__(
        self,
        tasks: Sequence[SensingTask],
        prices: Dict[int, float],
        stats=None,
        chunk_elements: Optional[int] = None,
        dtype=np.float64,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        task_matrix: Optional[np.ndarray] = None,
        task_rows: Optional[np.ndarray] = None,
    ):
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(
                f"dtype must be float32 or float64, got {dtype}"
            )
        self.dtype = dtype
        if chunk_elements is None:
            if chunk_bytes < dtype.itemsize:
                raise ValueError(
                    f"chunk_bytes must hold at least one {dtype} element, "
                    f"got {chunk_bytes}"
                )
            chunk_elements = chunk_bytes // dtype.itemsize
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be >= 1, got {chunk_elements}")
        self.chunk_elements = int(chunk_elements)
        self._task_rows = (
            None if task_rows is None else np.asarray(task_rows, dtype=np.int64)
        )
        if self._task_rows is not None and len(self._task_rows) != len(tasks):
            raise ValueError(
                f"task_rows must map every task: got {len(self._task_rows)} "
                f"rows for {len(tasks)} tasks"
            )
        super().__init__(tasks, prices, stats=stats, task_matrix=task_matrix)
        # Task locations in the working dtype (float32 mode casts once;
        # float64 mode reuses the base array).
        self._work_locations = (
            self.locations
            if dtype == np.float64
            else self.locations.astype(np.float32)
        )

    def _build_task_matrix(self) -> np.ndarray:
        if self.dtype == np.float64:
            return super()._build_task_matrix()
        n = len(self.tasks)
        if not n:
            return np.empty((0, 0), dtype=self.dtype)
        locations = self.locations.astype(np.float32)
        dx = locations[:, 0, None] - locations[None, :, 0]
        dy = locations[:, 1, None] - locations[None, :, 1]
        np.multiply(dx, dx, out=dx)
        np.multiply(dy, dy, out=dy)
        np.add(dx, dy, out=dx)
        return np.sqrt(dx, out=dx)

    def _matrix_rows(self, idx: np.ndarray) -> np.ndarray:
        return idx if self._task_rows is None else self._task_rows[idx]

    def problem_for(self, user: MobileUser) -> TaskSelectionProblem:
        if self._task_rows is None:
            return super().problem_for(user)
        # Re-run the scalar path with the row mapping applied to the
        # shared matrix slice (same values, superset-matrix layout).
        origin = user.location
        max_distance = float(user.max_travel_distance)
        keep: List[int] = []
        for index, task in enumerate(self.tasks):
            if user.user_id in task.contributors:
                continue
            if origin.distance_to(task.location) <= max_distance:
                keep.append(index)
        if keep:
            idx = np.asarray(keep, dtype=int)
            diff = self.locations[idx] - (origin.x, origin.y)
            origin_row = np.sqrt((diff**2).sum(axis=1))
            k = len(keep)
            matrix = np.empty((k + 1, k + 1), dtype=float)
            matrix[0, 0] = 0.0
            matrix[0, 1:] = origin_row
            matrix[1:, 0] = origin_row
            rows = self._matrix_rows(idx)
            matrix[1:, 1:] = self.task_matrix[np.ix_(rows, rows)]
            candidates = tuple(self.candidates[i] for i in keep)
        else:
            matrix = np.zeros((1, 1), dtype=float)
            candidates = ()
        if self._stats is not None:
            self._stats.problem_cache_hits += 1
        return TaskSelectionProblem(
            origin=origin,
            candidates=candidates,
            max_distance=max_distance,
            cost_per_meter=float(user.cost_per_meter),
            distance_matrix=matrix,
        )

    def iter_problems(
        self,
        users: Sequence[MobileUser],
        origins: Optional[np.ndarray] = None,
        budgets: Optional[np.ndarray] = None,
    ) -> Iterator[Tuple[MobileUser, TaskSelectionProblem]]:
        """Yield ``(user, problem)`` for each user, in the given order.

        Args:
            users: the users to build problems for.
            origins: optional ``(len(users), 2)`` float64 positions
                aligned with ``users`` (the engine's persistent position
                array); gathered from the user objects when omitted.
            budgets: optional ``(len(users),)`` float64 travel budgets,
                same convention.
        """
        n_tasks = len(self.tasks)
        if n_tasks == 0:
            for user in users:
                yield user, self._assemble(user, [], None)
            return
        n_users = len(users)
        if origins is None:
            origins = np.asarray(
                [(u.location.x, u.location.y) for u in users], dtype=float
            ).reshape(n_users, 2)
        if budgets is None:
            budgets = np.asarray(
                [u.max_travel_distance for u in users], dtype=float
            )
        float32 = self.dtype == np.float32
        if float32:
            origins_w = origins.astype(np.float32)
            budgets_w = budgets.astype(np.float32)
            # The recheck band must cover the float32 representation
            # error of every quantity feeding a reach decision.
            coordinate_scale = max(
                float(np.abs(self._work_locations).max(initial=0.0)),
                float(np.abs(origins_w).max(initial=0.0)),
            )
            budget_scale = float(np.abs(budgets_w).max(initial=0.0))
            tol = float32_boundary_tol(coordinate_scale, budget_scale)
        else:
            origins_w, budgets_w, tol = origins, budgets, BOUNDARY_TOL
        chunk_size = max(1, self.chunk_elements // n_tasks)
        contributors = [task.contributors for task in self.tasks]
        # Contributor exclusion, vectorised: resolve every (contributor,
        # task) pair to a (user position, column) pair once per round,
        # then clear those reach bits chunk by chunk — instead of a
        # set-membership filter per (user, candidate) pair.
        pair_rows = pair_cols = None
        if any(contributors):
            position_of = {u.user_id: i for i, u in enumerate(users)}
            pairs = [
                (position, col)
                for col, contributed in enumerate(contributors)
                for user_id in contributed
                if (position := position_of.get(user_id)) is not None
            ]
            if pairs:
                pair_rows = np.asarray([p[0] for p in pairs], dtype=np.int64)
                pair_cols = np.asarray([p[1] for p in pairs], dtype=np.int64)
        locations = self._work_locations
        tasks = self.tasks
        for start in range(0, n_users, chunk_size):
            stop = min(start + chunk_size, n_users)
            chunk = users[start:stop]
            chunk_origins = origins_w[start:stop]
            chunk_budgets = budgets_w[start:stop]
            # Same arithmetic as RoundProblems.problem_for — diff,
            # square, one add, sqrt — written per coordinate so no
            # (chunk, tasks, 2) temporary is materialised.  dx*dx+dy*dy
            # is the scalar pipeline's sum over the 2-wide axis (a
            # single correctly-rounded add either way), and (a-b)^2 is
            # exact under negation, so float64 origin-minus-task equals
            # the scalar task-minus-origin rows bitwise.
            dx = chunk_origins[:, 0, None] - locations[None, :, 0]
            dy = chunk_origins[:, 1, None] - locations[None, :, 1]
            np.multiply(dx, dx, out=dx)
            np.multiply(dy, dy, out=dy)
            np.add(dx, dy, out=dx)
            distances = np.sqrt(dx, out=dx)
            del dy
            reach = distances <= chunk_budgets[:, None]
            # Boundary band = within tol above the budget, or reachable
            # but not clearly below it.  Two threshold comparisons beat
            # an abs-difference here: bool temporaries instead of a
            # full-size float one.
            near = distances <= (chunk_budgets + tol)[:, None]
            near &= ~(distances <= (chunk_budgets - tol)[:, None])
            # Boundary-band decisions re-run the scalar float64
            # predicate, one pair at a time (rare at any realistic
            # geometry — the band is micrometers wide in float64 and
            # sub-meter in float32).
            nrows, ncols = np.nonzero(near)
            if len(nrows):
                for row, col in zip(nrows.tolist(), ncols.tolist()):
                    reach[row, col] = (
                        chunk[row].location.distance_to(tasks[col].location)
                        <= budgets[start + row]
                    )
            if pair_rows is not None:
                in_chunk = (pair_rows >= start) & (pair_rows < stop)
                if in_chunk.any():
                    reach[pair_rows[in_chunk] - start, pair_cols[in_chunk]] = False
            # One nonzero over the whole chunk instead of one per user;
            # rows come out ascending, columns ascending within a row —
            # the same candidate order problem_for produces.
            rows, cols = np.nonzero(reach)
            bounds = np.searchsorted(rows, np.arange(len(chunk) + 1))
            for row, user in enumerate(chunk):
                keep = cols[bounds[row]:bounds[row + 1]]
                yield user, self._assemble(user, keep, distances[row])

    def _assemble(
        self,
        user: MobileUser,
        keep: Sequence[int],
        distance_row,
    ) -> TaskSelectionProblem:
        """Build one user's problem from precomputed distances.

        Mirrors the tail of :meth:`RoundProblems.problem_for` exactly;
        the origin row is sliced from the chunk matrix instead of being
        recomputed (same pipeline; bit-identical values in float64).
        """
        k = len(keep)
        if k:
            idx = np.asarray(keep, dtype=int)
            origin_row = distance_row[idx]
            matrix = np.empty((k + 1, k + 1), dtype=self.dtype)
            matrix[0, 0] = 0.0
            matrix[0, 1:] = origin_row
            matrix[1:, 0] = origin_row
            rows = self._matrix_rows(idx)
            matrix[1:, 1:] = self.task_matrix[rows[:, None], rows]
            candidates = tuple(self.candidates[i] for i in keep)
        else:
            matrix = np.zeros((1, 1), dtype=self.dtype)
            candidates = ()
        if self._stats is not None:
            self._stats.problem_cache_hits += 1
        return TaskSelectionProblem(
            origin=user.location,
            candidates=candidates,
            max_distance=float(user.max_travel_distance),
            cost_per_meter=float(user.cost_per_meter),
            distance_matrix=matrix,
        )


class BatchedSimulationEngine(SimulationEngine):
    """The scalar engine with the vectorised per-round hot paths.

    Differences from :class:`SimulationEngine` — none of them visible in
    the produced history:

    - problems come from :class:`BatchedRoundProblems` chunks, sliced
      from a cross-round all-tasks distance matrix,
    - users with zero candidates skip the selector call entirely,
    - mechanisms exposing a ``batched`` flag price rounds through their
      vectorised Eq. 2–7 path, fed by an incremental neighbour counter
      (mechanisms exposing a ``neighbour_counter`` hook) instead of a
      per-round grid rebuild,
    - with ``workers > 1``, the select phase fans out across a process
      pool over shared-memory arrays (see :mod:`repro.simulation.shard`);
      per-user selections are merged back in world order, so the history
      is identical at every worker count.

    Args:
        workers: select-phase worker processes (``None``/``0``/``1`` =
            in-process).  Workers are an execution knob, not a config
            field: they never change results, so they stay out of run
            fingerprints.
    """

    #: Per-chunk byte budget for the distance pipeline (the element
    #: count adapts to the configured dtype).
    chunk_bytes = DEFAULT_CHUNK_BYTES

    #: Explicit element override; ``None`` derives from ``chunk_bytes``.
    chunk_elements: Optional[int] = None

    def __init__(self, *args, workers: Optional[int] = None, **kwargs):
        super().__init__(*args, **kwargs)
        if hasattr(self.mechanism, "batched"):
            self.mechanism.batched = True
        self._dtype = np.dtype(
            np.float32 if self.config.distance_dtype == "float32" else np.float64
        )
        users = self.world.users
        self._user_rows = {u.user_id: i for i, u in enumerate(users)}
        self._positions = np.asarray(
            [(u.location.x, u.location.y) for u in users], dtype=float
        ).reshape(len(users), 2)
        self._budgets = np.asarray(
            [u.max_travel_distance for u in users], dtype=float
        )
        self._full_task_matrix: Optional[np.ndarray] = None
        self._task_row_of: Dict[int, int] = {
            t.task_id: i for i, t in enumerate(self.world.tasks)
        }
        self._neighbour_counter = self._build_neighbour_counter()
        self._workers = int(workers) if workers else 1
        self._shard_fallbacks = 0
        self._shards = None
        if self._workers > 1:
            from repro.simulation.shard import ShardedSelectionPool

            self._shards = ShardedSelectionPool(self, self._workers)

    @property
    def workers(self) -> int:
        """Configured select-phase worker count (1 = in-process)."""
        return self._workers

    @property
    def closed(self) -> bool:
        """Whether the worker pool has been released (mid-run or after).

        Single-process engines (``workers<=1``) hold no pool and always
        read as closed; sessions use this to assert teardown."""
        return self._shards is None

    def close(self) -> None:
        """Release the worker pool and its shared memory (if any).

        Idempotent and safe mid-run: a :class:`~repro.simulation.
        session.SimulationSession` closed before the horizon lands here,
        and the shared-memory blocks must unlink exactly once."""
        if self._shards is not None:
            self._shards.close()
            self._shards = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass

    def _drain_selector_fallbacks(self) -> int:
        # Watchdog degradations that happened inside shard workers are
        # reported back with each shard and accumulated here.
        count = super()._drain_selector_fallbacks() + self._shard_fallbacks
        self._shard_fallbacks = 0
        return count

    # -- incremental neighbour counts -----------------------------------

    def _build_neighbour_counter(self) -> Optional[IncrementalNeighbourCounter]:
        """An Eq. 5 counter primed with every task the world will publish.

        Only mechanisms exposing a ``neighbour_counter`` hook get one;
        priming everything up front means later task releases (Poisson /
        burst arrivals) never trigger a full population rescan.
        """
        radius = getattr(self.mechanism, "neighbour_radius", None)
        if not radius or not hasattr(self.mechanism, "neighbour_counter"):
            return None
        counter = IncrementalNeighbourCounter(
            [u.location for u in self.world.users], radius=float(radius)
        )
        counter.prime([t.location for t in self.world.tasks])
        self.mechanism.neighbour_counter = counter
        return counter

    def _round_user_locations(self):
        # With an incremental counter injected, the mechanism never
        # reads per-round user locations — skip building the O(users)
        # list every round.
        if self._neighbour_counter is not None:
            return ()
        return super()._round_user_locations()

    # -- open-world churn ------------------------------------------------

    def _apply_dynamics(self, changes) -> None:
        """The scalar world mutation, plus array/counter/shard upkeep.

        Population changes invalidate every user-aligned array (rows
        shift when users leave), so positions/budgets/row maps are
        rebuilt and the incremental neighbour counter gets a forced
        full rebuild over the new population (which also re-primes
        every task, including any published this round).  A task-only
        change keeps the counter and just primes the new centers.  With
        a sharded pool, the shared-memory blocks are re-published under
        a new generation so workers re-attach on their next job.
        """
        super()._apply_dynamics(changes)
        rebuilt_counter = False
        if changes.population_changed:
            users = self.world.users
            self._user_rows = {u.user_id: i for i, u in enumerate(users)}
            self._positions = np.asarray(
                [(u.location.x, u.location.y) for u in users], dtype=float
            ).reshape(len(users), 2)
            self._budgets = np.asarray(
                [u.max_travel_distance for u in users], dtype=float
            )
            self._neighbour_counter = self._build_neighbour_counter()
            rebuilt_counter = True
        if changes.tasks:
            self._task_row_of = {
                t.task_id: i for i, t in enumerate(self.world.tasks)
            }
            self._full_task_matrix = None
            if self._neighbour_counter is not None and not rebuilt_counter:
                self._neighbour_counter.prime(
                    [t.location for t in changes.tasks]
                )
        if self._shards is not None:
            self._shards.refresh()

    def _apply_moves(self, arrival, selections, tasks_by_id) -> None:
        """The scalar move pass, plus position-array and counter upkeep.

        Mobility policies return the *same object* when a user does not
        move (stationary users sit on their home point; path followers
        with no path keep their location), so an identity check finds
        the movers without a coordinate comparison.  A returned new
        object with equal coordinates is treated as a move — harmless:
        its counter delta is exactly zero.
        """
        counter = self._neighbour_counter
        positions = self._positions
        user_rows = self._user_rows
        moved_rows: List[int] = []
        moved_old: List = []
        moved_new: List = []
        for idx in arrival:
            user, selection = selections[idx]
            old = user.location
            self._move_user(user, selection, tasks_by_id)
            new = user.location
            if new is old:
                continue
            row = user_rows[user.user_id]
            positions[row, 0] = new.x
            positions[row, 1] = new.y
            if counter is not None:
                moved_rows.append(row)
                moved_old.append(old)
                moved_new.append(new)
        if counter is not None and moved_rows:
            counter.apply_moves(moved_rows, moved_old, moved_new)

    # -- problem construction -------------------------------------------

    def _task_geometry(self) -> np.ndarray:
        """The all-tasks distance matrix, built once per run.

        Task locations never change, so every round's active-set matrix
        is a row/column slice of this one (each entry depends only on
        its two endpoints — slices are bit-identical to a fresh build).
        """
        if self._full_task_matrix is None:
            all_tasks = self.world.tasks
            shim = BatchedRoundProblems(
                [], {}, dtype=self._dtype, chunk_elements=1
            )
            shim.tasks = list(all_tasks)
            shim.locations = np.asarray(
                [(t.location.x, t.location.y) for t in all_tasks], dtype=float
            ).reshape(len(all_tasks), 2)
            self._full_task_matrix = shim._build_task_matrix()
        return self._full_task_matrix

    def _round_problems(self, active, prices) -> BatchedRoundProblems:
        cached = self._problems_cache
        if cached is not None and cached[0] == self._next_round:
            return cached[1]
        task_rows = np.asarray(
            [self._task_row_of[t.task_id] for t in active], dtype=np.int64
        )
        problems = BatchedRoundProblems(
            active,
            prices,
            stats=self._perf,
            chunk_elements=self.chunk_elements,
            dtype=self._dtype,
            chunk_bytes=self.chunk_bytes,
            task_matrix=self._task_geometry(),
            task_rows=task_rows,
        )
        self._problems_cache = (self._next_round, problems)
        return problems

    # -- the select phase -----------------------------------------------

    def _collect_selections(
        self,
        active: List[SensingTask],
        prices: Dict[int, float],
        available: set,
    ) -> List[Tuple[MobileUser, Selection]]:
        if self._shards is not None:
            return self._shards.collect(active, prices, available)
        tracer = self.tracer
        problems = self._round_problems(active, prices)
        latency = self._metrics.histogram("selector_seconds")
        users = self.world.users
        if len(available) == len(users):
            participants = users
            rows = None
        else:
            rows = np.asarray(
                [i for i, u in enumerate(users) if u.user_id in available],
                dtype=np.int64,
            )
            participants = [users[i] for i in rows.tolist()]
        origins = self._positions if rows is None else self._positions[rows]
        budgets = self._budgets if rows is None else self._budgets[rows]
        full = len(participants) == len(users)
        selections: List[Tuple[MobileUser, Selection]] = []
        by_id: Dict[int, Selection] = {}
        empty = Selection.empty()
        for count, (user, problem) in enumerate(
            problems.iter_problems(participants, origins=origins, budgets=budgets)
        ):
            # Same cancellation contract as the scalar loop: poll at a
            # bounded stride so a 50k-user round stops within a grace
            # period instead of at the round boundary only.
            if count % self.CANCEL_CHECK_EVERY == 0:
                self.cancel.raise_if_cancelled()
            if problem.size == 0:
                # Selectors answer empty problems with the empty
                # selection (solver contract); skip the call.
                selection = empty
            elif tracer.enabled:
                with tracer.span(
                    "select-user", cat="selector",
                    user=user.user_id, tasks=problem.size,
                ):
                    started = perf_counter()
                    selection = self.selector.select(problem)
                    elapsed = perf_counter() - started
                self._perf.selector_wall_time += elapsed
                self._perf.selector_calls += 1
                latency.observe(elapsed)
            else:
                started = perf_counter()
                selection = self.selector.select(problem)
                elapsed = perf_counter() - started
                self._perf.selector_wall_time += elapsed
                self._perf.selector_calls += 1
                latency.observe(elapsed)
            if full:
                selections.append((user, selection))
            else:
                by_id[user.user_id] = selection
        if full:
            return selections
        return [
            (user, by_id.get(user.user_id, empty))
            for user in users
        ]
