"""The sensing-round loop: Fig. 1 of the paper, executable.

Per round k:

1. **Reward update / task publish** — the incentive mechanism prices
   every active task from the platform's view of the round (task
   progress + current user positions).
2. **Task select** — each user independently solves its Eq. 1 instance
   over the tasks it has not yet contributed to, using the configured
   selector (exact DP or greedy).  Users decide simultaneously against
   the same published prices.
3. **Data upload** — users travel their chosen paths.  A task accepts at
   most :math:`\\varphi_i` measurements and at most one per user; users
   arriving after a task fills are rejected unpaid (the WST redundancy
   drawback — their travel cost is sunk).  Arrival order within a round
   is a uniformly random permutation per round.
4. **Demand calculate** — implicit: the next round's step 1 reads the
   updated task state.

Between rounds the mobility policy moves users, tasks past their
deadline expire, and the loop ends at the configured horizon or as soon
as no task is active.

The engine is steppable: :meth:`SimulationEngine.step` plays exactly one
round, which lets experiments freeze the world mid-run and hand the *same*
selection problems to several solvers (the Fig. 5 paired comparison).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.allocation.base import Coordinator

import math
from time import perf_counter

from repro.core.mechanisms import MECHANISMS, IncentiveMechanism, RoundView
from repro.dynamics.processes import WorldEvent
from repro.obs.log import bind
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER
from repro.resilience.cancel import NEVER_CANCELLED, CancellationToken
from repro.resilience.errors import MechanismPriceError
from repro.selection import (
    SELECTORS,
    Selection,
    Selector,
    TaskSelectionProblem,
    TimeBoundedSelector,
)
from repro.simulation.config import SimulationConfig
from repro.simulation.perf import PerfStats
from repro.simulation.round_cache import RoundProblems
from repro.simulation.events import (
    MeasurementEvent,
    RejectedContribution,
    RoundRecord,
    SimulationResult,
    UserRoundRecord,
)
from repro.simulation.rng import spawn_streams
from repro.world.generator import World
from repro.world.mobility import MixedMobility, MobilityPolicy, make_mobility
from repro.world.task import SensingTask, TaskStatus
from repro.world.user import MobileUser

#: Observer callback invoked with each finished RoundRecord.
RoundObserver = Callable[[RoundRecord], None]


class SimulationEngine:
    """Runs one seeded simulation, either whole (:meth:`run`) or round by
    round (:meth:`step`).

    Args:
        config: the full parameterisation.
        mechanism: optional pre-built mechanism (overrides the config's
            registry name — used by ablations injecting custom pricing).
        selector: optional pre-built selector, same idea.
        world: optional pre-built world (overrides generation — used by
            tests pinning exact geometry).
        observers: callables invoked with every finished round record.
        coordinator: optional server-side task allocator.  When given,
            the engine runs in the Server-Assigned-Tasks (SAT) mode: the
            coordinator decides every user's selection for the round
            instead of the users solving Eq. 1 themselves (see
            :mod:`repro.allocation`).
        tracer: optional span tracer (default: the zero-cost
            :data:`~repro.obs.trace.NULL_TRACER`).  When a real
            :class:`~repro.obs.trace.SpanTracer` is passed, the engine
            emits run → round → phase spans (price-publish / select /
            upload, plus per-user selector spans).  Tracing reads clocks
            only — never the random streams — so traced runs are
            bit-identical to untraced ones.
        cancel: optional :class:`~repro.resilience.cancel.
            CancellationToken`.  The engine polls it at safe boundaries
            — before every round, and every few hundred selector calls
            inside a round — and raises
            :class:`~repro.resilience.errors.OperationCancelled` when it
            trips.  Rounds already recorded stay valid (observers saw
            them, streamed events are on disk), which is what makes a
            cancelled run resumable: re-running the same config replays
            the completed rounds bit-identically.  The default token
            never cancels and costs one attribute read per check.
    """

    #: How many selector calls between cancellation polls inside a round
    #: (a trade between responsiveness and per-user overhead).
    CANCEL_CHECK_EVERY = 512

    def __init__(
        self,
        config: SimulationConfig,
        mechanism: Optional[IncentiveMechanism] = None,
        selector: Optional[Selector] = None,
        world: Optional[World] = None,
        observers: Sequence[RoundObserver] = (),
        coordinator: Optional["Coordinator"] = None,
        tracer=None,
        cancel: Optional[CancellationToken] = None,
    ):
        self.config = config
        self._streams = spawn_streams(config.seed)
        self.mechanism = mechanism if mechanism is not None else MECHANISMS.create(
            config.mechanism, **config.mechanism_arguments()
        )
        self.selector = selector if selector is not None else self._build_selector()
        self.mobility: MobilityPolicy = self._build_mobility()
        self.world = world if world is not None else self._generate_world()
        # Open-world timeline: pre-generates every churn/publication draw
        # from the dedicated "dynamics" stream at construction.  An empty
        # dynamics block builds no timeline and consumes no randomness,
        # so closed-world histories stay bit-identical.
        self.timeline = None
        self._pending_dynamics: List[WorldEvent] = []
        if config.dynamics:
            from repro.dynamics.stream import WorldTimeline

            self.timeline = WorldTimeline.from_config(
                config, self.world, self._streams["dynamics"]
            )
        if self.timeline is not None and hasattr(self.mechanism, "timeline"):
            self.mechanism.timeline = self.timeline
        self.observers = list(observers)
        self.coordinator = coordinator
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cancel = cancel if cancel is not None else NEVER_CANCELLED
        self.result = SimulationResult(config=self.config, world=self.world)
        self._next_round = 1
        self._mechanism_ready = False
        # Per-round caches (invalidated by the round number they carry)
        # and the perf/metric accumulators drained into each RoundRecord.
        self._price_cache: Optional[Tuple[int, Dict[int, float]]] = None
        self._problems_cache: Optional[Tuple[int, RoundProblems]] = None
        self._perf = PerfStats()
        self._metrics = MetricsRegistry()
        self._cumulative_paid = 0.0

    # -- setup -----------------------------------------------------------

    def _build_selector(self) -> Selector:
        selector = SELECTORS.create(self.config.selector, **self.config.selector_kwargs)
        if self.config.selector_timeout is not None and not isinstance(
            selector, TimeBoundedSelector
        ):
            selector = TimeBoundedSelector(
                selector, timeout=self.config.selector_timeout
            )
        return selector

    def _build_mobility(self) -> MobilityPolicy:
        """The config's policy, routed per group for mixed populations."""
        default = make_mobility(self.config.mobility)
        per_group = {
            str(group["name"]): make_mobility(group["mobility"])
            for group in self.config.population
            if group.get("mobility")
        }
        if per_group:
            return MixedMobility(per_group, default)
        return default

    def _generate_world(self) -> World:
        generator = self.config.world_generator()
        rng = self._streams["world"]
        if self.config.layout == "clustered":
            return generator.clustered(rng)
        return generator.uniform(rng)

    def _ensure_mechanism(self) -> None:
        if not self._mechanism_ready:
            self.mechanism.initialize(self.world, self._streams["mechanism"])
            self._mechanism_ready = True

    # -- round state -----------------------------------------------------------

    @property
    def current_round(self) -> int:
        """The 1-based round :meth:`step` would play next."""
        return self._next_round

    @property
    def finished(self) -> bool:
        """Whether the horizon is exhausted or no task remains active.

        An open world also keeps going while the timeline still has
        tasks left to publish, even if every published task is done.
        """
        if self._next_round > self.config.rounds:
            return True
        if any(t.is_active for t in self.world.tasks):
            return False
        return not (
            self.timeline is not None
            and self.timeline.has_pending_tasks(self._next_round)
        )

    def active_tasks(self) -> List[SensingTask]:
        """Tasks neither completed nor expired (published or not)."""
        return [t for t in self.world.tasks if t.is_active]

    def published_tasks(self) -> List[SensingTask]:
        """Tasks the platform offers in the upcoming round.

        A task is published once its release round arrives (the paper
        releases everything at round 1) and until it completes/expires.
        """
        return [
            t for t in self.world.tasks if t.is_published(self._next_round)
        ]

    def published_rewards(self) -> Dict[int, float]:
        """The prices the mechanism would publish for the upcoming round.

        Safe to call repeatedly: mechanisms are pure functions of the
        round view, so the engine computes each round's price map (and
        the grid-index neighbour counting behind it) once and answers
        repeated calls from a per-round cache.  Callers get a copy.
        """
        cached = self._price_cache
        if cached is not None and cached[0] == self._next_round:
            self._perf.price_cache_hits += 1
            return dict(cached[1])
        self._ensure_mechanism()
        view = RoundView(
            round_no=self._next_round,
            active_tasks=self.published_tasks(),
            user_locations=self._round_user_locations(),
        )
        prices = self.mechanism.rewards(view)
        self._price_cache = (self._next_round, dict(prices))
        return prices

    def _round_user_locations(self) -> Sequence:
        """User locations for the mechanism's round view.

        A hook so the batched engine can skip building the O(users)
        list when an incremental neighbour counter already answers the
        mechanism's Eq. 5 queries.
        """
        return [u.location for u in self.world.users]

    def build_problems(
        self, prices: Optional[Dict[int, float]] = None
    ) -> List[Tuple[MobileUser, TaskSelectionProblem]]:
        """The Eq. 1 instance every user faces in the upcoming round.

        Used by the paired Fig. 5 experiment: freeze the round, hand the
        identical problems to both solvers, compare profits.

        Args:
            prices: published rewards to use; defaults to
                :meth:`published_rewards`.
        """
        if prices is None:
            problems = self._round_problems(
                self.published_tasks(), self.published_rewards()
            )
        else:
            # Caller-supplied prices (e.g. an ablation probing a what-if
            # price map) must not poison the per-round cache.
            problems = RoundProblems(
                self.published_tasks(), prices, stats=self._perf
            )
        return [
            (user, problems.problem_for(user)) for user in self.world.users
        ]

    def _round_problems(
        self, active: List[SensingTask], prices: Dict[int, float]
    ) -> RoundProblems:
        """The shared per-round problem state, built once per round.

        The cache key is the upcoming round number: task state and user
        positions only change when :meth:`step` completes (which also
        advances the round number), so within a round every caller —
        :meth:`build_problems` and the round loop itself — slices the
        same reward vector and task-to-task distance block.
        """
        cached = self._problems_cache
        if cached is not None and cached[0] == self._next_round:
            return cached[1]
        problems = RoundProblems(active, prices, stats=self._perf)
        self._problems_cache = (self._next_round, problems)
        return problems

    # -- main loop -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Play every remaining round and return the accumulated result.

        The run-to-completion entry point is a thin orchestration shell:
        one "run" tracer span around :meth:`run_rounds`.  Callers that
        need finer control — pausing between rounds, injecting incentive
        actions, observing mid-run state — should drive the round kernel
        through a :class:`~repro.simulation.session.SimulationSession`
        instead, which steps the *same* kernel and therefore produces
        bit-identical histories.

        Raises:
            OperationCancelled: when the engine's cancellation token
                trips; the result retains every round completed before
                the check (`self.result` on the engine).
        """
        with self.tracer.span(
            "run",
            cat="run",
            seed=self.config.seed,
            mechanism=self.config.mechanism,
            selector=self.config.selector,
        ):
            return self.run_rounds()

    def run_rounds(self) -> SimulationResult:
        """The orchestration loop over the round kernel (:meth:`step`).

        Pure sequencing — poll cancellation, play one round, repeat
        until :attr:`finished` — with no tracing or IO of its own, so
        stepping the kernel externally (a session, a debugger, a test)
        replays exactly this loop.
        """
        while not self.finished:
            self.cancel.raise_if_cancelled()
            self.step()
        return self.result

    def step(self) -> RoundRecord:
        """Play exactly one round and return its record.

        Raises:
            RuntimeError: if the simulation is already finished.
        """
        if self.finished:
            raise RuntimeError(
                f"simulation finished after round {self._next_round - 1}"
            )
        self._ensure_mechanism()
        # Open world: fold this round's arrivals/departures/publications
        # in before the round plays (they invalidate the price cache, so
        # the published prices see the post-churn world).
        if self.timeline is not None:
            self._pending_dynamics = self.timeline.advance(
                self._next_round, self
            )
        # Bind log provenance for the round: any warning raised below
        # (watchdog fallback, price-map violation, retried IO) carries
        # which run and round it happened in.
        with bind(
            seed=self.config.seed,
            mechanism=self.config.mechanism,
            round=self._next_round,
        ), self.tracer.span("round", cat="round", round=self._next_round):
            record = self._play_round(self._next_round, self.published_tasks())
        if self.config.stream_rounds:
            self.result.absorb(record)
        else:
            self.result.rounds.append(record)
        self._next_round += 1
        for observer in self.observers:
            observer(record)
        return record

    # -- one round ----------------------------------------------------------------

    def _play_round(self, round_no: int, active: List[SensingTask]) -> RoundRecord:
        tracer = self.tracer
        with tracer.span("price-publish", cat="phase", round=round_no):
            prices = self.published_rewards()
            self._validate_prices(prices, active, round_no)
        available = self._available_user_ids()

        # Step 2: either WST (each user solves Eq. 1 independently) or
        # SAT (the coordinator assigns selections centrally).  Users who
        # sit this round out (participation_rate < 1) select nothing.
        with tracer.span("select", cat="phase", round=round_no):
            if self.coordinator is not None:
                present = [u for u in self.world.users if u.user_id in available]
                assigned = self.coordinator.assign(
                    round_no, active, present, prices
                )
                selections = [
                    (user, assigned.get(user.user_id, Selection.empty()))
                    for user in self.world.users
                ]
            else:
                selections = self._collect_selections(active, prices, available)

        # Step 3: uploads processed in a random arrival order.
        with tracer.span("upload", cat="phase", round=round_no):
            arrival = self._streams["arrival"].permutation(len(selections))
            measurements: List[MeasurementEvent] = []
            rejections: List[RejectedContribution] = []
            user_records: List[UserRoundRecord] = []
            completed: List[int] = []
            tasks_by_id = {t.task_id: t for t in active}

            for idx in arrival:
                user, selection = selections[idx]
                reward = self._perform(
                    user, selection, tasks_by_id, prices, round_no,
                    measurements, rejections, completed,
                )
                if not selection.is_empty:
                    user.record_round(round_no, reward, selection.cost)
                user_records.append(
                    UserRoundRecord(
                        round_no=round_no,
                        user_id=user.user_id,
                        selected_task_ids=selection.task_ids,
                        distance=selection.distance,
                        reward=reward,
                        cost=selection.cost,
                    )
                )
            # Mobility is a single post-upload pass in the same arrival
            # order: nothing in the upload loop reads another user's
            # position, and the mobility stream is consumed in the same
            # sequence, so this is bit-identical to interleaved moves.
            self._apply_moves(arrival, selections, tasks_by_id)

        # Step 4 prep: expire tasks whose deadline has passed.  The open
        # world first offers each overdue task its pre-drawn renewal
        # lottery (deadline extension) before letting it expire.
        dynamics = tuple(self._pending_dynamics)
        self._pending_dynamics = []
        if self.timeline is None:
            expired = [
                t.task_id
                for t in active
                if t.expire_if_due(next_round=round_no + 1)
            ]
        else:
            expired, lifecycle = self._expire_or_renew(active, round_no)
            dynamics += tuple(lifecycle)
        fallbacks = self._drain_selector_fallbacks()
        perf = self._drain_perf()
        return RoundRecord(
            round_no=round_no,
            published_rewards=dict(prices),
            user_records=tuple(sorted(user_records, key=lambda r: r.user_id)),
            measurements=tuple(measurements),
            rejections=tuple(rejections),
            completed_task_ids=tuple(completed),
            expired_task_ids=tuple(expired),
            dynamics=dynamics,
            selector_fallbacks=fallbacks,
            perf=perf,
            metrics=self._drain_round_metrics(
                measurements, rejections, fallbacks, perf
            ),
        )

    def _expire_or_renew(
        self, active: List[SensingTask], round_no: int
    ) -> Tuple[List[int], List[WorldEvent]]:
        """Open-world step 4 prep: renew or expire each overdue task.

        Mirrors :meth:`~repro.world.task.SensingTask.expire_if_due`'s
        condition exactly; a task that wins its pre-drawn renewal
        lottery gets a later deadline instead of expiring.
        """
        expired: List[int] = []
        lifecycle: List[WorldEvent] = []
        for task in active:
            if not (task.is_active and round_no + 1 > task.deadline):
                continue
            renewed = self.timeline.try_renew(task, round_no)
            if renewed is not None:
                task.deadline = renewed
                lifecycle.append(
                    WorldEvent(
                        kind="deadline_renewed",
                        round_no=round_no,
                        subject_id=task.task_id,
                        payload=(("deadline", renewed),),
                    )
                )
            else:
                task.status = TaskStatus.EXPIRED
                expired.append(task.task_id)
                lifecycle.append(
                    WorldEvent(
                        kind="task_expired",
                        round_no=round_no,
                        subject_id=task.task_id,
                    )
                )
        return expired, lifecycle

    def _apply_dynamics(self, changes) -> None:
        """Fold one round's open-world changes into the live world.

        Called by the :class:`~repro.dynamics.stream.WorldTimeline`
        before the round plays.  The batched engine extends this to
        rebuild its persistent arrays, neighbour counter, and shards.
        """
        if changes.departures:
            departed = set(changes.departures)
            self.world.users[:] = [
                u for u in self.world.users if u.user_id not in departed
            ]
        if changes.arrivals:
            self.world.users.extend(changes.arrivals)
        if changes.tasks:
            self.world.tasks.extend(changes.tasks)
        self._price_cache = None
        self._problems_cache = None

    def _collect_selections(
        self,
        active: List[SensingTask],
        prices: Dict[int, float],
        available: set,
    ) -> List[Tuple[MobileUser, Selection]]:
        """Step 2 (WST): every user's Eq. 1 answer for this round.

        One entry per user in world order.  Users sitting the round out
        (participation) select nothing.  Subclasses (the batched engine)
        override this with a vectorised construction path; the selections
        themselves must stay bit-identical.
        """
        tracer = self.tracer
        problems = self._round_problems(active, prices)
        latency = self._metrics.histogram("selector_seconds")
        selections: List[Tuple[MobileUser, Selection]] = []
        for count, user in enumerate(self.world.users):
            if count % self.CANCEL_CHECK_EVERY == 0:
                self.cancel.raise_if_cancelled()
            if user.user_id in available:
                problem = problems.problem_for(user)
                if tracer.enabled:
                    with tracer.span(
                        "select-user", cat="selector",
                        user=user.user_id, tasks=problem.size,
                    ):
                        started = perf_counter()
                        selection = self.selector.select(problem)
                        elapsed = perf_counter() - started
                else:
                    started = perf_counter()
                    selection = self.selector.select(problem)
                    elapsed = perf_counter() - started
                self._perf.selector_wall_time += elapsed
                self._perf.selector_calls += 1
                latency.observe(elapsed)
            else:
                selection = Selection.empty()
            selections.append((user, selection))
        return selections

    def _apply_moves(
        self,
        arrival: Sequence[int],
        selections: List[Tuple[MobileUser, Selection]],
        tasks_by_id: Dict[int, SensingTask],
    ) -> None:
        """Advance every user to its next-round position (arrival order)."""
        for idx in arrival:
            user, selection = selections[idx]
            self._move_user(user, selection, tasks_by_id)

    def _validate_prices(
        self,
        prices: Dict[int, float],
        active: Sequence[SensingTask],
        round_no: int,
    ) -> None:
        """Boundary check on the mechanism's price map.

        A mechanism omitting a task id used to die later as a bare
        ``KeyError`` inside the selection loop; malformed prices are an
        error *in the mechanism*, so they are named as such here.

        Raises:
            MechanismPriceError: for missing task ids or non-finite /
                negative rewards.
        """
        mechanism = f"mechanism {type(self.mechanism).__name__!r}"
        missing = [t.task_id for t in active if t.task_id not in prices]
        if missing:
            raise MechanismPriceError(
                f"{mechanism} omitted task ids {missing} from its round-"
                f"{round_no} price map (priced {sorted(prices)}); every "
                f"published task must be priced"
            )
        bad = {
            task_id: price
            for task_id, price in prices.items()
            if not math.isfinite(price) or price < 0
        }
        if bad:
            raise MechanismPriceError(
                f"{mechanism} returned non-finite or negative rewards in "
                f"round {round_no}: {bad}"
            )

    def _drain_selector_fallbacks(self) -> int:
        """Watchdog degradations this round (0 for unguarded selectors)."""
        consume = getattr(self.selector, "consume_round_fallbacks", None)
        return consume() if consume is not None else 0

    def _drain_perf(self) -> PerfStats:
        """This round's perf counters (the accumulator is reset)."""
        self._perf.dp_states_expanded += self._drain_selector_states()
        stats, self._perf = self._perf, PerfStats()
        return stats

    def _drain_round_metrics(
        self,
        measurements: List[MeasurementEvent],
        rejections: List[RejectedContribution],
        fallbacks: int,
        perf: PerfStats,
    ) -> MetricsRegistry:
        """This round's metrics snapshot (the accumulator is reset).

        Registry series per round: measurement acceptance/rejection
        counters (rejections labelled by reason — the WST redundancy
        drawback made countable), the platform payout, the remaining
        budget gauge, the demand-level distribution the mechanism
        priced at (when it exposes one), watchdog degradations, and the
        :class:`PerfStats` bridge (cache counters + selector latency,
        whose per-call distribution was observed live in the select
        loop).  Metrics are observability only — nothing reads them
        back into the simulation.
        """
        metrics = self._metrics
        metrics.counter("measurements_total", outcome="accepted").inc(
            len(measurements)
        )
        for rejection in rejections:
            metrics.counter(
                "measurements_total", outcome="rejected", reason=rejection.reason
            ).inc()
        paid = sum(event.reward for event in measurements)
        metrics.counter("payout_total").inc(paid)
        self._cumulative_paid += paid
        metrics.gauge("budget_remaining").set(
            self.config.budget - self._cumulative_paid
        )
        demands = getattr(self.mechanism, "last_demands", None)
        levels = getattr(self.mechanism, "levels", None)
        if demands and levels is not None:
            for level in levels.levels_of(list(demands.values())):
                metrics.counter("demand_level_total", level=level).inc()
        if fallbacks:
            metrics.counter("selector_fallbacks_total").inc(fallbacks)
        metrics.record_perf(perf)
        snapshot, self._metrics = self._metrics, MetricsRegistry()
        return snapshot

    def _drain_selector_states(self) -> int:
        """DP states expanded since the last drain (0 for non-DP
        selectors), reaching through one wrapper level (the watchdog)."""
        for candidate in (self.selector, getattr(self.selector, "inner", None)):
            consume = getattr(candidate, "consume_states_expanded", None)
            if consume is not None:
                return consume()
        return 0

    def _available_user_ids(self) -> set:
        """Users willing to work this round (all, at the paper's rate 1.0).

        Draws one Bernoulli per user from the dedicated participation
        stream; at rate 1.0 no randomness is consumed, so legacy seeds
        replay bit-exactly.
        """
        if self.config.participation_rate >= 1.0:
            return {user.user_id for user in self.world.users}
        draws = self._streams["participation"].random(len(self.world.users))
        return {
            user.user_id
            for user, draw in zip(self.world.users, draws)
            if draw < self.config.participation_rate
        }

    def _perform(
        self,
        user: MobileUser,
        selection: Selection,
        tasks_by_id: Dict[int, SensingTask],
        prices: Dict[int, float],
        round_no: int,
        measurements: List[MeasurementEvent],
        rejections: List[RejectedContribution],
        completed: List[int],
    ) -> float:
        """Walk the selected path; return the rewards actually earned."""
        earned = 0.0
        for task_id in selection.task_ids:
            task = tasks_by_id[task_id]
            if task.can_accept(user.user_id):
                task.record_measurement(user.user_id, round_no)
                price = prices[task_id]
                earned += price
                measurements.append(
                    MeasurementEvent(
                        round_no=round_no,
                        task_id=task_id,
                        user_id=user.user_id,
                        reward=price,
                    )
                )
                if not task.is_active:
                    completed.append(task_id)
            else:
                reason = "full" if task.remaining == 0 else "duplicate"
                rejections.append(
                    RejectedContribution(
                        round_no=round_no,
                        task_id=task_id,
                        user_id=user.user_id,
                        reason=reason,
                    )
                )
        return earned

    def _move_user(
        self,
        user: MobileUser,
        selection: Selection,
        tasks_by_id: Dict[int, SensingTask],
    ) -> None:
        path = [tasks_by_id[task_id].location for task_id in selection.task_ids]
        user.location = self.mobility.next_position(
            user, path, self.world.region, self._streams["mobility"]
        )


def make_engine(config: SimulationConfig, **engine_kwargs) -> SimulationEngine:
    """Build the engine ``config.engine`` names (``scalar`` or ``batched``).

    Both engines produce bit-identical histories for the same config and
    seed; ``batched`` replaces the per-user python geometry with chunked
    numpy and is the right choice from ~10k users up.
    """
    if config.engine == "batched":
        # Imported here: batch.py subclasses SimulationEngine.
        from repro.simulation.batch import BatchedSimulationEngine

        return BatchedSimulationEngine(config, **engine_kwargs)
    if engine_kwargs.get("workers", None) not in (None, 0, 1):
        from repro.resilience.errors import ConfigError

        raise ConfigError(
            f"workers={engine_kwargs['workers']} requires engine='batched' "
            f"(the scalar reference engine has no sharded select phase)"
        )
    engine_kwargs.pop("workers", None)
    return SimulationEngine(config, **engine_kwargs)


def simulate(config: SimulationConfig, **engine_kwargs) -> SimulationResult:
    """Build an engine for ``config`` and run it (the one-call entry point).

    Respects ``config.engine`` (see :func:`make_engine`).

    >>> result = simulate(SimulationConfig(n_users=40, seed=7))
    >>> result.rounds_played >= 1
    True
    """
    return make_engine(config, **engine_kwargs).run()
