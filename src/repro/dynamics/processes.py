"""Seeded open-world processes, pre-generated as an event stream.

Dynamic runs must be as reproducible as closed ones, so nothing here
happens "live": all churn and task-publication randomness is drawn once,
up front, from the dedicated ``dynamics`` stream, and frozen into an
:class:`EventStream` the engine replays between rounds.  Runtime state
(which tasks complete, who contributes) can never perturb the draws,
which is what makes a churn run bit-identical across engines, worker
counts, and resume boundaries.

The processes, in the fixed per-round draw order (do not reorder —
order is part of the reproducibility contract):

1. **User departures** — each alive user leaves before round ``r`` with
   probability ``user_departure_rate`` (one uniform per alive user).
2. **User arrivals** — ``Poisson(user_arrival_rate)`` new users join,
   placed by the region's uniform sampler, with the generator's
   heterogeneity idiom (three uniform factors per arrival iff
   ``heterogeneity > 0``).
3. **Task publications** — ``Poisson(task_arrival_rate)`` new tasks are
   published with uniform locations and durations from
   ``task_deadline_range`` (deadline = round - 1 + duration).

After the per-round passes, renewal lotteries are pre-drawn per task id
(``max_deadline_renewals`` (uniform, duration) pairs each, consumed
lazily by :meth:`~repro.dynamics.stream.WorldTimeline.try_renew` only
when a task actually reaches its deadline unmet).

A spec whose every rate is zero draws nothing at all, mirroring the
closed-world precedent (``heterogeneity=0`` / ``release_range=(1,1)``
consume no randomness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.geometry.region import RectRegion
from repro.resilience.errors import ConfigError

#: The event kinds a timeline can emit, in lifecycle order.
EVENT_KINDS = (
    "user_arrived",
    "user_departed",
    "task_published",
    "task_expired",
    "deadline_renewed",
)


@dataclass(frozen=True)
class WorldEvent:
    """One open-world transition, attributable to a round.

    Args:
        kind: one of :data:`EVENT_KINDS`.
        round_no: the 1-based round the event takes effect in (arrival/
            departure/publication events apply *before* the round plays;
            expiry/renewal events happen at its end).
        subject_id: the user or task id the event concerns.
        payload: extra data as a sorted tuple of (key, value) pairs —
            kept hashable so events compare and serialise stably.
    """

    kind: str
    round_no: int
    subject_id: int
    payload: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; valid: {EVENT_KINDS}"
            )

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        """The JSONL shape (see :mod:`repro.io.events`)."""
        return {
            "kind": self.kind,
            "round_no": self.round_no,
            "subject_id": self.subject_id,
            **({"payload": dict(self.payload)} if self.payload else {}),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorldEvent":
        payload = data.get("payload", {})
        return cls(
            kind=data["kind"],
            round_no=int(data["round_no"]),
            subject_id=int(data["subject_id"]),
            payload=tuple(sorted((str(k), v) for k, v in payload.items())),
        )


#: The keys a ``dynamics`` config mapping may contain.
_SPEC_KEYS = (
    "user_arrival_rate",
    "user_departure_rate",
    "task_arrival_rate",
    "task_deadline_range",
    "deadline_renewal_prob",
    "max_deadline_renewals",
)


@dataclass(frozen=True)
class DynamicsSpec:
    """The validated shape of a config's ``dynamics`` mapping.

    Args:
        user_arrival_rate: mean new users per round (Poisson; 0 = none).
        user_departure_rate: per-user per-round departure probability in
            [0, 1) (1 would empty the crowd before round 2).
        task_arrival_rate: mean new tasks per round (Poisson; 0 = none).
        task_deadline_range: inclusive duration range (rounds) for
            streamed tasks and renewal extensions; ``None`` falls back
            to the config's ``deadline_range``.
        deadline_renewal_prob: probability an unmet task's deadline is
            renewed instead of expiring, in [0, 1].
        max_deadline_renewals: renewal lotteries pre-drawn per task.
    """

    user_arrival_rate: float = 0.0
    user_departure_rate: float = 0.0
    task_arrival_rate: float = 0.0
    task_deadline_range: Optional[Tuple[int, int]] = None
    deadline_renewal_prob: float = 0.0
    max_deadline_renewals: int = 1

    def __post_init__(self) -> None:
        if self.user_arrival_rate < 0:
            raise ConfigError(
                f"dynamics.user_arrival_rate must be >= 0, "
                f"got {self.user_arrival_rate}"
            )
        if not 0.0 <= self.user_departure_rate < 1.0:
            raise ConfigError(
                f"dynamics.user_departure_rate must be in [0, 1), got "
                f"{self.user_departure_rate} (1 would empty the crowd "
                f"before round 2)"
            )
        if self.task_arrival_rate < 0:
            raise ConfigError(
                f"dynamics.task_arrival_rate must be >= 0, "
                f"got {self.task_arrival_rate}"
            )
        if self.task_deadline_range is not None:
            low, high = self.task_deadline_range
            if low < 1 or high < low:
                raise ConfigError(
                    f"bad dynamics.task_deadline_range "
                    f"{self.task_deadline_range}: need 1 <= low <= high"
                )
        if not 0.0 <= self.deadline_renewal_prob <= 1.0:
            raise ConfigError(
                f"dynamics.deadline_renewal_prob must be in [0, 1], "
                f"got {self.deadline_renewal_prob}"
            )
        if self.max_deadline_renewals < 0:
            raise ConfigError(
                f"dynamics.max_deadline_renewals must be >= 0, "
                f"got {self.max_deadline_renewals}"
            )

    @property
    def empty(self) -> bool:
        """Whether this spec can never produce an event."""
        return (
            self.user_arrival_rate == 0
            and self.user_departure_rate == 0
            and self.task_arrival_rate == 0
            and self.deadline_renewal_prob == 0
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "DynamicsSpec":
        """Build from a config/TOML-shaped mapping.

        Raises:
            ConfigError: for unknown keys or out-of-range values (each
                named, with the accepted range).
        """
        unknown = sorted(set(mapping) - set(_SPEC_KEYS))
        if unknown:
            raise ConfigError(
                f"unknown dynamics key(s) {', '.join(map(repr, unknown))}; "
                f"valid keys: {', '.join(_SPEC_KEYS)}"
            )
        kwargs: Dict[str, Any] = dict(mapping)
        if kwargs.get("task_deadline_range") is not None:
            value = kwargs["task_deadline_range"]
            if not isinstance(value, (list, tuple)) or len(value) != 2:
                raise ConfigError(
                    f"dynamics.task_deadline_range must be a [low, high] "
                    f"pair, got {value!r}"
                )
            kwargs["task_deadline_range"] = (int(value[0]), int(value[1]))
        if "max_deadline_renewals" in kwargs:
            kwargs["max_deadline_renewals"] = int(kwargs["max_deadline_renewals"])
        return cls(**kwargs)

    def as_mapping(self) -> Dict[str, Any]:
        """The lossless data shape (tuples as lists, defaults dropped)."""
        out: Dict[str, Any] = {}
        default = DynamicsSpec()
        for key in _SPEC_KEYS:
            value = getattr(self, key)
            if value != getattr(default, key):
                out[key] = list(value) if isinstance(value, tuple) else value
        return out


@dataclass(frozen=True)
class EventStream:
    """A run's pre-generated open-world history.

    Args:
        events: every arrival/departure/publication event, sorted by
            round (then generation order within a round).
        renewals: per task id, the pre-drawn (uniform draw, duration)
            renewal lotteries, in consumption order.
        last_task_round: the latest round any task is published in (0
            when no tasks stream) — the engine's "keep running, work is
            coming" horizon.
    """

    events: Tuple[WorldEvent, ...]
    renewals: Dict[int, Tuple[Tuple[float, int], ...]]
    last_task_round: int

    def events_for(self, round_no: int) -> Tuple[WorldEvent, ...]:
        return tuple(e for e in self.events if e.round_no == round_no)


def generate_stream(
    spec: DynamicsSpec,
    *,
    region: RectRegion,
    rounds: int,
    seed_user_ids: List[int],
    seed_task_ids: List[int],
    required_measurements: int,
    deadline_range: Tuple[int, int],
    user_speed: float,
    cost_per_meter: float,
    user_time_budget: float,
    heterogeneity: float,
    rng: np.random.Generator,
) -> EventStream:
    """Draw the whole run's open-world history from the dynamics stream.

    The roster is evolved *inside* the generator (departures shrink it,
    arrivals grow it) so the number of departure draws per round is a
    deterministic function of the spec and seed alone.
    """
    events: List[WorldEvent] = []
    alive: List[int] = list(seed_user_ids)
    next_user_id = max(seed_user_ids, default=-1) + 1
    next_task_id = max(seed_task_ids, default=-1) + 1
    streamed_task_ids: List[int] = []
    duration_range = (
        spec.task_deadline_range
        if spec.task_deadline_range is not None
        else deadline_range
    )
    low, high = duration_range
    last_task_round = 0
    hetero_low, hetero_high = 1.0 - heterogeneity, 1.0 + heterogeneity
    for round_no in range(2, rounds + 1):
        if spec.user_departure_rate > 0 and alive:
            draws = rng.random(len(alive))
            departed = {
                uid
                for uid, draw in zip(alive, draws)
                if draw < spec.user_departure_rate
            }
            if departed:
                alive = [uid for uid in alive if uid not in departed]
                events.extend(
                    WorldEvent("user_departed", round_no, uid)
                    for uid in sorted(departed)
                )
        if spec.user_arrival_rate > 0:
            count = int(rng.poisson(spec.user_arrival_rate))
            if count:
                points = region.sample(rng, count)
                if heterogeneity > 0.0:
                    speed_factor = rng.uniform(hetero_low, hetero_high, count)
                    cost_factor = rng.uniform(hetero_low, hetero_high, count)
                    budget_factor = rng.uniform(hetero_low, hetero_high, count)
                else:
                    speed_factor = cost_factor = budget_factor = np.ones(count)
                for i, point in enumerate(points):
                    uid = next_user_id
                    next_user_id += 1
                    alive.append(uid)
                    events.append(
                        WorldEvent(
                            "user_arrived",
                            round_no,
                            uid,
                            payload=(
                                ("cost_per_meter", cost_per_meter * float(cost_factor[i])),
                                ("speed", user_speed * float(speed_factor[i])),
                                ("time_budget", user_time_budget * float(budget_factor[i])),
                                ("x", point.x),
                                ("y", point.y),
                            ),
                        )
                    )
        if spec.task_arrival_rate > 0:
            count = int(rng.poisson(spec.task_arrival_rate))
            if count:
                points = region.sample(rng, count)
                durations = rng.integers(low, high + 1, size=count)
                last_task_round = round_no
                for point, duration in zip(points, durations):
                    tid = next_task_id
                    next_task_id += 1
                    streamed_task_ids.append(tid)
                    events.append(
                        WorldEvent(
                            "task_published",
                            round_no,
                            tid,
                            payload=(
                                ("deadline", round_no - 1 + int(duration)),
                                ("required", required_measurements),
                                ("x", point.x),
                                ("y", point.y),
                            ),
                        )
                    )
    renewals: Dict[int, Tuple[Tuple[float, int], ...]] = {}
    if spec.deadline_renewal_prob > 0 and spec.max_deadline_renewals > 0:
        for tid in [*seed_task_ids, *streamed_task_ids]:
            draws = rng.random(spec.max_deadline_renewals)
            durations = rng.integers(low, high + 1, size=spec.max_deadline_renewals)
            renewals[tid] = tuple(
                (float(draw), int(duration))
                for draw, duration in zip(draws, durations)
            )
    return EventStream(
        events=tuple(events),
        renewals=renewals,
        last_task_round=last_task_round,
    )
