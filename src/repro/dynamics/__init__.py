"""Open-world dynamics: churn, streaming tasks, deadline renewal.

The closed-world engine simulates a fixed crowd and a task set drawn up
front.  This package opens the world:

- :mod:`repro.dynamics.processes` — seeded Poisson arrival/departure
  processes, pre-generated into an immutable event stream so dynamic
  runs stay exactly as reproducible (and resumable) as closed ones,
- :mod:`repro.dynamics.stream` — the :class:`WorldTimeline` that applies
  those events between rounds on either engine, including the batched
  engine's array/shard/neighbour-counter upkeep,
- :mod:`repro.dynamics.online` — online incentive baselines for the open
  world: OMG-style multi-stage budget-feasible threshold pricing and
  IncentMe-style mobility-uncertainty-weighted rewards.

A :class:`~repro.simulation.config.SimulationConfig` with an empty
``dynamics`` mapping never touches this package and is bit-identical to
the closed-world engine (pinned by tests/dynamics/test_identity.py).
"""

from repro.dynamics.processes import DynamicsSpec, EventStream, WorldEvent
from repro.dynamics.stream import RoundChanges, WorldTimeline

__all__ = [
    "DynamicsSpec",
    "EventStream",
    "WorldEvent",
    "RoundChanges",
    "WorldTimeline",
]
