"""The world timeline: applying open-world events between rounds.

:class:`WorldTimeline` owns a run's pre-generated
:class:`~repro.dynamics.processes.EventStream` and replays it against a
live engine: before round ``r`` plays, the round's departures, arrivals,
and task publications are folded into the engine's world through its
``_apply_dynamics`` hook (the scalar engine mutates its user/task lists;
the batched engine additionally rebuilds its persistent arrays, forces
an :class:`~repro.geometry.grid_index.IncrementalNeighbourCounter`
rebuild, and refreshes the sharded pool's shared-memory blocks).

The timeline consumes **no randomness at runtime** — every draw already
happened in :func:`~repro.dynamics.processes.generate_stream` — so the
same config and seed replays identically on either engine, at any
worker count, and across resume boundaries.

It also keeps the per-user presence ledger the IncentMe mechanism reads
(when did each user join; who is still here), giving "historical visit
frequency" a concrete, engine-independent definition: the fraction of
elapsed rounds a user has been present for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dynamics.processes import (
    DynamicsSpec,
    EventStream,
    WorldEvent,
    generate_stream,
)
from repro.geometry.point import Point
from repro.world.task import SensingTask
from repro.world.user import MobileUser


@dataclass
class RoundChanges:
    """One round's world mutations, in application order."""

    round_no: int
    departures: List[int] = field(default_factory=list)
    arrivals: List[MobileUser] = field(default_factory=list)
    tasks: List[SensingTask] = field(default_factory=list)

    @property
    def population_changed(self) -> bool:
        return bool(self.departures or self.arrivals)


class WorldTimeline:
    """Replays a pre-generated event stream against a live engine.

    Args:
        spec: the validated dynamics knobs.
        stream: the pre-generated events (see
            :func:`~repro.dynamics.processes.generate_stream`).
        rounds: the run's horizon.
        seed_user_ids: the generated world's user ids (present from
            round 1, for the presence ledger).
    """

    def __init__(
        self,
        spec: DynamicsSpec,
        stream: EventStream,
        rounds: int,
        seed_user_ids: List[int],
    ):
        self.spec = spec
        self.stream = stream
        self.rounds = rounds
        self._events_by_round: Dict[int, List[WorldEvent]] = {}
        for event in stream.events:
            self._events_by_round.setdefault(event.round_no, []).append(event)
        self._renewals: Dict[int, List[Tuple[float, int]]] = {
            tid: list(pairs) for tid, pairs in stream.renewals.items()
        }
        #: round each user joined in (seed users join at round 1).
        self.joined_round: Dict[int, int] = {uid: 1 for uid in seed_user_ids}
        self._alive: Dict[int, int] = dict(self.joined_round)

    @classmethod
    def from_config(cls, config, world, rng) -> "WorldTimeline":
        """Build the timeline a config's ``dynamics`` mapping describes.

        Consumes the engine's dedicated ``dynamics`` stream exactly once
        (at construction); an all-zero spec draws nothing.
        """
        spec = DynamicsSpec.from_mapping(config.dynamics)
        seed_user_ids = [u.user_id for u in world.users]
        stream = generate_stream(
            spec,
            region=config.region,
            rounds=config.rounds,
            seed_user_ids=seed_user_ids,
            seed_task_ids=[t.task_id for t in world.tasks],
            required_measurements=config.required_measurements,
            deadline_range=config.deadline_range,
            user_speed=config.user_speed,
            cost_per_meter=config.cost_per_meter,
            user_time_budget=config.user_time_budget,
            heterogeneity=config.heterogeneity,
            rng=rng,
        )
        return cls(spec, stream, config.rounds, seed_user_ids)

    # -- between-round application --------------------------------------

    def changes_for(self, round_no: int) -> RoundChanges:
        """The world mutations due before ``round_no`` plays."""
        changes = RoundChanges(round_no=round_no)
        for event in self._events_by_round.get(round_no, ()):
            if event.kind == "user_departed":
                changes.departures.append(event.subject_id)
            elif event.kind == "user_arrived":
                changes.arrivals.append(
                    MobileUser(
                        user_id=event.subject_id,
                        location=Point(event.get("x"), event.get("y")),
                        speed=event.get("speed"),
                        cost_per_meter=event.get("cost_per_meter"),
                        time_budget=event.get("time_budget"),
                    )
                )
            elif event.kind == "task_published":
                changes.tasks.append(
                    SensingTask(
                        task_id=event.subject_id,
                        location=Point(event.get("x"), event.get("y")),
                        deadline=event.get("deadline"),
                        required_measurements=event.get("required"),
                        release_round=round_no,
                    )
                )
        return changes

    def advance(self, round_no: int, engine) -> List[WorldEvent]:
        """Apply round ``round_no``'s events; return them for the record.

        The engine's ``_apply_dynamics`` hook does the world (and, on
        the batched path, array/shard) mutation; the timeline itself
        only maintains the presence ledger.
        """
        events = list(self._events_by_round.get(round_no, ()))
        changes = self.changes_for(round_no)
        if changes.departures or changes.arrivals or changes.tasks:
            engine._apply_dynamics(changes)
        for uid in changes.departures:
            self._alive.pop(uid, None)
        for user in changes.arrivals:
            self.joined_round[user.user_id] = round_no
            self._alive[user.user_id] = round_no
        return events

    # -- deadline renewal ------------------------------------------------

    def try_renew(self, task: SensingTask, round_no: int) -> Optional[int]:
        """The task's next renewal lottery; its new deadline if it wins.

        Consumes at most one pre-drawn (uniform, duration) pair per call
        — never the live RNG — so whether other tasks completed cannot
        shift this task's renewal outcome.
        """
        pending = self._renewals.get(task.task_id)
        if not pending:
            return None
        draw, duration = pending.pop(0)
        if draw < self.spec.deadline_renewal_prob:
            return task.deadline + duration
        return None

    # -- run-shape queries ----------------------------------------------

    def has_pending_tasks(self, round_no: int) -> bool:
        """Whether any task is still due to be published at/after
        ``round_no`` (the engine's "don't stop yet" signal)."""
        return round_no <= self.stream.last_task_round

    def streamed_required_total(self) -> int:
        """Total required measurements across every task the stream will
        publish — lets budget-derived reward schedules (Eq. 9) cover the
        open world, not just the seed tasks."""
        return sum(
            event.get("required", 0)
            for event in self.stream.events
            if event.kind == "task_published"
        )

    def mean_presence(self, round_no: int) -> float:
        """Mean presence fraction of the current crowd at ``round_no``.

        A user present since round 1 scores 1.0; one that joined this
        round scores ``1/round_no``.  The IncentMe mechanism reads this
        as its population-stability signal (1.0 = fully predictable
        crowd, lower = more mobility uncertainty).
        """
        if not self._alive or round_no <= 0:
            return 1.0
        total = sum(
            (round_no - joined + 1) / round_no
            for joined in self._alive.values()
        )
        return total / len(self._alive)
