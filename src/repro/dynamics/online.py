"""Online incentive baselines for the open world.

Two mechanisms the dynamic setting can compare the paper's pay-on-demand
pricing against:

- :class:`OMGOnlineMechanism` ("omg-online") — multi-stage
  sampling-accept threshold pricing after the OMG line of online
  budget-feasible mechanisms (arXiv 1306.5677).  The horizon is split
  into geometric stages with geometrically growing budget allocations
  (the short first stage is the sampling stage); each round publishes
  one uniform threshold price, set so the stage's allocation can cover
  every outstanding measurement — budget-feasible per stage by
  construction (up to the strictly-positive price floor the engine's
  price validation requires).
- :class:`IncentMeMechanism` ("incentme") — mobility-uncertainty-
  weighted rewards after IncentMe (arXiv 1804.11150).  Each task's
  reward grows with supply scarcity (few neighbouring users), demand
  urgency (unmet measurements), and *mobility uncertainty*: the
  volatility of the task's neighbour count plus the instability of the
  crowd itself, read from the
  :class:`~repro.dynamics.stream.WorldTimeline`'s presence ledger when
  the world is open.  Scores are clipped to [0, 1] and priced through
  the paper's Eq. 9 budget-derived
  :class:`~repro.core.rewards.RewardSchedule`, so total payout respects
  the budget exactly as the on-demand mechanism's does.

Both run on either engine: prices are computed with per-task python
float arithmetic from exact neighbour counts, so scalar, batched, and
sharded runs stay bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.levels import DemandLevels
from repro.core.mechanisms.base import IncentiveMechanism, RoundView
from repro.core.rewards import RewardSchedule
from repro.geometry.grid_index import GridIndex
from repro.world.generator import World


def stage_plan(horizon: int, budget: float) -> List[Tuple[int, float]]:
    """OMG's stage structure: (stage end round, cumulative budget) pairs.

    The horizon is halved ``K`` times (K = number of stages); stage
    ``j`` ends at round ``horizon >> (K - j)`` and unlocks a budget
    allocation of ``B / 2^(K - j + 1)`` — so allocations double stage
    over stage and their total stays strictly under ``B`` (the reserved
    ``B / 2^K`` absorbs the sampling stage's estimation error).
    """
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    stages = max(1, horizon.bit_length() - 1)
    plan: List[Tuple[int, float]] = []
    cumulative = 0.0
    for j in range(1, stages + 1):
        end = horizon >> (stages - j)
        cumulative += budget / float(2 ** (stages - j + 1))
        plan.append((end, cumulative))
    return plan


class OMGOnlineMechanism(IncentiveMechanism):
    """Multi-stage online budget-feasible threshold pricing.

    Args:
        budget: total platform budget B over the whole run.
        step: price granularity (thresholds are quantised down to this
            grid, mirroring the paper's Eq. 7 reward grid).
        levels: accepted for registry-call uniformity; thresholds are
            not level-priced, so this is unused.
        horizon: the run's round count (stage boundaries derive from it;
            the engine passes ``config.rounds``).
        price_floor: the strictly-positive minimum price (the engine
            rejects non-positive prices; a stage that has exhausted its
            allocation publishes this epsilon threshold instead).
    """

    name = "omg-online"

    def __init__(
        self,
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        horizon: int = 15,
        price_floor: float = 1e-6,
    ):
        if price_floor <= 0:
            raise ValueError(f"price_floor must be positive, got {price_floor}")
        self.budget = float(budget)
        self.step = float(step)
        self.horizon = int(horizon)
        self.price_floor = float(price_floor)
        self.plan = stage_plan(self.horizon, self.budget)
        #: exact spend ledger: task id -> (last seen received, price
        #: published at that observation).
        self._outstanding: Dict[int, Tuple[int, float]] = {}
        self._spent = 0.0
        self._world: Optional[World] = None
        #: observability hooks the engine probes (no demand levels here).
        self.last_demands: Dict[int, float] = {}
        self.levels = None

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        # The live world lets the spend ledger settle tasks exactly even
        # after they leave the round view (completed or expired).
        self._world = world

    @property
    def spent(self) -> float:
        """Rewards committed so far (exact, settled against the world)."""
        return self._spent

    def cumulative_budget(self, round_no: int) -> float:
        """The budget unlocked by the stage containing ``round_no``."""
        for end, cumulative in self.plan:
            if round_no <= end:
                return cumulative
        return self.plan[-1][1]

    def _settle(self, view_tasks: List) -> None:
        """Fold measurement deltas since the last round into the ledger."""
        if self._world is None:
            return
        in_view = {t.task_id for t in view_tasks}
        by_id = {t.task_id: t for t in self._world.tasks}
        for tid in list(self._outstanding):
            last_received, price = self._outstanding[tid]
            task = by_id.get(tid)
            received = task.received if task is not None else last_received
            delta = received - last_received
            if delta > 0:
                self._spent += delta * price
            if tid not in in_view:
                # Completed or expired: nothing more to pay for it.
                del self._outstanding[tid]
            else:
                self._outstanding[tid] = (received, price)

    def rewards(self, view: RoundView) -> Dict[int, float]:
        if self._world is None:
            raise RuntimeError("initialize() must be called before rewards()")
        tasks = list(view.active_tasks)
        self._settle(tasks)
        if not tasks:
            self.last_demands = {}
            return {}
        available = max(0.0, self.cumulative_budget(view.round_no) - self._spent)
        outstanding = sum(t.remaining for t in tasks)
        raw = available / max(1, outstanding)
        # Quantise the threshold *down* to the step grid so the stage
        # allocation always covers every outstanding measurement; the
        # floor keeps prices strictly positive when a stage is spent
        # (epsilon payments bounded by floor x outstanding).
        threshold = math.floor(raw / self.step) * self.step
        price = threshold if threshold >= self.step else self.price_floor
        prices = {t.task_id: price for t in tasks}
        for task in tasks:
            self._outstanding[task.task_id] = (task.received, price)
        self.last_demands = {}
        return self._require_all_tasks(prices, tasks)


class IncentMeMechanism(IncentiveMechanism):
    """Mobility-uncertainty-weighted rewards on the Eq. 9 budget grid.

    Per task, per round, the normalised score in [0, 1] combines:

    - *scarcity*: ``1 / (1 + ema)`` of the task's neighbour count — few
      nearby users means the platform must pay more,
    - *urgency*: the unmet fraction of required measurements,
    - *uncertainty*: the task's neighbour-count volatility (EMA of
      absolute one-round changes, relative to the running level) blended
      with the crowd's instability — ``1 - mean presence fraction`` from
      the timeline's ledger when the world is open (1 - 1.0 = 0 in a
      closed world).

    The score is priced through
    :meth:`~repro.core.rewards.RewardSchedule.reward_for_demand`, whose
    Eq. 9 base reward is derived from the budget over *all* required
    measurements — including the timeline's still-unpublished streamed
    tasks — so the run's total payout stays budget-feasible.

    Args:
        budget: platform budget B.
        step: per-level reward increment (Eq. 7 grid).
        levels: demand-level partition (default: the paper's N = 5).
        neighbour_radius: the Eq. 5 neighbourhood radius in meters.
        uncertainty_weight: the uncertainty share of the score in
            [0, 1] (the rest goes to scarcity + urgency, split evenly).
        smoothing: EMA factor in (0, 1] for the neighbour statistics
            (1 = no memory).
    """

    name = "incentme"

    def __init__(
        self,
        budget: float = 1000.0,
        step: float = 0.5,
        levels: Optional[DemandLevels] = None,
        neighbour_radius: float = 500.0,
        uncertainty_weight: float = 0.5,
        smoothing: float = 0.5,
    ):
        if neighbour_radius <= 0:
            raise ValueError(
                f"neighbour_radius must be positive, got {neighbour_radius}"
            )
        if not 0.0 <= uncertainty_weight <= 1.0:
            raise ValueError(
                f"uncertainty_weight must be in [0, 1], got {uncertainty_weight}"
            )
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.budget = float(budget)
        self.step = float(step)
        self.levels = levels if levels is not None else DemandLevels(5)
        self.neighbour_radius = float(neighbour_radius)
        self.uncertainty_weight = float(uncertainty_weight)
        self.smoothing = float(smoothing)
        self.schedule: Optional[RewardSchedule] = None
        #: per-task neighbour-count EMA and volatility (EMA of |delta|).
        self._ema: Dict[int, float] = {}
        self._volatility: Dict[int, float] = {}
        #: hooks the engines probe/inject.
        self.last_demands: Dict[int, float] = {}
        self.batched = False
        self.neighbour_counter = None
        #: injected by the engine when the run has an open world.
        self.timeline = None

    def initialize(self, world: World, rng: np.random.Generator) -> None:
        total = world.total_required_measurements
        if self.timeline is not None:
            total += self.timeline.streamed_required_total()
        self.schedule = RewardSchedule.from_budget(
            budget=self.budget,
            total_required_measurements=max(1, total),
            step=self.step,
            levels=self.levels,
        )

    def _neighbour_counts(self, view: RoundView, tasks: List) -> List[int]:
        locations = [t.location for t in tasks]
        if self.neighbour_counter is not None:
            return [int(c) for c in self.neighbour_counter.counts_array(locations)]
        if view.user_locations:
            index = GridIndex(view.user_locations, cell_size=self.neighbour_radius)
            return index.counts_for(locations, self.neighbour_radius)
        return [0] * len(tasks)

    def rewards(self, view: RoundView) -> Dict[int, float]:
        if self.schedule is None:
            raise RuntimeError("initialize() must be called before rewards()")
        tasks = list(view.active_tasks)
        if not tasks:
            self.last_demands = {}
            return {}
        counts = self._neighbour_counts(view, tasks)
        crowd_instability = 0.0
        if self.timeline is not None:
            crowd_instability = 1.0 - self.timeline.mean_presence(view.round_no)
        alpha = self.smoothing
        w = self.uncertainty_weight
        prices: Dict[int, float] = {}
        demands: Dict[int, float] = {}
        for task, count in zip(tasks, counts):
            tid = task.task_id
            previous = self._ema.get(tid)
            if previous is None:
                ema = float(count)
                volatility = 0.0
            else:
                ema = alpha * count + (1.0 - alpha) * previous
                jump = abs(float(count) - previous)
                volatility = (
                    alpha * jump + (1.0 - alpha) * self._volatility.get(tid, 0.0)
                )
            self._ema[tid] = ema
            self._volatility[tid] = volatility
            scarcity = 1.0 / (1.0 + ema)
            urgency = task.remaining / task.required_measurements
            relative_volatility = min(1.0, volatility / (1.0 + ema))
            uncertainty = min(
                1.0, 0.5 * relative_volatility + 0.5 * crowd_instability
            )
            score = (1.0 - w) * 0.5 * (scarcity + urgency) + w * uncertainty
            score = min(1.0, max(0.0, score))
            demands[tid] = score
            prices[tid] = self.schedule.reward_for_demand(score)
        self.last_demands = demands
        return self._require_all_tasks(prices, tasks)
