"""The job service: submissions in, supervised simulations out.

:class:`JobService` composes the server package's parts into one
always-on process:

- **admission** — POST /jobs runs :func:`~repro.server.validate.
  parse_submission` (structured 400s), dedups by config fingerprint
  (an equivalent queued/running/done job is returned instead of
  re-running it), and offers the job to the
  :class:`~repro.server.queue.BoundedJobQueue` — a full queue answers
  HTTP 429 with a ``Retry-After`` derived from observed job runtimes;
- **dispatch** — an event-loop task drains the queue into at most
  ``concurrency`` :class:`~repro.server.supervisor.WorkerSupervisor`
  runs; under memory pressure (:class:`~repro.server.queue.
  MemoryWatermark`) it sheds the lowest-priority queued jobs instead of
  dying of OOM;
- **durability** — every submission and transition lands in the
  :class:`~repro.server.jobs.JobJournal` *before* the HTTP response, so
  a SIGKILLed server rebuilds its job table on restart and re-queues
  whatever was RUNNING (the deterministic workers then resume their
  event files append-only);
- **observation** — /healthz is liveness (always 200 while the process
  serves), /readyz is readiness (503 until recovery finished and while
  shutting down), GET /jobs/{id}/events streams the round history as
  NDJSON, following live jobs to their terminal line.

Everything mutating shares the event loop thread, so the in-memory job
table needs no locking; the journal provides the cross-*restart*
consistency.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
from pathlib import Path
from typing import AsyncIterator, Optional, Set, Union

from repro.obs.live import JobProgress, progress_gauges, render_prometheus
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.resilience.cancel import FileToken
from repro.server.http import HttpServer, Request, Response, Router
from repro.server.jobs import Job, JobJournal, JobState, TERMINAL_STATES
from repro.server.queue import Admission, BoundedJobQueue, MemoryWatermark
from repro.server.supervisor import WorkerSupervisor
from repro.server.validate import InvalidSubmission, parse_submission

log = get_logger("server.app")

#: How often the dispatcher wakes even without a submission (memory
#: checks, shedding) — seconds.
DISPATCH_TICK_SECONDS = 0.5

#: Poll interval while tailing a live job's events file — seconds.
TAIL_POLL_SECONDS = 0.15

#: Retry-After fallback before any job has finished — seconds.
DEFAULT_RETRY_AFTER = 10


class JobService:
    """The supervised job service over one root directory.

    Root layout::

        <root>/journal.jsonl       the job journal (source of truth)
        <root>/jobs/<job_id>/      one directory per job (worker contract)
        <root>/obs/                RunStore the workers ingest into
        <root>/server.json         {host, port, pid} once serving

    Args:
        root: the service state directory (created if absent).
        host / port: bind address (port 0 = ephemeral).
        queue_limit: max queued jobs before 429.
        concurrency: max simultaneously running workers.
        max_attempts: crash retries before a job is poisoned.
        default_timeout: per-job wall-clock budget when the submission
            carries none (None = unlimited).
        memory_limit_bytes: shed queued jobs when RSS exceeds this.
        supervisor: injectable, for tests; defaults to a
            :class:`WorkerSupervisor` built from ``max_attempts``.
    """

    def __init__(
        self,
        root: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        queue_limit: int = 16,
        concurrency: int = 2,
        max_attempts: int = 3,
        default_timeout: Optional[float] = None,
        memory_limit_bytes: Optional[int] = None,
        supervisor: Optional[WorkerSupervisor] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.concurrency = concurrency
        self.default_timeout = default_timeout
        self.journal = JobJournal(self.root / "journal.jsonl")
        self.queue = BoundedJobQueue(queue_limit)
        self.watermark = MemoryWatermark(memory_limit_bytes)
        #: Process-lifetime counters and histograms behind GET /metrics.
        #: Gauges (queue depth, per-state jobs, job progress) are *not*
        #: kept here — they are recomputed from the journal and progress
        #: files at scrape time, so a restarted server never
        #: double-counts terminal jobs.
        self.metrics = MetricsRegistry()
        self.supervisor = supervisor or WorkerSupervisor(max_attempts=max_attempts)
        if self.supervisor.metrics is None:
            self.supervisor.metrics = self.metrics
        self.http = HttpServer(self._build_router(), host=host, port=port)

        self._ready = False
        self._stopping = False
        self._wake = asyncio.Event()
        self._stop_requested = asyncio.Event()
        self._tasks: Set[asyncio.Task] = set()
        self._running: Set[str] = set()
        self._dispatcher: Optional[asyncio.Task] = None
        self._ewma_runtime: Optional[float] = None
        self._shed_count = 0

    # -- paths -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.root / "jobs" / job_id

    @property
    def obs_root(self) -> Path:
        return self.root / "obs"

    @property
    def port(self) -> int:
        return self.http.bound_port

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Recover the journal, start serving, become ready."""
        self._recover()
        await self.http.start()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )
        self._write_server_file()
        self._ready = True
        log.info(
            "job service ready",
            extra={
                "root": str(self.root),
                "port": self.port,
                "jobs": len(self.journal),
                "queued": len(self.queue),
            },
        )

    def _recover(self) -> None:
        """Re-queue whatever the previous process left unfinished.

        RUNNING means a worker died with the server: the journal's
        crash-retry edge (RUNNING → QUEUED) puts it back in line, and
        the worker's append-only events recovery makes the re-run cheap
        — completed rounds replay without re-writing.
        """
        recovered = 0
        for job in self.journal.non_terminal():
            if job.state is JobState.RUNNING:
                job.transition(JobState.QUEUED)
                self.journal.record_state(job)
                recovered += 1
            self.queue.offer(job.job_id, job.priority)
        if recovered:
            log.info(
                "recovered in-flight jobs from journal",
                extra={"requeued": recovered},
            )

    def _write_server_file(self) -> None:
        from repro.io.atomic import atomic_write_text

        atomic_write_text(
            self.root / "server.json",
            json.dumps(
                {
                    "host": self.http.host,
                    "port": self.port,
                    "pid": os.getpid(),
                    "root": str(self.root.resolve()),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )

    def request_stop(self) -> None:
        """Begin graceful shutdown (signal-handler safe)."""
        if not self._stopping:
            log.info("shutdown requested")
        self._stopping = True
        self._ready = False
        self._stop_requested.set()
        self._wake.set()

    async def stop(self) -> None:
        """Stop serving, kill workers, leave the journal consistent.

        Jobs still RUNNING in the journal are *left* RUNNING — the next
        :meth:`start` recovers them through the crash-retry edge, which
        is exactly the SIGKILL path; a graceful stop just gets there
        without losing in-progress round events (fsynced per round).
        """
        self.request_stop()
        await self.http.stop()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        await self.supervisor.shutdown()
        log.info("job service stopped", extra={"root": str(self.root)})

    async def serve_forever(self) -> None:
        """Start, install signal handlers, serve until stopped."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix or nested loop; ctrl-c still raises
        await self.start()
        await self._stop_requested.wait()
        await self.stop()

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while not self._stopping:
            self._shed_for_memory()
            while len(self._running) < self.concurrency:
                job_id = self.queue.pop()
                if job_id is None:
                    break
                job = self.journal.jobs[job_id]
                if job.terminal:
                    continue  # cancelled while queued
                self._running.add(job_id)
                task = asyncio.get_running_loop().create_task(
                    self._supervise(job)
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=DISPATCH_TICK_SECONDS
                )
            except asyncio.TimeoutError:
                pass
            self._wake.clear()

    def _shed_for_memory(self) -> None:
        """Sacrifice lowest-priority queued jobs while RSS is over limit."""
        while self.watermark.over_limit:
            victim_id = self.queue.shed_lowest()
            if victim_id is None:
                return
            job = self.journal.jobs[victim_id]
            job.error = "shed under memory pressure (rss over limit)"
            job.transition(JobState.CANCELLED)
            self.journal.record_state(job)
            self._shed_count += 1
            self.metrics.counter("repro_shed_jobs_total").inc()
            log.warning(
                "shed queued job under memory pressure",
                extra={"job": victim_id, "priority": job.priority},
            )

    async def _supervise(self, job: Job) -> None:
        try:
            await self.supervisor.run_to_terminal(
                job, self.job_dir(job.job_id), self.journal.record_state
            )
        except asyncio.CancelledError:
            raise  # shutdown: journal already holds the last real state
        except Exception as exc:  # noqa: BLE001 - supervisor bug != dead service
            log.exception("supervisor failure", extra={"job": job.job_id})
            if not job.terminal:
                job.error = f"supervisor failure: {exc}"
                job.transition(JobState.FAILED)
                self.journal.record_state(job)
        finally:
            self._running.discard(job.job_id)
            if job.state is JobState.DONE and job.started_at and job.finished_at:
                self._observe_runtime(job.finished_at - job.started_at)
            self._wake.set()

    def _observe_runtime(self, seconds: float) -> None:
        if self._ewma_runtime is None:
            self._ewma_runtime = seconds
        else:
            self._ewma_runtime = 0.7 * self._ewma_runtime + 0.3 * seconds

    def _retry_after(self) -> int:
        """A Retry-After hint: expected queue drain time per worker."""
        if self._ewma_runtime is None:
            return DEFAULT_RETRY_AFTER
        backlog = len(self.queue) + len(self._running)
        estimate = self._ewma_runtime * max(1, backlog) / self.concurrency
        return max(1, min(600, int(round(estimate))))

    # -- admission (shared by HTTP and in-process callers) ---------------

    def submit(self, body) -> "tuple[int, dict, dict]":
        """Admit one submission; returns (status, payload, headers)."""
        try:
            parsed = parse_submission(body)
        except InvalidSubmission as exc:
            self._count_submission("invalid")
            return 400, exc.as_dict(), {}

        existing = self.journal.by_fingerprint(parsed.fingerprint)
        if existing is not None:
            self._count_submission("deduplicated")
            return (
                200,
                {"deduplicated": True, "job": existing.public_view()},
                {},
            )

        if self._stopping:
            self._count_submission("refused_stopping")
            return 503, {"error": "shutting down"}, {}
        admission = self._admit()
        if not admission:
            self._count_submission("refused_queue_full")
            return (
                429,
                {
                    "error": "queue full",
                    "reason": admission.reason,
                    "retry_after": admission.retry_after,
                },
                {"Retry-After": str(admission.retry_after)},
            )

        timeout = parsed.timeout
        if timeout is None:
            timeout = self.default_timeout
        job = Job(
            job_id=self.journal.next_job_id(),
            fingerprint=parsed.fingerprint,
            payload=parsed.payload,
            priority=parsed.priority,
            timeout=timeout,
        )
        self._materialise_job_dir(job)
        self.journal.record_submitted(job)
        self.queue.offer(job.job_id, job.priority)
        self._count_submission("accepted")
        self._wake.set()
        log.info(
            "job accepted",
            extra={
                "job": job.job_id,
                "fingerprint": job.fingerprint,
                "priority": job.priority,
            },
        )
        return 201, {"deduplicated": False, "job": job.public_view()}, {}

    def _admit(self) -> Admission:
        if self.queue.is_full:
            return Admission(
                False,
                reason=f"queue at limit ({self.queue.limit})",
                retry_after=self._retry_after(),
            )
        return Admission(True)

    def _materialise_job_dir(self, job: Job) -> None:
        """Write the worker contract (job.json) before journaling the
        submission — a journaled job always has a runnable directory."""
        from repro.io.atomic import atomic_write_text

        job_dir = self.job_dir(job.job_id)
        job_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            job_dir / "job.json",
            json.dumps(
                {
                    "job_id": job.job_id,
                    "payload": job.payload,
                    "obs_store": str(self.obs_root),
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
        )

    def cancel(self, job_id: str) -> "tuple[int, dict]":
        """Cancel a job; queued jobs die now, running ones cooperatively."""
        job = self.journal.jobs.get(job_id)
        if job is None:
            return 404, {"error": "no such job", "job_id": job_id}
        if job.terminal:
            return 409, {
                "error": "job already terminal",
                "job": job.public_view(),
            }
        if job.state is JobState.QUEUED and job_id not in self._running:
            self.queue.remove(job_id)
            job.error = "cancelled by client"
            job.transition(JobState.CANCELLED)
            self.journal.record_state(job)
            return 200, {"job": job.public_view()}
        # Running (or mid-retry): trip the cross-process kill switch; the
        # worker exits at its next poll and the supervisor records it.
        FileToken(self.job_dir(job_id) / "cancel").trip("cancelled by client")
        return 202, {"cancelling": True, "job": job.public_view()}

    # -- HTTP ------------------------------------------------------------

    def _build_router(self) -> Router:
        router = Router()
        router.add("GET", "/healthz", self._handle_healthz)
        router.add("GET", "/readyz", self._handle_readyz)
        router.add("GET", "/metrics", self._handle_metrics)
        router.add("POST", "/jobs", self._handle_submit)
        router.add("GET", "/jobs", self._handle_list)
        router.add("GET", "/jobs/{job_id}", self._handle_status)
        router.add("POST", "/jobs/{job_id}/cancel", self._handle_cancel)
        router.add("GET", "/jobs/{job_id}/events", self._handle_events)
        router.add("GET", "/jobs/{job_id}/progress", self._handle_progress)
        return router

    # -- live operations -------------------------------------------------

    def _count_submission(self, outcome: str) -> None:
        self.metrics.counter("repro_submissions_total", outcome=outcome).inc()

    def _metrics_snapshot(self) -> MetricsRegistry:
        """The scrape-time registry: process counters + derived gauges.

        Counters and histograms come from the process-lifetime registry
        (submissions, sheds, crash retries, attempt latency); everything
        gauge-shaped is *recomputed* — queue depth and running count
        from the live structures, per-state job gauges from the
        journal's job table (which the recovery path rebuilds, so a
        SIGKILL + restart never double-counts terminal jobs), and
        per-job progress gauges from the running jobs' progress files.
        """
        snapshot = MetricsRegistry().merge(self.metrics)
        snapshot.gauge("repro_queue_depth").set(len(self.queue))
        snapshot.gauge("repro_running_jobs").set(len(self._running))
        for state in JobState:
            snapshot.gauge("repro_jobs", state=state.value).set(0)
        for job in self.journal.jobs.values():
            gauge = snapshot.gauge("repro_jobs", state=job.state.value)
            gauge.set(gauge.value + 1)
        for job_id in sorted(self._running):
            progress = JobProgress.read(self.job_dir(job_id))
            if progress is not None:
                progress_gauges(snapshot, progress)
        return snapshot

    async def _handle_metrics(self, request: Request) -> Response:
        text = render_prometheus(self._metrics_snapshot())
        return Response(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _handle_progress(self, request: Request) -> Response:
        job_id = request.params["job_id"]
        job = self.journal.jobs.get(job_id)
        if job is None:
            return Response.json(
                404, {"error": "no such job", "job_id": job_id}
            )
        progress = JobProgress.read(self.job_dir(job_id))
        return Response.json(
            200,
            {
                "job_id": job_id,
                "state": job.state.value,
                "progress": progress.as_dict() if progress else None,
            },
        )

    async def _handle_healthz(self, request: Request) -> Response:
        # Liveness only: if this handler runs, the loop is alive.
        return Response.json(200, {"status": "ok"})

    async def _handle_readyz(self, request: Request) -> Response:
        if not self._ready or self._stopping:
            return Response.json(
                503,
                {
                    "status": "not ready",
                    "stopping": self._stopping,
                },
            )
        return Response.json(
            200,
            {
                "status": "ready",
                "queued": len(self.queue),
                "running": len(self._running),
                "jobs": len(self.journal),
                "shed": self._shed_count,
            },
        )

    async def _handle_submit(self, request: Request) -> Response:
        try:
            body = request.json()
        except ValueError:
            return Response.json(
                400,
                {
                    "error": "invalid submission",
                    "field": "body",
                    "reason": "request body is not valid JSON",
                },
            )
        status, payload, headers = self.submit(body)
        return Response.json(status, payload, headers=headers)

    async def _handle_list(self, request: Request) -> Response:
        state_filter = request.query.get("state", [None])[0]
        if state_filter is not None:
            try:
                wanted = JobState(state_filter)
            except ValueError:
                return Response.json(
                    400,
                    {
                        "error": "invalid submission",
                        "field": "state",
                        "reason": f"unknown state {state_filter!r}; valid: "
                        + ", ".join(s.value for s in JobState),
                    },
                )
            jobs = [
                j for j in self.journal.jobs.values() if j.state is wanted
            ]
        else:
            jobs = list(self.journal.jobs.values())
        jobs.sort(key=lambda j: j.job_id)
        return Response.json(
            200, {"jobs": [job.public_view() for job in jobs]}
        )

    async def _handle_status(self, request: Request) -> Response:
        job = self.journal.jobs.get(request.params["job_id"])
        if job is None:
            return Response.json(
                404, {"error": "no such job", "job_id": request.params["job_id"]}
            )
        return Response.json(200, {"job": job.public_view()})

    async def _handle_cancel(self, request: Request) -> Response:
        status, payload = self.cancel(request.params["job_id"])
        return Response.json(status, payload)

    async def _handle_events(self, request: Request) -> Response:
        job_id = request.params["job_id"]
        job = self.journal.jobs.get(job_id)
        if job is None:
            return Response.json(
                404, {"error": "no such job", "job_id": job_id}
            )
        follow = request.query.get("follow", ["1"])[0] not in ("0", "false")
        return Response.ndjson(200, self._stream_events(job, follow))

    async def _stream_events(
        self, job: Job, follow: bool
    ) -> AsyncIterator[bytes]:
        """Yield events.jsonl lines, following a live job to the end.

        Only complete (newline-terminated) lines are forwarded — a
        half-appended round is never shown.  The stream closes with one
        synthetic ``job_state`` line carrying the terminal state, so a
        tailing client learns the outcome without a second request.
        """
        events = self.job_dir(job.job_id) / "events.jsonl"
        offset = 0
        while True:
            chunk = b""
            if events.exists():
                with events.open("rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
                if data:
                    complete = data.rfind(b"\n")
                    if complete >= 0:
                        chunk = data[: complete + 1]
                        offset += complete + 1
            if chunk:
                yield chunk
            if job.state in TERMINAL_STATES and not chunk:
                break
            if not follow and not chunk:
                break
            if not chunk:
                await asyncio.sleep(TAIL_POLL_SECONDS)
        closing = {
            "kind": "job_state",
            "job_id": job.job_id,
            "state": job.state.value,
            "error": job.error,
            "terminal": job.terminal,
        }
        yield (json.dumps(closing, sort_keys=True) + "\n").encode()
