"""A minimal asyncio HTTP/1.1 layer — stdlib only, service-sized.

The job service needs six routes, JSON bodies, a couple of headers
(``Retry-After``, ``Content-Type``) and one streaming response shape
(NDJSON via chunked transfer encoding).  That is small enough that a
dependency-free implementation on ``asyncio`` streams is simpler to
audit than a framework, and — robustness being this layer's point — it
fails *closed*: oversized bodies get 413, unparseable requests 400,
unknown routes 404, handler exceptions 500 with a JSON body, and every
response carries ``Connection: close`` so a confused client can never
wedge a connection slot.

Handlers are ``async def handler(request) -> Response``; a
:class:`Response` whose body is an async iterator of ``bytes`` streams
chunk by chunk (how ``/jobs/{id}/events`` tails NDJSON to a client
while the job is still running).
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Any, AsyncIterator, Callable, Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, unquote, urlsplit

from repro.obs.log import get_logger

log = get_logger("server.http")

#: Request bodies above this are refused with 413 (a scenario spec is
#: a few KB; a megabyte of "spec" is an attack or a bug).
MAX_BODY_BYTES = 1_000_000
MAX_HEADER_BYTES = 64_000

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, List[str]],
        headers: Dict[str, str],
        body: bytes,
        params: Optional[Dict[str, str]] = None,
    ):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        #: Path parameters bound by the router (e.g. ``{job_id}``).
        self.params: Dict[str, str] = params or {}

    def json(self) -> Any:
        """The body parsed as JSON.

        Raises:
            ValueError: for undecodable or unparseable content.
        """
        return json.loads(self.body.decode("utf-8"))


class Response:
    """One response: status, headers, and a bytes or streaming body."""

    def __init__(
        self,
        status: int,
        body: Union[bytes, AsyncIterator[bytes]] = b"",
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
    ):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = dict(headers or {})

    @classmethod
    def json(
        cls, status: int, payload: Any, headers: Optional[Dict[str, str]] = None
    ) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        return cls(status, body, headers=headers)

    @classmethod
    def ndjson(cls, status: int, lines: AsyncIterator[bytes]) -> "Response":
        return cls(status, lines, content_type="application/x-ndjson")


#: A route handler.
Handler = Callable[[Request], "asyncio.Future[Response]"]


class Router:
    """Method + path-template routing (``/jobs/{job_id}/events``)."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, re.Pattern, Handler]] = []

    def add(self, method: str, template: str, handler: Handler) -> None:
        pattern = re.compile(
            "^"
            + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", template)
            + "$"
        )
        self._routes.append((method.upper(), pattern, handler))

    def resolve(
        self, method: str, path: str
    ) -> Tuple[Optional[Handler], Optional[Dict[str, str]], bool]:
        """(handler, params, path_known) for a request line."""
        path_known = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_known = True
            if route_method == method.upper():
                return handler, {
                    k: unquote(v) for k, v in match.groupdict().items()
                }, True
        return None, None, path_known


class HttpServer:
    """The asyncio server around a :class:`Router`.

    Args:
        router: the route table.
        host / port: bind address (port 0 = ephemeral; see
            :attr:`bound_port` after :meth:`start`).
    """

    def __init__(self, router: Router, host: str = "127.0.0.1", port: int = 0):
        self.router = router
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def bound_port(self) -> int:
        """The actual port after :meth:`start` (resolves port 0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                await self._write_simple(
                    writer, Response.json(400, {"error": "malformed request"})
                )
                return
            if isinstance(request, Response):  # parse-stage refusal (413)
                await self._write_simple(writer, request)
                return
            await self._dispatch(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception:  # noqa: BLE001 - last-resort 500, keep serving
            log.exception("unhandled error in connection handler")
            try:
                await self._write_simple(
                    writer, Response.json(500, {"error": "internal error"})
                )
            except ConnectionError:  # pragma: no cover - double fault
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Union[Request, Response, None]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            return Response.json(413, {"error": "headers too large"})
        except asyncio.IncompleteReadError:
            return None
        if len(head) > MAX_HEADER_BYTES:
            return Response.json(413, {"error": "headers too large"})
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_raw = headers.get("content-length", "0")
        try:
            length = int(length_raw)
        except ValueError:
            return None
        if length < 0:
            return None
        if length > MAX_BODY_BYTES:
            return Response.json(
                413,
                {
                    "error": "payload too large",
                    "limit_bytes": MAX_BODY_BYTES,
                },
            )
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        split = urlsplit(target)
        return Request(
            method=method,
            path=unquote(split.path),
            query=parse_qs(split.query),
            headers=headers,
            body=body,
        )

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        handler, params, path_known = self.router.resolve(
            request.method, request.path
        )
        if handler is None:
            status = 405 if path_known else 404
            await self._write_simple(
                writer,
                Response.json(
                    status,
                    {"error": _REASONS[status].lower(), "path": request.path},
                ),
            )
            return
        request.params = params or {}
        try:
            response = await handler(request)
        except Exception:  # noqa: BLE001 - handler bug must not kill server
            log.exception(
                "handler error", extra={"path": request.path}
            )
            response = Response.json(500, {"error": "internal error"})
        if isinstance(response.body, bytes):
            await self._write_simple(writer, response)
        else:
            await self._write_streaming(writer, response)

    # -- wire format -----------------------------------------------------

    def _head(self, response: Response, extra: Dict[str, str]) -> bytes:
        reason = _REASONS.get(response.status, "Unknown")
        lines = [f"HTTP/1.1 {response.status} {reason}"]
        headers = {
            "Content-Type": response.content_type,
            "Connection": "close",
            **response.headers,
            **extra,
        }
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _write_simple(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        body = response.body if isinstance(response.body, bytes) else b""
        writer.write(
            self._head(response, {"Content-Length": str(len(body))}) + body
        )
        await writer.drain()

    async def _write_streaming(
        self, writer: asyncio.StreamWriter, response: Response
    ) -> None:
        writer.write(self._head(response, {"Transfer-Encoding": "chunked"}))
        await writer.drain()
        async for chunk in response.body:
            if not chunk:
                continue
            writer.write(f"{len(chunk):X}\r\n".encode() + chunk + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()
